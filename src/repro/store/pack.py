"""The pack file: append-only payload storage for base-file versions.

A pack holds opaque payload frames — zlib-compressed full snapshots and
zlib-compressed vdelta wire bytes — addressed by ``(offset, length)``
pairs recorded in the journal.  The pack itself carries no metadata
beyond the per-frame CRC: the journal is the authority on what each
frame *means* (which class, which version, full or delta, whose parent).

Reads go through :func:`os.pread` so they never disturb the append
position, and every read re-checks the frame CRC — a base-file payload
that rotted on disk is detected at the pack boundary, before the delta
chain math ever sees it.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.store.format import (
    FILE_HEADER,
    FRAME_HEADER,
    check_header,
    frame_crc,
    frame_size,
    write_frame,
    write_header,
)

PACK_MAGIC = b"RPK1"


class PackCorruptionError(Exception):
    """A pack frame failed its CRC or framing on read."""


class Pack:
    """One append-only pack file."""

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        exists = self.path.exists() and self.path.stat().st_size > 0
        self._fh = open(self.path, "ab")
        if not exists:
            write_header(self._fh, PACK_MAGIC)
            self.sync()
        else:
            with open(self.path, "rb") as fh:
                check_header(fh.read(FILE_HEADER.size), PACK_MAGIC, str(self.path))
        self._read_fd = os.open(self.path, os.O_RDONLY)

    @property
    def end(self) -> int:
        """Current append offset (== file size once flushed)."""
        self._fh.flush()
        return self._fh.tell()

    def append(self, payload: bytes, *, sync: bool) -> tuple[int, int]:
        """Append one payload frame; returns ``(offset, frame_length)``."""
        self._fh.flush()
        offset = self._fh.tell()
        length = write_frame(self._fh, payload)
        if sync:
            self.sync()
        else:
            self._fh.flush()
        return offset, length

    def read(self, offset: int, length: int) -> bytes:
        """Read + CRC-verify the payload of the frame at ``offset``."""
        self._fh.flush()
        raw = os.pread(self._read_fd, length, offset)
        if len(raw) != length or length < FRAME_HEADER.size:
            raise PackCorruptionError(
                f"pack frame at {offset}: wanted {length} bytes, got {len(raw)}"
            )
        payload_length, crc = FRAME_HEADER.unpack_from(raw)
        if frame_size(payload_length) != length:
            raise PackCorruptionError(
                f"pack frame at {offset}: header says {payload_length} payload "
                f"bytes, frame is {length}"
            )
        payload = raw[FRAME_HEADER.size :]
        if frame_crc(payload) != crc:
            raise PackCorruptionError(f"pack frame at {offset}: CRC mismatch")
        return payload

    def verify(self, offset: int, length: int) -> bool:
        """True when the frame at ``offset`` reads back clean."""
        try:
            self.read(offset, length)
        except PackCorruptionError:
            return False
        return True

    def sync(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
        if self._read_fd >= 0:
            os.close(self._read_fd)
            self._read_fd = -1
