"""Persistent pack/journal storage tier (ROADMAP item 2).

Layout of a state directory, the crash-safety contract, chain encoding
and compaction are documented on :mod:`repro.store.store`; the engine
integration surface is :mod:`repro.store.hooks`.
"""

from __future__ import annotations

from repro.store.format import StoreFormatError
from repro.store.hooks import NullStoreHooks, PersistentStoreHooks, StoreHooks
from repro.store.journal import Journal, scan_journal
from repro.store.pack import Pack, PackCorruptionError
from repro.store.store import (
    DEFAULT_SNAPSHOT_EVERY,
    ClassState,
    PackEntry,
    Store,
    StoreError,
    StoreStats,
    inspect_state_dir,
)

__all__ = [
    "DEFAULT_SNAPSHOT_EVERY",
    "ClassState",
    "Journal",
    "NullStoreHooks",
    "Pack",
    "PackCorruptionError",
    "PackEntry",
    "PersistentStoreHooks",
    "Store",
    "StoreError",
    "StoreFormatError",
    "StoreHooks",
    "StoreStats",
    "inspect_state_dir",
    "scan_journal",
]
