"""The class-lifecycle journal: an append-only log of engine events.

Every durable fact about the delta-server's class state is a journal
record — class created, membership add, base version committed (with the
pack location of its payload), quarantine, release, history eviction.
Records are JSON objects inside CRC-framed records
(:mod:`repro.store.format`), so the journal is both the write-ahead
authority the commit protocol fsyncs and a self-describing debug surface
(``repro store inspect`` dumps it verbatim).

Durability is caller-controlled per append: base commits sync (the
crash-safety contract), membership adds do not (losing one means a URL
re-runs the grouping search after a crash — harmless), and a syncing
append flushes every buffered record written before it, so the on-disk
record order always matches the append order.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.store.format import (
    FILE_HEADER,
    ScannedFrame,
    check_header,
    scan_frames,
    write_frame,
    write_header,
)

JOURNAL_MAGIC = b"RJL1"

#: journal record types (the ``"type"`` field of each JSON record)
REC_CLASS = "class_created"
REC_MEMBER = "member_added"
REC_BASE = "base_committed"
REC_QUARANTINE = "class_quarantined"
REC_RELEASE = "base_released"
REC_EVICT = "history_evicted"
#: absolute per-class hit count checkpoint (popularity across restarts);
#: appended at a stride, not per hit, so the journal stays bounded
REC_HITS = "class_hits"


class Journal:
    """Append side of one journal file (reads go through :func:`scan_journal`)."""

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        exists = self.path.exists() and self.path.stat().st_size > 0
        self._fh = open(self.path, "ab")
        self.records = 0
        if not exists:
            write_header(self._fh, JOURNAL_MAGIC)
            self.sync()
        self.bytes = self._fh.tell()

    def append(self, record: dict, *, sync: bool) -> None:
        """Append one record; ``sync=True`` makes it (and all before it) durable."""
        payload = json.dumps(record, sort_keys=True, separators=(",", ":")).encode()
        self.bytes += write_frame(self._fh, payload)
        self.records += 1
        if sync:
            self.sync()
        else:
            self._fh.flush()

    def sync(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()


def scan_journal(path: Path) -> tuple[list[tuple[int, dict]], int, int]:
    """Read the valid record prefix of a journal file.

    Returns ``(records, valid_end, file_size)`` where each record is
    ``(frame_offset, decoded_dict)`` and ``valid_end`` is the offset the
    file should be truncated to if shorter than ``file_size``.  A frame
    that passes its CRC but does not decode as a JSON object still ends
    the valid prefix (conservative: nothing after damage is trusted).
    """
    data = Path(path).read_bytes()
    check_header(data, JOURNAL_MAGIC, str(path))
    frames, valid_end = scan_frames(data, FILE_HEADER.size)
    records: list[tuple[int, dict]] = []
    for frame in frames:
        record = _decode(frame)
        if record is None:
            return records, frame.offset, len(data)
        records.append((frame.offset, record))
    return records, valid_end, len(data)


def _decode(frame: ScannedFrame) -> dict | None:
    try:
        record = json.loads(frame.payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(record, dict) or "type" not in record:
        return None
    return record


def truncate_file(path: Path, end: int) -> None:
    """Chop a store file to ``end`` bytes (recovery's torn-tail repair)."""
    with open(path, "r+b") as fh:
        fh.truncate(end)
        fh.flush()
        os.fsync(fh.fileno())
