"""Engine↔store glue: lifecycle hooks and the warm-restart path.

The engine never imports :class:`repro.store.store.Store` directly — it
talks to a :class:`StoreHooks`, whose base class is a pile of no-ops.
Running without ``--state-dir`` therefore costs nothing (no branch even
allocates), and every store call site in the engine stays unconditional.

:class:`PersistentStoreHooks` forwards the hook points to a real store:

* ``class_created`` / ``member_added`` — buffered journal appends;
* ``class_hit`` — throttled popularity checkpoints (one buffered record
  per :data:`HIT_JOURNAL_STRIDE` hits), so the popular-first probe order
  survives restarts;
* ``base_committed`` — the fsync'd crash-safe commit (called under the
  class lock, after the in-memory version bump); carries the base's
  MinHash signature so restarts skip re-sketching;
* ``class_quarantined`` / ``base_released`` — payload drops;
* ``rehydrate(engine)`` — the warm-restart path: rebuild classes, url→
  class mappings and latest base-file versions into a fresh engine from
  disk, without touching any origin.

Lock ordering: hooks are invoked while holding engine-side locks
(shard/class/storage-manager); the store takes only its own lock and
never calls back into the engine, so the ordering is acyclic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.store.pack import PackCorruptionError
from repro.store.store import Store, StoreError, _class_sort

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.delta_server import DeltaServer


class StoreHooks:
    """No-op hooks: the engine's default when persistence is off."""

    store: Store | None = None

    def class_created(self, class_id: str, server: str, hint: str) -> None:
        pass

    def member_added(self, class_id: str, url: str) -> None:
        pass

    def class_hit(self, class_id: str, hits: int) -> None:
        pass

    def base_committed(
        self,
        class_id: str,
        version: int,
        document: bytes,
        doc_checksum: int,
        signature: "tuple[int, ...] | None" = None,
    ) -> None:
        pass

    def class_quarantined(self, class_id: str, cause: str) -> None:
        pass

    def base_released(self, class_id: str) -> None:
        pass

    def rehydrate(self, engine: "DeltaServer") -> int:
        """Rebuild engine state from disk; returns classes restored."""
        return 0

    def snapshot(self) -> dict | None:
        """Store stats for health/metrics surfaces (None when no store)."""
        return None

    def close(self) -> None:
        pass


class NullStoreHooks(StoreHooks):
    """Alias kept for call-site readability (`hooks = NullStoreHooks()`)."""


#: journal a hit-count checkpoint every this many hits per class — the
#: trade between journal growth (one tiny record per stride) and how much
#: popularity-ordering accuracy a crash can cost (at most stride-1 hits)
HIT_JOURNAL_STRIDE = 16


class PersistentStoreHooks(StoreHooks):
    """Forward engine lifecycle events into a :class:`Store`."""

    def __init__(self, store: Store, hit_stride: int = HIT_JOURNAL_STRIDE) -> None:
        self.store = store
        self.hit_stride = max(int(hit_stride), 1)

    def class_created(self, class_id: str, server: str, hint: str) -> None:
        self.store.add_class(class_id, server, hint)

    def member_added(self, class_id: str, url: str) -> None:
        self.store.add_member(class_id, url)

    def class_hit(self, class_id: str, hits: int) -> None:
        # Fired per request on the grouper's fast path: the stride check
        # must stay one modulo, journaling only every Nth hit.
        if hits % self.hit_stride == 0:
            self.store.record_hits(class_id, hits)

    def base_committed(
        self,
        class_id: str,
        version: int,
        document: bytes,
        doc_checksum: int,
        signature: "tuple[int, ...] | None" = None,
    ) -> None:
        self.store.commit_base(
            class_id, version, document, doc_checksum, signature=signature
        )

    def class_quarantined(self, class_id: str, cause: str) -> None:
        self.store.quarantine(class_id, cause)

    def base_released(self, class_id: str) -> None:
        self.store.release(class_id)

    def rehydrate(self, engine: "DeltaServer") -> int:
        """Warm restart: rebuild classes, memberships and latest bases.

        Classes are restored in numeric id order so the engine's class-id
        counter can be re-seeded past the highest one.  A class whose
        on-disk chain fails materialization (checksum mismatch, torn
        frame) is restored *base-less* — it re-adopts from its next
        origin fetch rather than ever serving damaged bytes.
        """
        restored = 0
        states = sorted(self.store.classes(), key=lambda st: _class_sort(st.class_id))
        for state in states:
            cls = engine.restore_class(state.class_id, state.server, state.hint)
            if cls is None:
                continue
            # Base first, grouper second: registration consults the
            # restored base when re-sketching a class whose signature was
            # never persisted (or was sketched with another geometry).
            if state.latest is not None:
                entry = state.entries.get(state.latest)
                try:
                    document = self.store.materialize(state.class_id, state.latest)
                except (StoreError, PackCorruptionError):
                    pass
                else:
                    cls.restore_base(document, state.latest, entry.doc_checksum)
            engine.grouper.restore_class(
                cls,
                state.members,
                hits=state.hits,
                signature=tuple(state.sketch) if state.sketch else None,
            )
            restored += 1
        engine.seed_class_counter(state.class_id for state in states)
        self.store.stats.rehydrated_classes = restored
        return restored

    def snapshot(self) -> dict | None:
        return self.store.snapshot()

    def close(self) -> None:
        self.store.close()
