"""On-disk record framing shared by the pack and the journal.

Both store files are append-only sequences of self-checking frames after
a small fixed header::

    header   magic (4 bytes) | u32 format version
    frame    u32 payload length | u32 crc32(payload) | payload bytes

The frame is the unit of crash-atomicity: a crash (or a fault-injection
test) can tear a file at any byte offset, and recovery must be able to
identify the longest *valid prefix* of frames and discard everything
after it.  :func:`scan_frames` implements exactly that contract — it
never raises on torn or corrupted input, it just stops, reporting where
the valid prefix ends so the caller can truncate.

The CRC is over the payload only (not the length word); a corrupted
length field is caught either by the sanity cap or by the CRC of the
mis-framed payload it implies — both end the valid prefix, which is the
correct, conservative answer.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import BinaryIO, Iterator

#: ``(payload_length, payload_crc32)`` frame header
FRAME_HEADER = struct.Struct(">II")

#: ``magic | format version`` file header
FILE_HEADER = struct.Struct(">4sI")

FORMAT_VERSION = 1

#: frames beyond this are treated as corruption, not data (a single
#: base-file snapshot or delta should never approach it)
MAX_FRAME_PAYLOAD = 256 * 1024 * 1024


class StoreFormatError(Exception):
    """A store file is not what its header claims to be."""


def frame_crc(payload: bytes) -> int:
    return zlib.crc32(payload) & 0xFFFFFFFF


def frame_size(payload_length: int) -> int:
    """Total on-disk bytes one frame of ``payload_length`` occupies."""
    return FRAME_HEADER.size + payload_length


def write_header(fh: BinaryIO, magic: bytes) -> None:
    fh.write(FILE_HEADER.pack(magic, FORMAT_VERSION))


def check_header(data: bytes, magic: bytes, path: str = "") -> None:
    """Validate a file header; raises :class:`StoreFormatError`."""
    if len(data) < FILE_HEADER.size:
        raise StoreFormatError(f"{path or 'store file'}: truncated header")
    found_magic, version = FILE_HEADER.unpack_from(data)
    if found_magic != magic:
        raise StoreFormatError(
            f"{path or 'store file'}: bad magic {found_magic!r}, want {magic!r}"
        )
    if version != FORMAT_VERSION:
        raise StoreFormatError(
            f"{path or 'store file'}: format version {version}, "
            f"this build reads {FORMAT_VERSION}"
        )


def write_frame(fh: BinaryIO, payload: bytes) -> int:
    """Append one frame; returns the number of bytes written."""
    fh.write(FRAME_HEADER.pack(len(payload), frame_crc(payload)))
    fh.write(payload)
    return frame_size(len(payload))


@dataclass(slots=True)
class ScannedFrame:
    """One valid frame found by :func:`scan_frames`."""

    offset: int  # file offset of the frame header
    payload: bytes

    @property
    def end(self) -> int:
        return self.offset + frame_size(len(self.payload))


def scan_frames(data: bytes, start: int) -> tuple[list[ScannedFrame], int]:
    """Walk frames from ``start``; return ``(frames, valid_end)``.

    Stops — without raising — at the first torn or corrupted frame:
    truncated header, truncated payload, implausible length, or CRC
    mismatch.  ``valid_end`` is the offset just past the last good frame
    (== ``start`` when none are), i.e. the truncation point recovery
    should apply.
    """
    frames: list[ScannedFrame] = []
    pos = start
    size = len(data)
    while True:
        if pos + FRAME_HEADER.size > size:
            return frames, pos
        length, crc = FRAME_HEADER.unpack_from(data, pos)
        if length > MAX_FRAME_PAYLOAD:
            return frames, pos
        body_start = pos + FRAME_HEADER.size
        body_end = body_start + length
        if body_end > size:
            return frames, pos
        payload = data[body_start:body_end]
        if frame_crc(payload) != crc:
            return frames, pos
        frames.append(ScannedFrame(offset=pos, payload=payload))
        pos = body_end


def iter_frames(data: bytes, start: int) -> Iterator[ScannedFrame]:
    """Frame iterator with the same stop-at-first-damage contract."""
    frames, _ = scan_frames(data, start)
    return iter(frames)
