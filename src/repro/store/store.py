"""The persistent store: pack + journal + recovery + delta chains.

This is ROADMAP item 2 made concrete — the delta-server's whole corpus
(classes, membership, base-file version history) survives restarts on
disk, so RAM no longer bounds it and a restart no longer starts cold.

Data model
----------

A *state directory* holds one live generation of two files plus a
pointer::

    CURRENT            text file: the live generation number
    pack-<gen>.rpk     payload frames (compressed snapshots / deltas)
    journal-<gen>.rjl  class-lifecycle records referencing pack frames

Base-file versions are stored as **version-to-version delta chains with a
bounded length**: a full (zlib) snapshot roots each chain and up to
``snapshot_every - 1`` successive versions are stored as zlib-compressed
vdelta wire bytes against their immediate predecessor — the
version-to-version scheme whose storage/recovery trade-off the DBCN
paper analyses.  Materializing version ``v`` therefore touches at most
``snapshot_every`` frames.  A delta that compresses worse than the full
snapshot is stored full (and re-roots the chain), so the chain encoding
can never lose to full-per-version storage.

Commit protocol (crash-safe)
----------------------------

One committed base version is::

    1. append payload frame to the pack, fsync;
    2. append the ``base_committed`` journal record (pack offset/length,
       encoding, parent, chain position, document checksum), fsync;
    3. update the in-memory index.

The journal record is the commit point.  A crash between (1) and (2)
leaves an orphan pack tail that recovery truncates; a crash mid-append
leaves a torn frame that the CRC framing rejects.  Recovery replays the
journal's valid prefix in order, re-verifying every referenced pack
frame's CRC as it goes, and cuts *both* files at the first damage — the
surviving state is always the exact state some fsync'd commit produced,
so a torn or half-written base-file can never be served.

Space reclamation
-----------------

``evict_history`` moves a cold class's non-latest versions to garbage
(after re-rooting the latest as a full snapshot so it stays
materializable); ``release``/``quarantine`` drop a class's payloads
entirely.  Garbage bytes stay in the pack until ``compact`` rewrites the
live frames into a fresh generation and swaps ``CURRENT`` atomically —
a crash mid-compaction leaves the old generation intact.
"""

from __future__ import annotations

import contextlib
import os
import re
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.delta import apply_delta, checksum, make_delta
from repro.delta.compress import compress, decompress
from repro.delta.errors import DeltaError
from repro.metrics.registry import MetricsRegistry
from repro.store.format import FILE_HEADER, StoreFormatError, frame_crc, scan_frames
from repro.store.journal import (
    REC_BASE,
    REC_CLASS,
    REC_EVICT,
    REC_HITS,
    REC_MEMBER,
    REC_QUARANTINE,
    REC_RELEASE,
    Journal,
    scan_journal,
    truncate_file,
)
from repro.store.pack import Pack, PackCorruptionError

CURRENT_FILE = "CURRENT"

#: the default chain bound K: a full snapshot roots every K-th version
DEFAULT_SNAPSHOT_EVERY = 8

FULL = "full"
DELTA = "delta"


class StoreError(Exception):
    """A store invariant failed (unknown class/version, broken chain)."""


@dataclass(slots=True)
class PackEntry:
    """One durably committed base-file version (its pack location)."""

    version: int
    offset: int
    length: int  # whole-frame bytes on disk
    encoding: str  # "full" | "delta"
    parent: int | None  # predecessor version a delta applies against
    chain: int  # position in its chain (full == 1)
    doc_checksum: int  # adler32 of the uncompressed document
    doc_bytes: int  # uncompressed document size


@dataclass(slots=True)
class ClassState:
    """Recovered/journaled state of one document class."""

    class_id: str
    server: str
    hint: str
    members: list[str] = field(default_factory=list)
    member_set: set[str] = field(default_factory=set)
    entries: dict[int, PackEntry] = field(default_factory=dict)
    latest: int | None = None
    #: last journaled hit-count checkpoint (popularity across restarts)
    hits: int = 0
    #: MinHash signature of the latest committed base, if one was recorded
    sketch: list[int] | None = None

    def add_member(self, url: str) -> bool:
        if url in self.member_set:
            return False
        self.member_set.add(url)
        self.members.append(url)
        return True

    @property
    def live_bytes(self) -> int:
        return sum(entry.length for entry in self.entries.values())


@dataclass(slots=True)
class StoreStats:
    """Store accounting (surfaced via ``/__metrics__`` and ``/__health__``)."""

    commits: int = 0
    full_records: int = 0
    delta_records: int = 0
    journal_records: int = 0
    history_evictions: int = 0
    releases: int = 0
    compactions: int = 0
    #: torn-tail repairs applied by the last recovery
    journal_truncated_bytes: int = 0
    pack_truncated_bytes: int = 0
    recovery_ms: float = 0.0
    #: True when recovery found at least one class on disk
    warm_start: bool = False
    #: classes actually rebuilt into an engine by rehydration
    rehydrated_classes: int = 0


class Store:
    """Persistent pack/journal store for delta-server state.

    Thread-safe: one internal lock serializes every mutation and read of
    the index; pack/journal file access only happens under it.  Lock
    ordering with the engine: callers may hold a class lock (or the
    storage-manager lock) when calling in — the store never calls back
    out, so no cycle is possible.
    """

    def __init__(
        self,
        state_dir: Path | str,
        *,
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
        metrics: MetricsRegistry | None = None,
        fsync: bool = True,
    ) -> None:
        if snapshot_every < 1:
            raise ValueError(f"snapshot_every must be >= 1, got {snapshot_every}")
        self.state_dir = Path(state_dir)
        self.snapshot_every = snapshot_every
        self.metrics = metrics
        self.stats = StoreStats()
        self._fsync = fsync
        self._lock = threading.RLock()
        self._closed = False
        self._classes: dict[str, ClassState] = {}
        self._live_bytes = 0
        #: last committed document per class, kept so the next commit can
        #: delta against it without touching disk (shares the engine's
        #: bytes object — no copy).
        self._tips: dict[str, bytes] = {}
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self._generation = self._read_current() or 1
        started = time.perf_counter()
        self._recover()
        self.stats.recovery_ms = (time.perf_counter() - started) * 1000.0
        self.stats.warm_start = bool(self._classes)

    # -- factory ---------------------------------------------------------------

    @classmethod
    def open(
        cls,
        state_dir: Path | str,
        *,
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
        metrics: MetricsRegistry | None = None,
        fsync: bool = True,
    ) -> "Store":
        return cls(
            state_dir, snapshot_every=snapshot_every, metrics=metrics, fsync=fsync
        )

    # -- paths / generation ----------------------------------------------------

    def _pack_path(self, generation: int) -> Path:
        return self.state_dir / f"pack-{generation:06d}.rpk"

    def _journal_path(self, generation: int) -> Path:
        return self.state_dir / f"journal-{generation:06d}.rjl"

    def _read_current(self) -> int | None:
        path = self.state_dir / CURRENT_FILE
        try:
            return int(path.read_text().strip())
        except (FileNotFoundError, ValueError):
            return None

    def _write_current(self, generation: int) -> None:
        path = self.state_dir / CURRENT_FILE
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w") as fh:
            fh.write(f"{generation}\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self._sync_dir()

    def _sync_dir(self) -> None:
        # Durability of the rename itself; best-effort on platforms that
        # refuse O_RDONLY directory fds.
        with contextlib.suppress(OSError):
            fd = os.open(self.state_dir, os.O_RDONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)

    # -- recovery ----------------------------------------------------------------

    def _recover(self) -> None:
        journal_path = self._journal_path(self._generation)
        pack_path = self._pack_path(self._generation)
        if not journal_path.exists() and not pack_path.exists():
            # Fresh store: create both files and the CURRENT pointer.
            self._pack = Pack(pack_path)
            self._journal = Journal(journal_path)
            self._write_current(self._generation)
            return

        pack_data = pack_path.read_bytes() if pack_path.exists() else b""
        pack_ok = True
        try:
            from repro.store.format import check_header
            from repro.store.pack import PACK_MAGIC

            check_header(pack_data, PACK_MAGIC, str(pack_path))
        except StoreFormatError:
            pack_ok = False

        records: list[tuple[int, dict]] = []
        journal_end = FILE_HEADER.size
        journal_size = 0
        if journal_path.exists():
            try:
                records, journal_end, journal_size = scan_journal(journal_path)
            except StoreFormatError:
                # The journal header itself is damaged: nothing after it
                # can be trusted.  Start the state over (the pack becomes
                # all-garbage and is truncated below).
                records, journal_end, journal_size = [], 0, journal_path.stat().st_size

        applied = 0
        pack_floor = FILE_HEADER.size if pack_ok else 0
        pack_high = pack_floor
        for offset, record in records:
            outcome = self._apply_record(record, pack_data, pack_ok)
            if outcome is None:
                # First record referencing torn/corrupt pack bytes: the
                # consistent prefix ends *before* this record.
                journal_end = offset
                break
            pack_high = max(pack_high, outcome)
            applied += 1

        # Torn-tail repair: cut the journal after its last good record and
        # the pack after the last frame a surviving record references.
        if journal_size and journal_end < journal_size:
            if journal_end == 0:
                journal_path.unlink()
            else:
                truncate_file(journal_path, journal_end)
            self.stats.journal_truncated_bytes = journal_size - journal_end
        pack_size = len(pack_data)
        if not pack_ok:
            # Unreadable pack header: no payload survived; rewrite fresh.
            if pack_path.exists():
                pack_path.unlink()
            self.stats.pack_truncated_bytes = pack_size
        elif pack_size > pack_high:
            truncate_file(pack_path, pack_high)
            self.stats.pack_truncated_bytes = pack_size - pack_high

        self._pack = Pack(pack_path)
        self._journal = Journal(journal_path)
        self._journal.records = applied
        self.stats.journal_records = applied
        self._live_bytes = sum(st.live_bytes for st in self._classes.values())
        self._write_current(self._generation)

    def _apply_record(
        self, record: dict, pack_data: bytes, pack_ok: bool
    ) -> int | None:
        """Replay one journal record; returns the pack high-water mark it
        implies, or ``None`` when the record references damaged pack bytes
        (ending the consistent prefix)."""
        rtype = record.get("type")
        try:
            if rtype == REC_CLASS:
                class_id = record["class_id"]
                if class_id not in self._classes:
                    self._classes[class_id] = ClassState(
                        class_id=class_id,
                        server=record["server"],
                        hint=record["hint"],
                    )
                return 0
            if rtype == REC_MEMBER:
                st = self._classes.get(record["class_id"])
                if st is not None:
                    st.add_member(record["url"])
                return 0
            if rtype == REC_BASE:
                st = self._classes.get(record["class_id"])
                if st is None:
                    return 0  # class record lost to an earlier repair
                offset, length = int(record["offset"]), int(record["length"])
                if not pack_ok or not _frame_valid(pack_data, offset, length):
                    return None
                entry = PackEntry(
                    version=int(record["version"]),
                    offset=offset,
                    length=length,
                    encoding=record["encoding"],
                    parent=record.get("parent"),
                    chain=int(record.get("chain", 1)),
                    doc_checksum=int(record["doc_checksum"]),
                    doc_bytes=int(record.get("doc_bytes", 0)),
                )
                # A re-rooting commit replaces the entry for an existing
                # version; the replaced frame is garbage.
                st.entries[entry.version] = entry
                if st.latest is None or entry.version >= st.latest:
                    st.latest = entry.version
                    # The sketch always describes the latest base; older
                    # records' sketches are stale the moment a newer
                    # version commits (with or without one of its own).
                    sketch = record.get("sketch")
                    st.sketch = list(sketch) if sketch else None
                return offset + length
            if rtype in (REC_RELEASE, REC_QUARANTINE):
                st = self._classes.get(record["class_id"])
                if st is not None:
                    st.entries.clear()
                    st.latest = None
                    st.sketch = None
                return 0
            if rtype == REC_HITS:
                st = self._classes.get(record["class_id"])
                if st is not None:
                    st.hits = max(st.hits, int(record["hits"]))
                return 0
            if rtype == REC_EVICT:
                st = self._classes.get(record["class_id"])
                if st is not None:
                    for version in record.get("versions", ()):
                        st.entries.pop(int(version), None)
                return 0
        except (KeyError, TypeError, ValueError):
            return None  # malformed record: end of the trusted prefix
        return 0  # unknown record type: forward-compatible skip

    # -- journaled events --------------------------------------------------------

    def add_class(self, class_id: str, server: str, hint: str) -> None:
        with self._lock:
            if class_id in self._classes:
                return
            self._classes[class_id] = ClassState(
                class_id=class_id, server=server, hint=hint
            )
            self._append(
                {
                    "type": REC_CLASS,
                    "class_id": class_id,
                    "server": server,
                    "hint": hint,
                },
                sync=False,
            )

    def add_member(self, class_id: str, url: str) -> None:
        with self._lock:
            st = self._classes.get(class_id)
            if st is None or not st.add_member(url):
                return
            self._append(
                {"type": REC_MEMBER, "class_id": class_id, "url": url},
                sync=False,
            )

    def commit_base(
        self,
        class_id: str,
        version: int,
        document: bytes,
        doc_checksum: int | None = None,
        signature: "tuple[int, ...] | list[int] | None" = None,
    ) -> PackEntry:
        """Durably commit one base-file version (the crash-safe path).

        Encoded as a delta against the class's previous committed version
        while the chain stays under ``snapshot_every``, as a full
        snapshot otherwise (or whenever the delta fails to win).
        ``signature`` is the base's MinHash sketch; persisting it means a
        warm restart re-registers the class in the LSH candidate index
        without re-sketching the materialized document.
        """
        started = time.perf_counter()
        if doc_checksum is None:
            doc_checksum = checksum(document)
        with self._lock:
            st = self._classes.get(class_id)
            if st is None:
                raise StoreError(f"unknown class {class_id!r}")
            body, encoding, parent, chain = self._encode_body(st, document)
            offset, length = self._pack.append(body, sync=self._fsync)
            record = {
                "type": REC_BASE,
                "class_id": class_id,
                "version": version,
                "offset": offset,
                "length": length,
                "encoding": encoding,
                "parent": parent,
                "chain": chain,
                "doc_checksum": doc_checksum,
                "doc_bytes": len(document),
            }
            if signature is not None:
                record["sketch"] = list(signature)
            self._append(record, sync=self._fsync)
            replaced = st.entries.get(version)
            if replaced is not None:
                self._live_bytes -= replaced.length
            entry = PackEntry(
                version=version,
                offset=offset,
                length=length,
                encoding=encoding,
                parent=parent,
                chain=chain,
                doc_checksum=doc_checksum,
                doc_bytes=len(document),
            )
            st.entries[version] = entry
            if st.latest is None or version >= st.latest:
                st.latest = version
                st.sketch = list(signature) if signature is not None else None
            self._live_bytes += length
            self._tips[class_id] = document
            self.stats.commits += 1
            if encoding == FULL:
                self.stats.full_records += 1
            else:
                self.stats.delta_records += 1
        if self.metrics is not None:
            self.metrics.observe(
                "store_chain_length",
                chain,
                help="delta-chain position of committed base versions (full=1)",
            )
            self.metrics.observe(
                "store_commit_seconds",
                time.perf_counter() - started,
                help="durable base-version commit latency (pack+journal fsync)",
            )
        return entry

    def _encode_body(
        self, st: ClassState, document: bytes
    ) -> tuple[bytes, str, int | None, int]:
        """Pick chain-delta vs full-snapshot encoding for one commit."""
        full_body = compress(document)
        parent_version = st.latest
        if parent_version is None:
            return full_body, FULL, None, 1
        parent_entry = st.entries.get(parent_version)
        if parent_entry is None or parent_entry.chain >= self.snapshot_every:
            return full_body, FULL, None, 1
        parent_doc = self._tips.get(st.class_id)
        if parent_doc is None or checksum(parent_doc) != parent_entry.doc_checksum:
            try:
                parent_doc = self._materialize_locked(st, parent_version)
            except (StoreError, PackCorruptionError, DeltaError):
                return full_body, FULL, None, 1
        delta_body = compress(make_delta(parent_doc, document))
        if len(delta_body) >= len(full_body):
            return full_body, FULL, None, 1
        return delta_body, DELTA, parent_version, parent_entry.chain + 1

    def quarantine(self, class_id: str, cause: str = "") -> int:
        """Journal a quarantine event; the class's payloads become garbage
        (the engine just released its in-memory bases; a fresh chain roots
        on the next good fetch).  Returns live bytes turned to garbage."""
        with self._lock:
            freed = self._drop_payloads(class_id)
            if class_id in self._classes:
                self._append(
                    {
                        "type": REC_QUARANTINE,
                        "class_id": class_id,
                        "cause": cause,
                    },
                    sync=self._fsync,
                )
            return freed

    def release(self, class_id: str) -> int:
        """Journal a storage-pressure base release; payloads become garbage."""
        with self._lock:
            freed = self._drop_payloads(class_id)
            if class_id in self._classes:
                self._append(
                    {"type": REC_RELEASE, "class_id": class_id}, sync=self._fsync
                )
                self.stats.releases += 1
            return freed

    def record_hits(self, class_id: str, hits: int) -> None:
        """Checkpoint a class's absolute hit count (popularity).

        Buffered, not fsync'd: losing the tail after a crash costs a few
        hits of probe-ordering accuracy, nothing more.  Callers throttle
        (see :class:`~repro.store.hooks.PersistentStoreHooks`) so the
        journal grows by one small record per stride of hits, not per
        request.  Monotone: a stale checkpoint never lowers the count.
        """
        with self._lock:
            st = self._classes.get(class_id)
            if st is None or hits <= st.hits:
                return
            st.hits = hits
            self._append(
                {"type": REC_HITS, "class_id": class_id, "hits": hits},
                sync=False,
            )

    def _drop_payloads(self, class_id: str) -> int:
        st = self._classes.get(class_id)
        if st is None:
            return 0
        freed = st.live_bytes
        st.entries.clear()
        st.latest = None
        st.sketch = None
        self._live_bytes -= freed
        self._tips.pop(class_id, None)
        return freed

    def evict_history(self, class_id: str) -> int:
        """Turn a class's non-latest versions into garbage (cold-history
        eviction).  The latest version is re-rooted as a full snapshot
        first when it is a chain delta, so it stays materializable.
        Returns live bytes turned to garbage."""
        with self._lock:
            st = self._classes.get(class_id)
            if st is None or st.latest is None:
                return 0
            if len(st.entries) <= 1:
                return 0
            latest = st.entries[st.latest]
            if latest.encoding != FULL:
                try:
                    document = self._materialize_locked(st, st.latest)
                except (StoreError, PackCorruptionError, DeltaError):
                    # The chain is damaged on disk; nothing behind the
                    # engine's in-memory copy is salvageable — release.
                    return self.release(class_id)
                body = compress(document)
                offset, length = self._pack.append(body, sync=self._fsync)
                self._append(
                    {
                        "type": REC_BASE,
                        "class_id": class_id,
                        "version": st.latest,
                        "offset": offset,
                        "length": length,
                        "encoding": FULL,
                        "parent": None,
                        "chain": 1,
                        "doc_checksum": latest.doc_checksum,
                        "doc_bytes": latest.doc_bytes,
                    },
                    sync=self._fsync,
                )
                self._live_bytes += length - latest.length
                st.entries[st.latest] = PackEntry(
                    version=st.latest,
                    offset=offset,
                    length=length,
                    encoding=FULL,
                    parent=None,
                    chain=1,
                    doc_checksum=latest.doc_checksum,
                    doc_bytes=latest.doc_bytes,
                )
                self._tips[class_id] = document
            evicted = sorted(v for v in st.entries if v != st.latest)
            freed = 0
            for version in evicted:
                freed += st.entries.pop(version).length
            self._live_bytes -= freed
            self._append(
                {"type": REC_EVICT, "class_id": class_id, "versions": evicted},
                sync=self._fsync,
            )
            self.stats.history_evictions += 1
            return freed

    def _append(self, record: dict, *, sync: bool) -> None:
        self._journal.append(record, sync=sync and self._fsync)
        self.stats.journal_records += 1

    # -- reads -------------------------------------------------------------------

    def classes(self) -> list[ClassState]:
        with self._lock:
            return list(self._classes.values())

    def class_state(self, class_id: str) -> ClassState | None:
        with self._lock:
            return self._classes.get(class_id)

    def materialize(self, class_id: str, version: int) -> bytes:
        """Reconstruct one committed base-file version, checksum-verified."""
        with self._lock:
            st = self._classes.get(class_id)
            if st is None:
                raise StoreError(f"unknown class {class_id!r}")
            return self._materialize_locked(st, version)

    def _materialize_locked(self, st: ClassState, version: int) -> bytes:
        chain: list[PackEntry] = []
        v: int | None = version
        while True:
            if v is None:
                raise StoreError(
                    f"{st.class_id} v{version}: chain has no full-snapshot root"
                )
            entry = st.entries.get(v)
            if entry is None:
                raise StoreError(f"{st.class_id} v{v}: not in the store")
            chain.append(entry)
            if entry.encoding == FULL:
                break
            if len(chain) > self.snapshot_every + 1:
                raise StoreError(f"{st.class_id} v{version}: chain exceeds bound")
            v = entry.parent
        try:
            document = decompress(self._pack.read(chain[-1].offset, chain[-1].length))
            for entry in reversed(chain[:-1]):
                delta = decompress(self._pack.read(entry.offset, entry.length))
                document = apply_delta(delta, document)
        except (DeltaError, OSError, ValueError) as exc:
            raise StoreError(f"{st.class_id} v{version}: {exc}") from exc
        target = st.entries[version]
        if checksum(document) != target.doc_checksum:
            raise StoreError(
                f"{st.class_id} v{version}: materialized bytes fail their checksum"
            )
        return document

    # -- accounting ----------------------------------------------------------------

    @property
    def pack_bytes(self) -> int:
        with self._lock:
            return self._pack.end

    @property
    def live_pack_bytes(self) -> int:
        with self._lock:
            return self._live_bytes

    @property
    def garbage_bytes(self) -> int:
        with self._lock:
            return max(self._pack.end - FILE_HEADER.size - self._live_bytes, 0)

    def garbage_ratio(self) -> float:
        with self._lock:
            payload = self._pack.end - FILE_HEADER.size
            if payload <= 0:
                return 0.0
            return max(payload - self._live_bytes, 0) / payload

    def class_disk_bytes(self, class_id: str) -> int:
        """Live on-disk chain bytes one class pins (its history cost)."""
        with self._lock:
            st = self._classes.get(class_id)
            return st.live_bytes if st is not None else 0

    def max_chain_length(self) -> int:
        with self._lock:
            return max(
                (
                    entry.chain
                    for st in self._classes.values()
                    for entry in st.entries.values()
                ),
                default=0,
            )

    def snapshot(self) -> dict:
        """JSON-friendly stats for ``/__health__`` and ``/__metrics__``."""
        with self._lock:
            stats = self.stats
            return {
                "state_dir": str(self.state_dir),
                "generation": self._generation,
                "snapshot_every": self.snapshot_every,
                "classes": len(self._classes),
                "pack_bytes": self._pack.end,
                "live_pack_bytes": self._live_bytes,
                "garbage_bytes": max(
                    self._pack.end - FILE_HEADER.size - self._live_bytes, 0
                ),
                "journal_bytes": self._journal.bytes,
                "journal_records": stats.journal_records,
                "commits": stats.commits,
                "full_records": stats.full_records,
                "delta_records": stats.delta_records,
                "history_evictions": stats.history_evictions,
                "releases": stats.releases,
                "compactions": stats.compactions,
                "max_chain_length": self.max_chain_length(),
                "recovery_ms": round(stats.recovery_ms, 3),
                "journal_truncated_bytes": stats.journal_truncated_bytes,
                "pack_truncated_bytes": stats.pack_truncated_bytes,
                "warm_start": stats.warm_start,
                "rehydrated_classes": stats.rehydrated_classes,
            }

    # -- compaction ----------------------------------------------------------------

    def compact(self) -> int:
        """Rewrite live frames into a fresh generation; returns bytes freed.

        The new pack and journal are written completely and fsync'd, then
        ``CURRENT`` is swapped atomically — a crash at any point leaves
        either the old or the new generation fully intact.
        """
        with self._lock:
            old_generation = self._generation
            new_generation = old_generation + 1
            new_pack_path = self._pack_path(new_generation)
            new_journal_path = self._journal_path(new_generation)
            for stale in (new_pack_path, new_journal_path):
                if stale.exists():
                    stale.unlink()  # leftovers of a crashed compaction
            freed = self.garbage_bytes
            new_pack = Pack(new_pack_path)
            new_journal = Journal(new_journal_path)
            moves: dict[tuple[str, int], tuple[int, int]] = {}
            try:
                for st in self._ordered_states():
                    new_journal.append(
                        {
                            "type": REC_CLASS,
                            "class_id": st.class_id,
                            "server": st.server,
                            "hint": st.hint,
                        },
                        sync=False,
                    )
                    for url in st.members:
                        new_journal.append(
                            {
                                "type": REC_MEMBER,
                                "class_id": st.class_id,
                                "url": url,
                            },
                            sync=False,
                        )
                    if st.hits:
                        new_journal.append(
                            {
                                "type": REC_HITS,
                                "class_id": st.class_id,
                                "hits": st.hits,
                            },
                            sync=False,
                        )
                    for version in sorted(st.entries):
                        entry = st.entries[version]
                        body = self._pack.read(entry.offset, entry.length)
                        offset, length = new_pack.append(body, sync=False)
                        moves[(st.class_id, version)] = (offset, length)
                        record = {
                            "type": REC_BASE,
                            "class_id": st.class_id,
                            "version": version,
                            "offset": offset,
                            "length": length,
                            "encoding": entry.encoding,
                            "parent": entry.parent,
                            "chain": entry.chain,
                            "doc_checksum": entry.doc_checksum,
                            "doc_bytes": entry.doc_bytes,
                        }
                        # The sketch describes the latest base only; it
                        # must survive compaction like any other fact.
                        if version == st.latest and st.sketch:
                            record["sketch"] = st.sketch
                        new_journal.append(record, sync=False)
                new_pack.sync()
                new_journal.sync()
            except Exception:
                new_pack.close()
                new_journal.close()
                with contextlib.suppress(OSError):
                    new_pack_path.unlink()
                with contextlib.suppress(OSError):
                    new_journal_path.unlink()
                raise
            # The commit point: CURRENT now names the new generation.
            self._write_current(new_generation)
            old_pack, old_journal = self._pack, self._journal
            self._pack, self._journal = new_pack, new_journal
            self._journal.records = self.stats.journal_records = sum(
                1 + len(st.members) + len(st.entries) + (1 if st.hits else 0)
                for st in self._classes.values()
            )
            self._generation = new_generation
            for (class_id, version), (offset, length) in moves.items():
                entry = self._classes[class_id].entries[version]
                entry.offset, entry.length = offset, length
            old_pack.close()
            old_journal.close()
            for stale in (
                self._pack_path(old_generation),
                self._journal_path(old_generation),
            ):
                with contextlib.suppress(OSError):
                    stale.unlink()
            self.stats.compactions += 1
            if self.metrics is not None:
                self.metrics.inc(
                    "store_compactions",
                    help="pack compactions (garbage rewrites into a new generation)",
                )
            return freed

    def _ordered_states(self) -> list[ClassState]:
        return [self._classes[cid] for cid in sorted(self._classes, key=_class_sort)]

    # -- lifecycle -----------------------------------------------------------------

    def sync(self) -> None:
        with self._lock:
            self._pack.sync()
            self._journal.sync()

    def close(self) -> None:
        """Close pack and journal; idempotent (drain paths may double-close)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._pack.close()
            self._journal.close()


def _class_sort(class_id: str) -> tuple[int, str]:
    """Numeric-aware ordering so ``cls10`` sorts after ``cls9``.

    Only the trailing digit run counts, so fleet-prefixed ids
    (``w3-cls12``) order by their counter, not by ``312``.
    """
    match = re.search(r"(\d+)$", class_id)
    return (int(match.group(1)) if match else 0, class_id)


def _frame_valid(pack_data: bytes, offset: int, length: int) -> bool:
    """CRC-verify one pack frame inside the raw file image (recovery path)."""
    from repro.store.format import FRAME_HEADER

    if offset < FILE_HEADER.size or length < FRAME_HEADER.size:
        return False
    if offset + length > len(pack_data):
        return False
    payload_length, crc = FRAME_HEADER.unpack_from(pack_data, offset)
    if FRAME_HEADER.size + payload_length != length:
        return False
    payload = pack_data[offset + FRAME_HEADER.size : offset + length]
    return frame_crc(payload) == crc


def inspect_state_dir(state_dir: Path | str) -> dict:
    """Read-only dump of a state directory for ``repro store inspect``.

    Never truncates or repairs anything — torn tails are *reported*, not
    fixed, so inspection of a crashed state dir is side-effect free.
    """
    from repro.store.format import check_header
    from repro.store.pack import PACK_MAGIC

    state_dir = Path(state_dir)
    current = state_dir / CURRENT_FILE
    try:
        generation = int(current.read_text().strip())
    except (FileNotFoundError, ValueError):
        generation = 1
    journal_path = state_dir / f"journal-{generation:06d}.rjl"
    pack_path = state_dir / f"pack-{generation:06d}.rpk"

    journal_info: dict = {"path": str(journal_path), "records": []}
    if journal_path.exists():
        try:
            records, valid_end, size = scan_journal(journal_path)
        except StoreFormatError as exc:
            journal_info["error"] = str(exc)
        else:
            journal_info["records"] = [
                {"offset": offset, **record} for offset, record in records
            ]
            journal_info["bytes"] = size
            journal_info["torn_tail_bytes"] = size - valid_end
    else:
        journal_info["missing"] = True

    pack_info: dict = {"path": str(pack_path), "frames": []}
    if pack_path.exists():
        data = pack_path.read_bytes()
        try:
            check_header(data, PACK_MAGIC, str(pack_path))
        except StoreFormatError as exc:
            pack_info["error"] = str(exc)
        else:
            frames, valid_end = scan_frames(data, FILE_HEADER.size)
            pack_info["frames"] = [
                {"offset": frame.offset, "payload_bytes": len(frame.payload)}
                for frame in frames
            ]
            pack_info["bytes"] = len(data)
            pack_info["torn_tail_bytes"] = len(data) - valid_end
    else:
        pack_info["missing"] = True

    classes: dict[str, dict] = {}
    for entry in journal_info.get("records", []):
        rtype = entry.get("type")
        class_id = entry.get("class_id")
        if rtype == REC_CLASS:
            classes.setdefault(
                class_id,
                {
                    "server": entry.get("server"),
                    "hint": entry.get("hint"),
                    "members": 0,
                    "versions": [],
                    "latest": None,
                },
            )
        elif class_id in classes:
            summary = classes[class_id]
            if rtype == REC_MEMBER:
                summary["members"] += 1
            elif rtype == REC_BASE:
                version = entry.get("version")
                if version not in summary["versions"]:
                    summary["versions"].append(version)
                summary["latest"] = version
            elif rtype in (REC_RELEASE, REC_QUARANTINE):
                summary["versions"] = []
                summary["latest"] = None
            elif rtype == REC_EVICT:
                evicted = set(entry.get("versions", ()))
                summary["versions"] = [
                    v for v in summary["versions"] if v not in evicted
                ]
    return {
        "state_dir": str(state_dir),
        "generation": generation,
        "journal": journal_info,
        "pack": pack_info,
        "classes": classes,
    }
