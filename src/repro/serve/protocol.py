"""HTTP/1.1 wire protocol mapped onto the ``repro.http`` message model.

The simulated architecture exchanges in-process :class:`Request` /
:class:`Response` objects; the live server (:mod:`repro.serve.server`)
speaks a minimal but honest subset of HTTP/1.1 over asyncio streams and
translates at this boundary:

* request line + ``Host`` header ↔ the repo's ``<server>/<rest>`` URL form;
* ``Cookie`` header ↔ the request cookie dict (``uid`` user identification);
* the delta headers (``X-Delta``, ``X-Delta-Base``, ``X-Accept-Delta``)
  pass through untouched — they are ordinary end-to-end headers, which is
  the paper's transparent-deployment point;
* ``Content-Length`` and ``Transfer-Encoding: chunked`` bodies, both
  directions;
* keep-alive per HTTP/1.1 defaults (``Connection: close`` honoured).

Framing errors raise :class:`ProtocolError`; clean EOF between requests
is reported as ``None`` so connection loops can distinguish the two.

Two serve-layer extension headers ride along:

* ``X-Body-Digest: adler32=<hex>`` — integrity tag over the response body
  for non-delta responses (delta payloads carry their target checksum in
  the wire format already), so the load generator can verify byte-for-byte
  reconstruction for every response kind;
* ``X-Served-At: <seconds>`` — the server clock value used to render the
  document, letting a test harness re-render the exact snapshot.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from repro.delta.codec import checksum
from repro.http.messages import HEADER_CACHE_CONTROL, Headers, Request, Response
from repro.url.parts import split_server

HTTP_VERSION = "HTTP/1.1"
SERVER_SOFTWARE = "repro-serve/1.0"

HEADER_BODY_DIGEST = "X-Body-Digest"
HEADER_SERVED_AT = "X-Served-At"

#: chunk size used when a response is sent with chunked framing
DEFAULT_CHUNK_SIZE = 8192

MAX_LINE_BYTES = 16 * 1024
MAX_HEADER_COUNT = 128
MAX_BODY_BYTES = 64 * 1024 * 1024

REASONS = {
    200: "OK",
    204: "No Content",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    408: "Request Timeout",
    413: "Payload Too Large",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ProtocolError(Exception):
    """Malformed, truncated, or oversized HTTP framing on the wire."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


class ConnectionClosedError(ProtocolError):
    """The peer vanished mid-exchange (reset, or close at a message edge).

    A distinct subclass because the two failures mean different things to
    a client: malformed framing is a bug, but a dropped connection is the
    expected transport signature of a server restart — retryable the same
    way a 503 is.
    """


@dataclass(slots=True)
class ParsedRequest:
    """One inbound request plus its connection semantics."""

    request: Request
    keep_alive: bool
    wire_bytes: int


@dataclass(slots=True)
class ParsedResponse:
    """One inbound response plus its connection semantics."""

    response: Response
    keep_alive: bool
    wire_bytes: int


class _CountingReader:
    """Wraps a StreamReader, counting bytes and normalizing errors."""

    __slots__ = ("_reader", "bytes_read")

    def __init__(self, reader: asyncio.StreamReader) -> None:
        self._reader = reader
        self.bytes_read = 0

    async def readline(self) -> bytes:
        try:
            line = await self._reader.readline()
        except ValueError as exc:  # stream limit overrun
            raise ProtocolError(f"header line too long: {exc}") from exc
        self.bytes_read += len(line)
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError("header line too long")
        return line

    async def readexactly(self, n: int) -> bytes:
        try:
            data = await self._reader.readexactly(n)
        except asyncio.IncompleteReadError as exc:
            raise ConnectionClosedError(
                "connection closed inside message body"
            ) from exc
        self.bytes_read += len(data)
        return data

    async def read_to_eof(self) -> bytes:
        data = await self._reader.read(-1)
        self.bytes_read += len(data)
        return data


# -- header / cookie helpers ---------------------------------------------------


def parse_cookie_header(value: str) -> dict[str, str]:
    """``"uid=u1; theme=dark"`` → ``{"uid": "u1", "theme": "dark"}``."""
    cookies: dict[str, str] = {}
    for pair in value.split(";"):
        name, sep, val = pair.strip().partition("=")
        if sep and name:
            cookies[name] = val
    return cookies


def render_cookie_header(cookies: dict[str, str]) -> str:
    """Inverse of :func:`parse_cookie_header`."""
    return "; ".join(f"{name}={value}" for name, value in cookies.items())


def body_digest(body: bytes) -> str:
    """The ``X-Body-Digest`` value for a response body."""
    return f"adler32={checksum(body):08x}"


def digest_matches(header_value: str | None, body: bytes) -> bool:
    """Whether a received body matches its advertised digest header."""
    return header_value is not None and header_value == body_digest(body)


def _keep_alive(version: str, headers: Headers) -> bool:
    connection = (headers.get("Connection") or "").lower()
    if version == "HTTP/1.0":
        return "keep-alive" in connection
    return "close" not in connection


async def _read_headers(reader: _CountingReader) -> Headers:
    headers = Headers()
    count = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n"):
            return headers
        if not line:
            raise ConnectionClosedError("connection closed inside headers")
        count += 1
        if count > MAX_HEADER_COUNT:
            raise ProtocolError("too many header lines")
        text = line.decode("latin-1").rstrip("\r\n")
        name, sep, value = text.partition(":")
        if not sep or not name.strip():
            raise ProtocolError(f"malformed header line {text!r}")
        headers.set(name.strip(), value.strip())


async def _read_chunked(reader: _CountingReader) -> bytes:
    body = bytearray()
    while True:
        line = await reader.readline()
        if not line:
            raise ConnectionClosedError("connection closed inside chunked body")
        size_token = line.strip().split(b";", 1)[0]
        try:
            size = int(size_token, 16)
        except ValueError as exc:
            raise ProtocolError(f"bad chunk size {size_token!r}") from exc
        if size < 0 or len(body) + size > MAX_BODY_BYTES:
            raise ProtocolError("chunked body too large")
        if size == 0:
            # Trailer section: consume until the terminating blank line.
            while True:
                trailer = await reader.readline()
                if trailer in (b"\r\n", b"\n", b""):
                    return bytes(body)
            # not reached
        body += await reader.readexactly(size)
        if await reader.readexactly(2) != b"\r\n":
            raise ProtocolError("chunk data not CRLF-terminated")


async def _read_body(
    reader: _CountingReader, headers: Headers, *, eof_delimited_ok: bool = False
) -> bytes:
    transfer = (headers.get("Transfer-Encoding") or "").lower()
    if "chunked" in transfer:
        return await _read_chunked(reader)
    length_value = headers.get("Content-Length")
    if length_value is not None:
        try:
            length = int(length_value)
        except ValueError as exc:
            raise ProtocolError(f"bad Content-Length {length_value!r}") from exc
        if length < 0 or length > MAX_BODY_BYTES:
            raise ProtocolError(f"unacceptable Content-Length {length}", status=413)
        return await reader.readexactly(length) if length else b""
    if eof_delimited_ok:
        # HTTP/1.0-style close-delimited response body.
        return await reader.read_to_eof()
    return b""


# -- server side: requests in, responses out -----------------------------------


async def read_request(reader: asyncio.StreamReader) -> ParsedRequest | None:
    """Parse one request; ``None`` on clean EOF before any request byte."""
    counting = _CountingReader(reader)
    line = await counting.readline()
    if line in (b"\r\n", b"\n"):
        # Tolerate a stray blank line between pipelined requests (RFC 7230 §3.5).
        line = await counting.readline()
    if not line:
        return None
    text = line.decode("latin-1").strip()
    parts = text.split()
    if len(parts) != 3:
        raise ProtocolError(f"malformed request line {text!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise ProtocolError(f"unsupported protocol version {version!r}")
    headers = await _read_headers(counting)
    keep_alive = _keep_alive(version, headers)
    body = await _read_body(counting, headers)  # read (and discard) for framing
    del body
    if "://" in target:
        # absolute-form target (proxy style): the URL is already complete
        url = target.split("://", 1)[1]
    else:
        host = headers.get("Host")
        if host is None:
            raise ProtocolError("missing Host header")
        if not target.startswith("/"):
            raise ProtocolError(f"malformed request target {target!r}")
        url = f"{host}{target}"
    cookies = parse_cookie_header(headers.get("Cookie", "") or "")
    request = Request(
        url=url,
        method=method,
        headers=headers,
        cookies=cookies,
        client_id=cookies.get("uid", "anonymous"),
    )
    return ParsedRequest(request, keep_alive, counting.bytes_read)


def serialize_response(
    response: Response,
    *,
    keep_alive: bool = True,
    chunked: bool = False,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> bytes:
    """Render a :class:`Response` as HTTP/1.1 wire bytes."""
    reason = REASONS.get(response.status, "Unknown")
    out = bytearray(f"{HTTP_VERSION} {response.status} {reason}\r\n".encode("latin-1"))
    owned = {"content-length", "transfer-encoding", "connection"}
    for name, value in response.headers.items():
        if name.lower() in owned:
            continue
        out += f"{name}: {value}\r\n".encode("latin-1")
    out += b"Connection: keep-alive\r\n" if keep_alive else b"Connection: close\r\n"
    body = response.body
    if chunked:
        out += b"Transfer-Encoding: chunked\r\n\r\n"
        for start in range(0, len(body), chunk_size):
            chunk = body[start : start + chunk_size]
            out += f"{len(chunk):x}\r\n".encode("latin-1") + chunk + b"\r\n"
        out += b"0\r\n\r\n"
    else:
        out += f"Content-Length: {len(body)}\r\n\r\n".encode("latin-1") + body
    return bytes(out)


# -- client side: requests out, responses in -----------------------------------


def serialize_request(request: Request, *, keep_alive: bool = True) -> bytes:
    """Render a :class:`Request` as HTTP/1.1 wire bytes."""
    server, remainder = split_server(request.url)
    lines = [f"{request.method} /{remainder} {HTTP_VERSION}", f"Host: {server}"]
    skipped = {"host", "connection", "cookie", "content-length", "transfer-encoding"}
    for name, value in request.headers.items():
        if name.lower() in skipped:
            continue
        lines.append(f"{name}: {value}")
    if request.cookies:
        lines.append(f"Cookie: {render_cookie_header(request.cookies)}")
    if not keep_alive:
        lines.append("Connection: close")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def read_response(reader: asyncio.StreamReader) -> ParsedResponse:
    """Parse one response off a client connection."""
    counting = _CountingReader(reader)
    line = await counting.readline()
    if not line:
        raise ConnectionClosedError("connection closed before status line")
    text = line.decode("latin-1").strip()
    parts = text.split(None, 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise ProtocolError(f"malformed status line {text!r}")
    try:
        status = int(parts[1])
    except ValueError as exc:
        raise ProtocolError(f"malformed status code {parts[1]!r}") from exc
    headers = await _read_headers(counting)
    keep_alive = _keep_alive(parts[0], headers)
    body = await _read_body(counting, headers, eof_delimited_ok=not keep_alive)
    response = Response(status=status, body=body, headers=headers)
    cache_control = headers.get(HEADER_CACHE_CONTROL, "") or ""
    if "public" in cache_control or "max-age" in cache_control:
        response.cachable = True
    return ParsedResponse(response, keep_alive, counting.bytes_read)
