"""Async bridge between the serving layer and an origin site instance.

In Fig. 2 the delta-server sits *next to* the origin web-server; this
gateway is that adjacency for the live stack: it hands requests to a
:class:`~repro.origin.server.OriginServer` and exposes the injection
points for robustness testing:

* **latency** — a fixed floor plus uniform jitter per fetch, modelling a
  backend that is not colocated (drives the per-request-timeout path in
  :mod:`repro.serve.server`);
* **fault plan** — a :class:`~repro.resilience.faults.FaultPlan`: a
  structured, seeded, schedulable composition of error bursts, latency
  spikes, slow-drip responses, payload corruption, and connection resets
  (drives the retry/breaker/degradation machinery end to end);
* **fault hook** — the legacy single callable that may substitute an
  error response for any request; still supported, and hardened: a hook
  that *raises* is converted into an injected 500 and counted
  (``hook_failures``) instead of escaping with the gateway lock's stats
  half-updated and killing the worker request.

``fetch_sync`` is the flavour the :class:`DeltaServer` engine consumes as
its ``origin_fetch`` (it runs on executor worker threads, so it may
``time.sleep``); ``fetch`` is the awaitable flavour used when the serving
layer bypasses the engine (plain mode health checks, tests).  Renders run
in parallel — the sharded engine fetches off-lock and the origin's
renderer is pure — while the gateway's internal lock only covers its
stats counters and the injection decisions (seeded rng draws, fault-plan
bookkeeping), so a slow render never convoys other fetches.
"""

from __future__ import annotations

import asyncio
import random
import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.http.messages import Request, Response
from repro.origin.server import OriginServer
from repro.resilience.faults import FaultAction, FaultPlan

#: May return a Response to inject in place of the origin's (fault), or
#: None to let the request through.
FaultHook = Callable[[Request], Response | None]


@dataclass(slots=True)
class GatewayStats:
    """Counters for the origin bridge."""

    fetches: int = 0
    faults_injected: int = 0
    injected_latency_seconds: float = 0.0
    #: legacy fault hooks that raised (converted to injected 500s)
    hook_failures: int = 0
    resets_injected: int = 0
    corruptions_injected: int = 0
    drip_seconds: float = 0.0


class OriginGateway:
    """Thread-safe, fault-injectable access to one origin server."""

    def __init__(
        self,
        origin: OriginServer,
        *,
        latency: float = 0.0,
        jitter: float = 0.0,
        fault_hook: FaultHook | None = None,
        fault_plan: FaultPlan | None = None,
        seed: int = 7,
    ) -> None:
        if latency < 0 or jitter < 0:
            raise ValueError("latency and jitter must be >= 0")
        self.origin = origin
        self.latency = latency
        self.jitter = jitter
        self.fault_hook = fault_hook
        self.fault_plan = fault_plan
        self.stats = GatewayStats()
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def _draw_delay(self) -> float:
        with self._lock:
            if self.jitter:
                return self.latency + self._rng.random() * self.jitter
            return self.latency

    def _plan_action(self, request: Request) -> FaultAction:
        if self.fault_plan is None:
            return FaultAction()
        return self.fault_plan.decide(request)

    def _complete(
        self, request: Request, now: float, delay: float, action: FaultAction
    ) -> Response:
        with self._lock:
            self.stats.fetches += 1
            self.stats.injected_latency_seconds += delay
            if action.exception is not None:
                self.stats.resets_injected += 1
                raise action.exception
            if action.response is not None:
                self.stats.faults_injected += 1
                return action.response
            if self.fault_hook is not None:
                try:
                    injected = self.fault_hook(request)
                except Exception:
                    # A buggy hook must read as an origin fault, not kill
                    # the worker request with the stats half-updated.
                    self.stats.hook_failures += 1
                    return Response(status=500, body=b"fault hook raised")
                if injected is not None:
                    self.stats.faults_injected += 1
                    return injected
        # The render runs outside the gateway lock: OriginServer is
        # thread-safe and rendering is the expensive part of a fetch.
        response = self.origin.handle(request, now)
        if action.corrupt_flips and response.body:
            assert self.fault_plan is not None
            response = Response(
                status=response.status,
                body=self.fault_plan.mangle(response.body, action.corrupt_flips),
                headers=response.headers,
                cachable=response.cachable,
            )
            with self._lock:
                self.stats.corruptions_injected += 1
        return response

    def _drip_delay(self, action: FaultAction, response: Response) -> float:
        if not action.drip_bps or not response.body:
            return 0.0
        drip = len(response.body) / action.drip_bps
        with self._lock:
            self.stats.drip_seconds += drip
        return drip

    def fetch_sync(self, request: Request, now: float) -> Response:
        """Blocking fetch — the engine's ``origin_fetch`` (worker threads)."""
        action = self._plan_action(request)
        delay = self._draw_delay() + action.pre_delay
        if delay:
            time.sleep(delay)
        response = self._complete(request, now, delay, action)
        drip = self._drip_delay(action, response)
        if drip:
            time.sleep(drip)
        return response

    async def fetch(self, request: Request, now: float) -> Response:
        """Awaitable fetch for loop-side callers."""
        action = self._plan_action(request)
        delay = self._draw_delay() + action.pre_delay
        if delay:
            await asyncio.sleep(delay)
        response = self._complete(request, now, delay, action)
        drip = self._drip_delay(action, response)
        if drip:
            await asyncio.sleep(drip)
        return response
