"""Async bridge between the serving layer and an origin site instance.

In Fig. 2 the delta-server sits *next to* the origin web-server; this
gateway is that adjacency for the live stack: it hands requests to a
:class:`~repro.origin.server.OriginServer` and exposes two injection
points for robustness testing:

* **latency** — a fixed floor plus uniform jitter per fetch, modelling a
  backend that is not colocated (drives the per-request-timeout path in
  :mod:`repro.serve.server`);
* **fault hook** — a callable that may substitute an error response for
  any request (drives the passthrough/5xx paths without touching the
  origin).

``fetch_sync`` is the flavour the :class:`DeltaServer` engine consumes as
its ``origin_fetch`` (it runs on executor worker threads, so it may
``time.sleep``); ``fetch`` is the awaitable flavour used when the serving
layer bypasses the engine (plain mode health checks, tests).  Origin
access is serialized on an internal lock: the synthetic renderer and its
stats counters are not thread-safe, and a single-CPU origin is exactly
the paper's testbed shape.
"""

from __future__ import annotations

import asyncio
import random
import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.http.messages import Request, Response
from repro.origin.server import OriginServer

#: May return a Response to inject in place of the origin's (fault), or
#: None to let the request through.
FaultHook = Callable[[Request], Response | None]


@dataclass(slots=True)
class GatewayStats:
    """Counters for the origin bridge."""

    fetches: int = 0
    faults_injected: int = 0
    injected_latency_seconds: float = 0.0


class OriginGateway:
    """Thread-safe, fault-injectable access to one origin server."""

    def __init__(
        self,
        origin: OriginServer,
        *,
        latency: float = 0.0,
        jitter: float = 0.0,
        fault_hook: FaultHook | None = None,
        seed: int = 7,
    ) -> None:
        if latency < 0 or jitter < 0:
            raise ValueError("latency and jitter must be >= 0")
        self.origin = origin
        self.latency = latency
        self.jitter = jitter
        self.fault_hook = fault_hook
        self.stats = GatewayStats()
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def _draw_delay(self) -> float:
        with self._lock:
            if self.jitter:
                return self.latency + self._rng.random() * self.jitter
            return self.latency

    def _complete(self, request: Request, now: float, delay: float) -> Response:
        with self._lock:
            self.stats.fetches += 1
            self.stats.injected_latency_seconds += delay
            if self.fault_hook is not None:
                injected = self.fault_hook(request)
                if injected is not None:
                    self.stats.faults_injected += 1
                    return injected
            return self.origin.handle(request, now)

    def fetch_sync(self, request: Request, now: float) -> Response:
        """Blocking fetch — the engine's ``origin_fetch`` (worker threads)."""
        delay = self._draw_delay()
        if delay:
            time.sleep(delay)
        return self._complete(request, now, delay)

    async def fetch(self, request: Request, now: float) -> Response:
        """Awaitable fetch for loop-side callers."""
        delay = self._draw_delay()
        if delay:
            await asyncio.sleep(delay)
        return self._complete(request, now, delay)
