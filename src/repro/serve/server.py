"""The live delta-server: ``repro.core.DeltaServer`` behind real sockets.

This is the deployment posture of Fig. 2 made literal: an asyncio TCP
listener speaking HTTP/1.1 (:mod:`repro.serve.protocol`), with the
class-based delta-encoding engine doing the actual work.  Design points,
each mirroring a Section VI-C property of the paper's Apache testbed:

* **Connection-slot semaphore** — at most ``max_connections`` (default
  the paper's 255) concurrent connections; further connections are turned
  away with ``503`` instead of queueing, the behaviour the discrete-event
  capacity sweep models.
* **The event loop never blocks on the differ** — delta generation (and
  origin rendering) runs on a :class:`DeltaExecutor` worker pool; the
  loop only parses, awaits, and writes.  The engine is sharded
  (per-class locks, off-lock origin fetch, snapshot-encode-commit delta
  generation — :mod:`repro.core.delta_server`), so worker threads serving
  different classes genuinely overlap instead of convoying on one engine
  lock; connection handling stays concurrent on the loop.
* **Per-request timeout** — a dispatch exceeding ``request_timeout``
  answers ``504`` and the connection keeps serving.
* **Origin resilience** — origin access goes through a
  :class:`~repro.resilience.policy.ResilientOrigin` (retries with
  backoff under a deadline budget, circuit breaker); when the policy
  gives up, the engine degrades to a marked-stale base-file and the
  front-end to ``502`` — a dead origin never yields raw 500s or a
  worker pool hung on retries.
* **Health surface** — ``GET /__health__`` reports breaker state,
  quarantined classes, and degradation counters as JSON.
* **Metrics surface** — ``GET /__metrics__`` renders every counter and
  per-stage histogram (engine pipeline, origin resilience, serve layer)
  in the Prometheus text exposition format; every response carries an
  ``X-Trace-Id`` (client-supplied or minted here) so slow requests can
  be correlated with their ``X-Stage-Times`` stage timings.
* **Graceful drain** — ``close()`` stops accepting, lets in-flight
  connections finish for ``drain_timeout`` seconds, then cancels.

``mode="plain"`` serves full origin renders through the identical wire
stack (no delta engine), giving the plain-web-server baseline of the
capacity comparison over the same sockets.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import json
import logging
import random
import socket
import time
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.core.config import DeltaServerConfig
from repro.core.delta_server import DeltaServer
from repro.fleet.partition import worker_class_prefix
from repro.fleet.router import (
    HEADER_FLEET_FORWARDED,
    HEADER_FLEET_WORKER,
    FleetRouter,
    FleetWorkerConfig,
    PeerUnavailable,
)
from repro.http.messages import (
    HEADER_DEGRADED,
    HEADER_IF_NONE_MATCH,
    HEADER_TRACE_ID,
    Request,
    Response,
)
from repro.metrics import PROMETHEUS_CONTENT_TYPE, MetricsRegistry
from repro.origin.server import OriginServer
from repro.origin.site import SyntheticSite
from repro.resilience.breaker import CLOSED
from repro.resilience.faults import FaultPlan
from repro.resilience.policy import (
    OriginUnavailable,
    ResilienceConfig,
    ResilientOrigin,
)
from repro.serve.executor import DeltaExecutor
from repro.serve.gateway import FaultHook, OriginGateway
from repro.serve.protocol import (
    HEADER_BODY_DIGEST,
    HEADER_SERVED_AT,
    SERVER_SOFTWARE,
    ParsedRequest,
    ProtocolError,
    body_digest,
    read_request,
    serialize_response,
)
from repro.serve.stats import ServeStats
from repro.url.parts import split_server

logger = logging.getLogger("repro.serve")

MODES = ("delta", "plain")

#: the paper's Apache connection ceiling (Section VI-C)
PAPER_CONNECTION_LIMIT = 255

#: path (relative to any host) answering the liveness/degradation report
HEALTH_PATH = "__health__"

#: path (relative to any host) answering the Prometheus-text exposition
METRICS_PATH = "__metrics__"


class DeltaHTTPServer:
    """Asyncio HTTP/1.1 front-end for a :class:`DeltaServer` engine."""

    def __init__(
        self,
        gateway: OriginGateway,
        engine: DeltaServer | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        mode: str = "delta",
        max_connections: int = PAPER_CONNECTION_LIMIT,
        request_timeout: float = 30.0,
        idle_timeout: float = 30.0,
        drain_timeout: float = 5.0,
        chunk_threshold: int = 16 * 1024,
        executor: DeltaExecutor | None = None,
        resilience: ResilientOrigin | None = None,
        clock: Callable[[], float] | None = None,
        metrics: MetricsRegistry | None = None,
        reuse_port: bool = False,
        listen_sock: socket.socket | None = None,
        router: FleetRouter | None = None,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        if mode == "delta" and engine is None:
            raise ValueError("delta mode requires a DeltaServer engine")
        if max_connections < 1:
            raise ValueError("max_connections must be >= 1")
        self.gateway = gateway
        self.engine = engine
        self.resilience = resilience
        self.mode = mode
        self.max_connections = max_connections
        self.stats = ServeStats()
        # One observability sink for the whole stack: prefer the engine's
        # registry (build_server shares it with the resilience policy) so
        # /__metrics__ renders every layer's histograms in one pass.
        self.metrics = metrics or (
            engine.metrics if engine is not None else MetricsRegistry()
        )
        self.clock = clock or time.monotonic
        # Trace ids: a short random run prefix plus a sequence number, so
        # ids are unique across restarts but cheap and log-sortable.
        self._trace_prefix = f"{random.getrandbits(32):08x}"
        self._trace_seq = itertools.count(1)
        self._host = host
        self._port = port
        self._request_timeout = request_timeout
        self._idle_timeout = idle_timeout
        self._drain_timeout = drain_timeout
        self._chunk_threshold = chunk_threshold
        # The server owns its executor (shuts it down on close), whether
        # constructed here or handed in.
        self._executor = executor or DeltaExecutor("thread")
        self._slots = asyncio.Semaphore(max_connections)
        self._tasks: set[asyncio.Task] = set()
        self._server: asyncio.base_events.Server | None = None
        self._closing = False
        self._closed = False
        # -- fleet wiring (all optional; single-process serving unchanged) --
        self._reuse_port = reuse_port
        self._listen_sock = listen_sock
        self.router = router
        self._internal_server: asyncio.base_events.Server | None = None
        #: populated by close(): {"in_flight", "cancelled", "seconds"}
        self.drain_report: dict | None = None

    # -- lifecycle -------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (resolves ephemeral port 0)."""
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[:2]

    @property
    def port(self) -> int:
        return self.address[1]

    async def start(self) -> None:
        if self._listen_sock is not None:
            # Fleet parent-acceptor mode: accept from the supervisor's
            # inherited listening socket (shared across every worker).
            self._server = await asyncio.start_server(
                self._client_connected, sock=self._listen_sock
            )
        elif self._reuse_port:
            # Fleet SO_REUSEPORT mode: every worker binds the same
            # address; the kernel spreads incoming connections.
            self._server = await asyncio.start_server(
                self._client_connected,
                self._host,
                self._port,
                reuse_port=True,
            )
        else:
            self._server = await asyncio.start_server(
                self._client_connected, self._host, self._port
            )
        if self.router is not None:
            # Loopback peer port: forwarded intra-fleet requests and the
            # supervisor's health/metrics scrapes arrive here, through
            # the identical connection handler (slots, stats, timeouts).
            self._internal_server = await asyncio.start_server(
                self._client_connected,
                "127.0.0.1",
                self.router.config.internal_port,
            )
        self.stats.started_at = self.clock()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        with contextlib.suppress(asyncio.CancelledError):
            await self._server.serve_forever()

    async def close(self) -> None:
        """Graceful drain: stop accepting, finish in-flight, then cancel.

        Idempotent — a signal-driven drain racing the ``async with``
        exit path must not double-drain or double-close the store.
        """
        if self._closed:
            return
        self._closed = True
        self._closing = True
        drain_started = self.clock()
        in_flight = len(self._tasks)
        cancelled = 0
        for server in (self._server, self._internal_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        if self.router is not None:
            # Drop parked peer-pool connections first: a peer draining in
            # parallel counts our idle keep-alives as its in-flight work,
            # and two workers waiting on each other's parked connections
            # would both burn the full drain timeout.
            await self.router.close()
        if self._tasks:
            _, pending = await asyncio.wait(
                set(self._tasks), timeout=self._drain_timeout
            )
            cancelled = len(pending)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        self._executor.shutdown()
        if self.engine is not None:
            # Flush + close the persistent store (no-op without one;
            # engine.close() is itself idempotent).
            self.engine.close()
        self.drain_report = {
            "in_flight": in_flight,
            "cancelled": cancelled,
            "seconds": round(self.clock() - drain_started, 4),
        }

    async def __aenter__(self) -> "DeltaHTTPServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # -- connection handling ---------------------------------------------------

    def _client_connected(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.ensure_future(self._serve_connection(reader, writer))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._closing or self._slots.locked():
            # All connection slots are taken: turn the connection away
            # (the DES capacity model's rejection path) instead of queueing.
            wire = serialize_response(
                Response(status=503, body=b"connection slots exhausted"),
                keep_alive=False,
            )
            self.stats.on_connection_rejected(len(wire))
            with contextlib.suppress(Exception):
                writer.write(wire)
                await writer.drain()
            writer.close()
            return
        await self._slots.acquire()
        self.stats.on_connection_open()
        try:
            await self._request_loop(reader, writer)
        finally:
            self._slots.release()
            self.stats.on_connection_close()
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _request_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                parsed = await asyncio.wait_for(
                    read_request(reader), self._idle_timeout
                )
            except (asyncio.TimeoutError, ConnectionError):
                return
            except ProtocolError as exc:
                self.stats.protocol_errors += 1
                # The peer may already be gone (half-closed socket mid
                # error) — failing to deliver the 400 is not an event.
                with contextlib.suppress(ConnectionError, OSError):
                    await self._write(
                        writer,
                        Response(status=exc.status, body=str(exc).encode()),
                        keep_alive=False,
                    )
                return
            if parsed is None:
                return  # clean EOF
            keep_alive = await self._serve_one(writer, parsed)
            if not keep_alive:
                return

    def _next_trace_id(self) -> str:
        return f"{self._trace_prefix}-{next(self._trace_seq):06x}"

    async def _serve_one(
        self, writer: asyncio.StreamWriter, parsed: ParsedRequest
    ) -> bool:
        self.stats.requests += 1
        self.stats.bytes_in += parsed.wire_bytes
        # Trace id: honour a client-supplied X-Trace-Id, mint one
        # otherwise; the request carries it through gateway and engine,
        # and the response echoes it so the client can correlate a slow
        # answer with the server-side stage timings recorded under it.
        trace_id = parsed.request.headers.get(HEADER_TRACE_ID) or self._next_trace_id()
        parsed.request.headers.set(HEADER_TRACE_ID, trace_id)
        started = self.clock()
        try:
            response = await asyncio.wait_for(
                self._dispatch(parsed.request), self._request_timeout
            )
        except asyncio.TimeoutError:
            # The worker may still be running; the engine lock keeps any
            # late mutation consistent — only this response is abandoned.
            self.stats.timeouts += 1
            response = Response(status=504, body=b"request timed out")
        except OriginUnavailable as exc:
            # Plain mode has no base-file to fall back on (in delta mode
            # the engine degrades before this propagates): answer 502.
            response = Response(status=502, body=b"origin unavailable")
            response.headers.set(HEADER_DEGRADED, "origin-unavailable")
            logger.warning(
                "origin unavailable for %s: %s", parsed.request.url, exc
            )
        except Exception as exc:
            # Defensive: an engine bug must cost one response, not the
            # server — but its cause is classified and kept, not discarded.
            self.stats.on_exception(exc)
            logger.exception("unhandled error serving %s", parsed.request.url)
            response = Response(status=500, body=b"internal error")
        response.headers.set(HEADER_TRACE_ID, trace_id)
        keep_alive = parsed.keep_alive and not self._closing
        try:
            await self._write(
                writer, response, keep_alive=keep_alive,
                latency=self.clock() - started,
            )
        except ConnectionError:
            return False
        return keep_alive

    # -- dispatch --------------------------------------------------------------

    async def _dispatch(self, request: Request) -> Response:
        now = self.clock()
        _, remainder = split_server(request.url)
        if (
            self.router is not None
            and remainder not in (HEALTH_PATH, METRICS_PATH)
            and not request.headers.get(HEADER_FLEET_FORWARDED)
        ):
            owner = self.router.owner_for_url(request.url)
            if owner != self.router.worker_id:
                try:
                    # Returned verbatim: the owner already stamped
                    # Server/X-Served-At/digest headers; re-stamping here
                    # would break client-side byte verification.
                    return await self.router.forward(owner, request)
                except PeerUnavailable:
                    # Same retryable contract as slot exhaustion; the
                    # owner is mid-restart and will be back shortly.
                    response = Response(
                        status=503, body=b"fleet peer unavailable"
                    )
                    response.headers.set(
                        HEADER_FLEET_WORKER, str(self.router.worker_id)
                    )
                    return response
            self.router.note_local(request)
        elif self.router is not None and request.headers.get(
            HEADER_FLEET_FORWARDED
        ):
            self.router.note_local(request)
        if remainder == HEALTH_PATH:
            response = self._health_response()
        elif remainder == METRICS_PATH:
            response = self._metrics_response(now)
        elif self.mode == "plain":
            fetch = (
                self.resilience.fetch_sync
                if self.resilience is not None
                else self.gateway.fetch_sync
            )
            response = await self._executor.run(fetch, request, now)
        else:
            assert self.engine is not None
            response = await self._executor.run(self.engine.handle, request, now)
        response.headers.set("Server", SERVER_SOFTWARE)
        response.headers.set(HEADER_SERVED_AT, f"{now:.6f}")
        if self.router is not None:
            response.headers.set(
                HEADER_FLEET_WORKER, str(self.router.worker_id)
            )
        if not response.is_delta:
            # Deltas carry their target checksum in the wire payload; every
            # other body gets an integrity tag so clients can verify
            # byte-for-byte what they received.
            digest = body_digest(response.body)
            response.headers.set(HEADER_BODY_DIGEST, digest)
            if (
                response.status == 200
                and response.cachable
                and request.headers.get(HEADER_IF_NONE_MATCH) == digest
            ):
                # Checksum revalidation: the caller (a proxy-cache with a
                # TTL-expired copy) already holds these exact bytes.  304
                # keeps the identifying headers — digest, base-file ref,
                # cachability markers — but sends no body, so a base-file
                # refresh costs headers instead of the full transfer.
                not_modified = Response(status=304, headers=response.headers.copy())
                return not_modified
        return response

    def _health_response(self) -> Response:
        """``/__health__``: breaker, quarantine, and degradation report.

        Built entirely from lock-cheap snapshots (never the engine lock,
        which is held across origin fetches), so the probe answers even
        while the origin is down and workers are mid-backoff.
        """
        self.stats.health_checks += 1
        breaker_state = (
            self.resilience.breaker.state if self.resilience is not None else None
        )
        engine_health = (
            self.engine.health_snapshot() if self.engine is not None else None
        )
        healthy = (breaker_state in (None, CLOSED)) and not (
            engine_health and engine_health["quarantined"]
        )
        payload = {
            "status": "ok" if healthy else "degraded",
            "mode": self.mode,
            "closing": self._closing,
            "connections": {
                "active": self.stats.active_connections,
                "peak": self.stats.peak_connections,
                "rejected": self.stats.connections_rejected,
                "slots": self.max_connections,
            },
            "requests": self.stats.requests,
            "degraded": {
                "stale": self.stats.degraded_stale,
                "unavailable": self.stats.degraded_unavailable,
            },
            "exceptions": dict(self.stats.exception_counts),
            "resilience": (
                self.resilience.snapshot() if self.resilience is not None else None
            ),
            "engine": engine_health,
            "fleet": self.router.snapshot() if self.router is not None else None,
        }
        response = Response(
            status=200, body=json.dumps(payload, sort_keys=True).encode()
        )
        response.headers.set("Content-Type", "application/json")
        return response

    def _metrics_response(self, now: float) -> Response:
        """``/__metrics__``: the whole stack in Prometheus text format.

        One render pass over (a) the shared registry — engine stage
        histograms, resilience attempt/backoff timings — and (b) the
        scalar counters of the serve stats, engine, gateway, and breaker,
        materialized as exposition lines at read time so there is no
        double bookkeeping on the hot path.
        """
        extra = self.stats.prometheus_lines(now)
        if self.engine is not None:
            stats = self.engine.stats
            engine_counters = [
                ("requests", stats.requests),
                ("direct_bytes", stats.direct_bytes),
                ("sent_bytes", stats.sent_bytes),
                ("deltas_served", stats.deltas_served),
                ("full_served", stats.full_served),
                ("passthrough", stats.passthrough),
                ("base_files_served", stats.base_files_served),
                ("base_file_bytes", stats.base_file_bytes),
                ("group_rebases", stats.group_rebases),
                ("basic_rebases", stats.basic_rebases),
                ("stale_served", stats.stale_served),
                ("origin_unavailable", stats.origin_unavailable),
                ("quarantines", stats.quarantines),
                ("integrity_failures", stats.integrity_failures),
                ("encode_failures", stats.encode_failures),
                ("quarantine_recoveries", stats.quarantine_recoveries),
                ("commit_conflicts", stats.commit_conflicts),
                ("commit_fallbacks", stats.commit_fallbacks),
            ]
            for name, value in engine_counters:
                full = f"repro_engine_{name}_total"
                extra.append(f"# TYPE {full} counter")
                extra.append(f"{full} {value}")
            extra.append("# TYPE repro_engine_classes gauge")
            extra.append(f"repro_engine_classes {len(self.engine.grouper.classes)}")
            store = self.engine.store_hooks.snapshot()
            if store is not None:
                store_counters = [
                    ("journal_records", store["journal_records"]),
                    ("commits", store["commits"]),
                    ("full_records", store["full_records"]),
                    ("delta_records", store["delta_records"]),
                    ("history_evictions", store["history_evictions"]),
                    ("compactions", store["compactions"]),
                ]
                for name, value in store_counters:
                    full = f"repro_store_{name}_total"
                    extra.append(f"# TYPE {full} counter")
                    extra.append(f"{full} {value}")
                store_gauges = [
                    ("pack_bytes", store["pack_bytes"]),
                    ("live_pack_bytes", store["live_pack_bytes"]),
                    ("garbage_bytes", store["garbage_bytes"]),
                    ("journal_bytes", store["journal_bytes"]),
                    ("classes", store["classes"]),
                    ("max_chain_length", store["max_chain_length"]),
                    ("snapshot_every", store["snapshot_every"]),
                    ("generation", store["generation"]),
                    ("recovery_ms", store["recovery_ms"]),
                    ("warm_start", int(store["warm_start"])),
                    ("rehydrated_classes", store["rehydrated_classes"]),
                ]
                for name, value in store_gauges:
                    full = f"repro_store_{name}"
                    extra.append(f"# TYPE {full} gauge")
                    extra.append(f"{full} {value}")
        if self.router is not None:
            fleet = self.router.snapshot()
            fleet_counters = [
                ("local_served", fleet["local_served"]),
                ("served_for_peers", fleet["served_for_peers"]),
                ("forwarded", fleet["forwarded"]),
                ("forward_failures", fleet["forward_failures"]),
            ]
            for name, value in fleet_counters:
                full = f"repro_fleet_{name}_total"
                extra.append(f"# TYPE {full} counter")
                extra.append(f"{full} {value}")
        gw = self.gateway.stats
        gateway_counters = [
            ("fetches", gw.fetches),
            ("faults_injected", gw.faults_injected),
            ("hook_failures", gw.hook_failures),
            ("resets_injected", gw.resets_injected),
            ("corruptions_injected", gw.corruptions_injected),
        ]
        for name, value in gateway_counters:
            full = f"repro_origin_gateway_{name}_total"
            extra.append(f"# TYPE {full} counter")
            extra.append(f"{full} {value}")
        if self.resilience is not None:
            breaker = self.resilience.breaker.snapshot()
            extra.append("# TYPE repro_breaker_state gauge")
            for state in ("closed", "open", "half_open"):
                flag = 1 if breaker["state"] == state else 0
                extra.append(f'repro_breaker_state{{state="{state}"}} {flag}')
            extra.append("# TYPE repro_breaker_opened_total counter")
            extra.append(f"repro_breaker_opened_total {breaker['opened']}")
            extra.append("# TYPE repro_breaker_reclosed_total counter")
            extra.append(f"repro_breaker_reclosed_total {breaker['reclosed']}")
        response = Response(status=200, body=self.metrics.render(extra).encode())
        response.headers.set("Content-Type", PROMETHEUS_CONTENT_TYPE)
        return response

    async def _write(
        self,
        writer: asyncio.StreamWriter,
        response: Response,
        *,
        keep_alive: bool,
        latency: float | None = None,
    ) -> None:
        chunked = len(response.body) >= self._chunk_threshold
        started = time.perf_counter()
        wire = serialize_response(response, keep_alive=keep_alive, chunked=chunked)
        writer.write(wire)
        await writer.drain()
        self.metrics.observe(
            "server_stage_seconds",
            time.perf_counter() - started,
            {"stage": "write"},
            help="serve-layer stage durations (serialize + drain)",
        )
        self.stats.on_response(response, len(wire), latency)


def build_server(
    sites: Sequence[SyntheticSite] | Iterable[SyntheticSite],
    *,
    mode: str = "delta",
    config: DeltaServerConfig | None = None,
    origin_latency: float = 0.0,
    origin_jitter: float = 0.0,
    fault_hook: FaultHook | None = None,
    fault_plan: FaultPlan | None = None,
    resilience: ResilienceConfig | None = None,
    executor_kind: str = "thread",
    executor_workers: int | None = None,
    state_dir: str | Path | None = None,
    snapshot_every: int | None = None,
    fleet: FleetWorkerConfig | None = None,
    **server_kwargs: object,
) -> DeltaHTTPServer:
    """Assemble the full live stack for a set of synthetic sites.

    Mirrors :class:`repro.simulation.engine.Simulation`'s wiring — origin,
    admin rulebook from each site's hint pattern, engine — but in front of
    real sockets instead of the simulated clock.  Origin access goes
    through a :class:`ResilientOrigin` (retries, backoff, circuit breaker,
    degradation) by default; pass ``ResilienceConfig(enabled=False)`` for
    the raw gateway.

    ``state_dir`` switches on the persistent pack/journal store: class
    state and base-file version chains survive restarts (warm start —
    recovery runs inside this call), with full snapshots every
    ``snapshot_every`` versions.  Only meaningful in ``delta`` mode.
    """
    from repro.url.rules import RuleBook

    site_list = list(sites)
    origin = OriginServer(site_list)
    gateway = OriginGateway(
        origin,
        latency=origin_latency,
        jitter=origin_jitter,
        fault_hook=fault_hook,
        fault_plan=fault_plan,
    )
    # One registry across the stack: engine stage timings, resilience
    # attempt/backoff histograms, and serve-layer write timings all land
    # in the same /__metrics__ exposition.
    registry = MetricsRegistry()
    resilience_config = resilience or ResilienceConfig()
    resilient = (
        ResilientOrigin(gateway.fetch_sync, resilience_config, metrics=registry)
        if resilience_config.enabled
        else None
    )
    origin_fetch = resilient.fetch_sync if resilient is not None else gateway.fetch_sync
    engine = None
    router = None
    if mode == "delta":
        rulebook = RuleBook()
        for site in site_list:
            rulebook.add_rule(site.spec.name, site.hint_rule_pattern())
        if fleet is not None:
            router = FleetRouter(fleet, rulebook)
        store_hooks = None
        if state_dir is not None:
            from repro.store import (
                DEFAULT_SNAPSHOT_EVERY,
                PersistentStoreHooks,
                Store,
            )

            store = Store.open(
                state_dir,
                snapshot_every=snapshot_every or DEFAULT_SNAPSHOT_EVERY,
                metrics=registry,
            )
            store_hooks = PersistentStoreHooks(store)
        engine = DeltaServer(
            origin_fetch, config, rulebook, metrics=registry,
            store_hooks=store_hooks,
            # Fleet workers mint ids under w<k>- so base-file URLs route
            # back to the worker that owns the class (and its shard).
            class_id_prefix=(
                worker_class_prefix(fleet.worker_id) if fleet is not None else ""
            ),
        )
    executor = DeltaExecutor(executor_kind, max_workers=executor_workers)
    return DeltaHTTPServer(
        gateway,
        engine,
        mode=mode,
        executor=executor,
        resilience=resilient,
        metrics=registry,
        router=router,
        **server_kwargs,  # type: ignore[arg-type]
    )
