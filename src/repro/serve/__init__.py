"""Live serving layer: the delta-server behind real asyncio sockets.

Everything else in this repository exercises the class-based
delta-encoding scheme under a simulated clock; ``repro.serve`` runs the
same :class:`~repro.core.delta_server.DeltaServer` engine behind an
actual TCP listener speaking a minimal HTTP/1.1, plus the async load
generator that replays workload traces against it.  This is the Section
VI-C experiment — server capacity with and without delta-encoding — made
live.

Modules:

* :mod:`repro.serve.protocol` — HTTP/1.1 wire mapping onto
  ``repro.http`` message types (keep-alive, chunked bodies, cookies).
* :mod:`repro.serve.server` — :class:`DeltaHTTPServer`, the asyncio
  front-end (connection-slot ceiling, timeouts, graceful drain), and
  :func:`build_server` to assemble the full stack from synthetic sites.
* :mod:`repro.serve.executor` — :class:`DeltaExecutor`, worker-pool
  offload so the event loop never blocks on the differ.
* :mod:`repro.serve.gateway` — :class:`OriginGateway`, the bridge to the
  origin site with injectable latency and structured fault plans
  (:mod:`repro.resilience.faults`).
* :mod:`repro.serve.loadgen` — :class:`LoadGenerator`, closed/open-loop
  trace replay with client-side delta reconstruction and verification.
* :mod:`repro.serve.stats` — :class:`ServeStats`, live counters.
"""

from repro.serve.executor import KINDS as EXECUTOR_KINDS
from repro.serve.executor import DeltaExecutor
from repro.serve.gateway import FaultHook, GatewayStats, OriginGateway
from repro.serve.loadgen import (
    LoadGenConfig,
    LoadGenerator,
    LoadReport,
    replay_trace,
)
from repro.serve.protocol import (
    HEADER_BODY_DIGEST,
    HEADER_SERVED_AT,
    ParsedRequest,
    ParsedResponse,
    ProtocolError,
    body_digest,
    digest_matches,
    read_request,
    read_response,
    serialize_request,
    serialize_response,
)
from repro.serve.server import (
    HEALTH_PATH,
    METRICS_PATH,
    MODES,
    PAPER_CONNECTION_LIMIT,
    DeltaHTTPServer,
    build_server,
)
from repro.serve.stats import ServeStats

__all__ = [
    "DeltaExecutor",
    "DeltaHTTPServer",
    "EXECUTOR_KINDS",
    "HEALTH_PATH",
    "FaultHook",
    "GatewayStats",
    "HEADER_BODY_DIGEST",
    "HEADER_SERVED_AT",
    "LoadGenConfig",
    "LoadGenerator",
    "LoadReport",
    "METRICS_PATH",
    "MODES",
    "OriginGateway",
    "PAPER_CONNECTION_LIMIT",
    "ParsedRequest",
    "ParsedResponse",
    "ProtocolError",
    "ServeStats",
    "body_digest",
    "build_server",
    "digest_matches",
    "read_request",
    "read_response",
    "replay_trace",
    "serialize_request",
    "serialize_response",
]
