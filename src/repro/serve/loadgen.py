"""Async load generator: replay ``repro.workload`` traces over live HTTP.

The client side of the live capacity experiment (Section VI-C).  Replays
a :class:`~repro.workload.trace.Trace` against a running
:class:`~repro.serve.server.DeltaHTTPServer`, acting as the whole client
population at once: per-user base-file bookkeeping (which base each user
holds for each URL), a shared base-file cache (the role the proxy tier
plays in Fig. 2), delta reconstruction, and byte-for-byte verification.

Two arrival disciplines:

* **closed loop** — ``concurrency`` workers over keep-alive connections,
  each issuing its next request as soon as the previous response is
  reconstructed.  Measures sustainable throughput (ApacheBench ``-c N``
  style, the SiteStory evaluation's method).
* **open loop** — Poisson arrivals at ``rate`` req/s, each request on a
  pooled connection, in-flight unbounded up to ``concurrency``
  connections.  Measures behaviour under offered load independent of
  service rate (the DES sweep's discipline).

Client-side resilience: with ``retries > 0`` the generator retries
``502``/``503``/``504`` answers *and* transport-level failures —
connection resets, refused connects, closes mid-response — with capped
exponential backoff (reconnecting when the server closed the
connection), counts each retry per trigger (``retries_by_status``;
transport retries appear under the ``"reset"`` key), and keeps verifying
every byte after recovery — a retried request must still reconstruct
exactly.  Transport failures are the client-visible signature of a fleet
worker being restarted, so they follow the same retry contract as 503.  Responses
the server marks ``X-Degraded`` (stale base-files during an origin
outage) are counted separately and excluded from freshness verification:
they are intentionally not fresh renders.

Every response is verified client-side: delta responses must apply
cleanly (the wire format's target checksum makes a wrong reconstruction
impossible to miss) and all other bodies must match their
``X-Body-Digest`` tag.  An optional ``verify_render`` hook additionally
compares the reconstructed document against an independent origin render
at the server-stamped ``X-Served-At`` instant.
"""

from __future__ import annotations

import asyncio
import heapq
import random
import time
import zlib
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Awaitable, Callable

from repro.core.delta_server import DeltaServer
from repro.delta.apply import apply_delta
from repro.delta.codec import DEFAULT_MAX_TARGET_LENGTH
from repro.delta.compress import decompress
from repro.delta.errors import DeltaError
from repro.http.messages import (
    HEADER_ACCEPT_DELTA,
    HEADER_CONTENT_ENCODING,
    HEADER_TRACE_ID,
    Request,
    Response,
    parse_base_ref,
)
from repro.metrics import LatencySample, render_table
from repro.serve.protocol import (
    HEADER_BODY_DIGEST,
    HEADER_SERVED_AT,
    ConnectionClosedError,
    ProtocolError,
    digest_matches,
    read_response,
    serialize_request,
)
from repro.url.parts import split_server
from repro.workload.trace import Trace, TraceRecord

#: ``retries_by_status`` key for transport-level retries (reset/refused/
#: closed mid-exchange) as opposed to status-triggered ones (502/503/504)
RETRY_TRANSPORT = "reset"

#: (url, user, served_at) -> expected document bytes, or None to skip
VerifyRender = Callable[[str, str, float], bytes | None]


@dataclass(slots=True)
class LoadGenConfig:
    """Knobs of one load-generation run."""

    host: str = "127.0.0.1"
    port: int = 0
    #: connect here instead of ``host:port`` (route through a proxy tier);
    #: URLs and Host headers are unchanged — the proxy forwards upstream
    proxy_host: str | None = None
    proxy_port: int | None = None
    mode: str = "closed"  # "closed" | "open"
    #: closed loop: worker count; open loop: connection-pool ceiling
    concurrency: int = 8
    #: open loop only: Poisson arrival rate, requests/second
    rate: float = 100.0
    max_requests: int | None = None
    request_timeout: float = 15.0
    verify: bool = True
    #: retry attempts per request for 502/503/504 answers (0 = give up)
    retries: int = 0
    retry_backoff: float = 0.05
    retry_backoff_cap: float = 0.5
    seed: int = 11

    def __post_init__(self) -> None:
        if self.mode not in ("closed", "open"):
            raise ValueError(f"mode must be 'closed' or 'open', got {self.mode!r}")
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if self.rate <= 0:
            raise ValueError("rate must be > 0")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.retry_backoff < 0 or self.retry_backoff_cap < 0:
            raise ValueError("retry backoff values must be >= 0")
        if (self.proxy_host is None) != (self.proxy_port is None):
            raise ValueError("proxy_host and proxy_port must be set together")

    @property
    def connect_address(self) -> tuple[str, int]:
        """Where TCP connections actually go (the proxy when configured)."""
        if self.proxy_host is not None and self.proxy_port is not None:
            return self.proxy_host, self.proxy_port
        return self.host, self.port


@dataclass(slots=True)
class LoadReport:
    """Client-side measurement of one replay."""

    name: str
    mode: str
    requests: int = 0
    completed: int = 0
    deltas: int = 0
    fulls: int = 0
    base_fetches: int = 0
    delta_failures: int = 0
    verify_failures: int = 0
    errors: int = 0
    rejected: int = 0
    timeouts: int = 0
    #: responses the server marked X-Degraded (stale base / 502 fallback)
    degraded: int = 0
    #: retry attempts issued, keyed by the status that triggered them
    retries_by_status: Counter = field(default_factory=Counter)
    #: every response status observed (including retried attempts)
    status_counts: Counter = field(default_factory=Counter)
    wire_bytes_in: int = 0
    wire_bytes_out: int = 0
    #: wire bytes of document responses only (excludes base-file fetches)
    document_wire_bytes: int = 0
    document_bytes: int = 0
    base_bytes: int = 0
    duration: float = 0.0
    peak_in_flight: int = 0
    latencies: LatencySample = field(default_factory=LatencySample)
    #: slowest completed requests as ``(latency_s, trace_id, url)`` — the
    #: trace id matches the server's X-Trace-Id, so a slow request can be
    #: looked up against the server-side X-Stage-Times stage timings
    slowest: list[tuple[float, str, str]] = field(default_factory=list)

    #: how many slowest requests are retained
    SLOWEST_KEPT = 5

    def note_latency(self, latency: float, trace_id: str, url: str) -> None:
        """Record a completed request, keeping the top-N slowest (heap)."""
        self.latencies.add(latency)
        entry = (latency, trace_id, url)
        if len(self.slowest) < self.SLOWEST_KEPT:
            heapq.heappush(self.slowest, entry)
        else:
            heapq.heappushpop(self.slowest, entry)

    @property
    def rps(self) -> float:
        return self.completed / self.duration if self.duration > 0 else 0.0

    @property
    def mean_document_wire_bytes(self) -> float:
        return self.document_wire_bytes / self.completed if self.completed else 0.0

    def latency_ms(self, q: float) -> float:
        return self.latencies.percentile(q) * 1000.0

    def render(self, title: str | None = None) -> str:
        rows = [
            ["requests / completed", f"{self.requests} / {self.completed}"],
            ["deltas / fulls / base fetches",
             f"{self.deltas} / {self.fulls} / {self.base_fetches}"],
            ["delta failures / verify failures",
             f"{self.delta_failures} / {self.verify_failures}"],
            ["errors / rejected / timeouts",
             f"{self.errors} / {self.rejected} / {self.timeouts}"],
            ["degraded responses", self.degraded],
            ["retries (by status)",
             ", ".join(
                 f"{status}:{count}"
                 # str() key: the counter mixes int statuses with the
                 # "reset" transport bucket.
                 for status, count in sorted(
                     self.retries_by_status.items(), key=lambda kv: str(kv[0])
                 )
             ) or "none"],
            ["wire bytes in / out", f"{self.wire_bytes_in} / {self.wire_bytes_out}"],
            ["document / base-file bytes",
             f"{self.document_bytes} / {self.base_bytes}"],
            ["mean document response on wire",
             f"{self.mean_document_wire_bytes:.0f} B"],
            ["duration", f"{self.duration:.2f} s"],
            ["throughput", f"{self.rps:.1f} req/s"],
            ["latency mean / p50 / p90 / p99",
             f"{self.latencies.mean * 1000:.1f} / {self.latency_ms(50):.1f} / "
             f"{self.latency_ms(90):.1f} / {self.latency_ms(99):.1f} ms"],
            ["peak in-flight", self.peak_in_flight],
            ["slowest (latency, trace id)",
             ", ".join(
                 f"{latency * 1000:.1f}ms {trace}"
                 for latency, trace, _ in sorted(self.slowest, reverse=True)[:3]
             ) or "none"],
        ]
        return render_table(
            ["metric", "value"],
            rows,
            title=title or f"loadgen {self.name} ({self.mode} loop)",
        )


class _Connection:
    """One keep-alive client connection."""

    __slots__ = ("reader", "writer", "alive")

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.alive = True

    def close(self) -> None:
        self.alive = False
        try:
            self.writer.close()
        except Exception:
            pass


class LoadGenerator:
    """Replays traces against a live server and verifies every response."""

    def __init__(
        self, config: LoadGenConfig, *, verify_render: VerifyRender | None = None
    ) -> None:
        self.config = config
        self._verify_render = verify_render
        self._rng = random.Random(config.seed)
        #: ref -> base-file bytes, shared across users (the proxy's role)
        self._base_cache: dict[str, bytes] = {}
        #: (user, url) -> base ref the user would diff against
        self._url_refs: dict[tuple[str, str], str] = {}

    # -- public API ------------------------------------------------------------

    async def run(self, trace: Trace) -> LoadReport:
        records = list(trace)
        if self.config.max_requests is not None:
            records = records[: self.config.max_requests]
        report = LoadReport(name=trace.name, mode=self.config.mode)
        started = time.perf_counter()
        if self.config.mode == "closed":
            await self._run_closed(records, report)
        else:
            await self._run_open(records, report)
        report.duration = time.perf_counter() - started
        return report

    def held_base_refs(self) -> list[str]:
        """Base-file refs currently cached (diagnostics)."""
        return sorted(self._base_cache)

    # -- arrival disciplines ---------------------------------------------------

    async def _run_closed(
        self, records: list[TraceRecord], report: LoadReport
    ) -> None:
        queue: deque[TraceRecord] = deque(records)
        workers = min(self.config.concurrency, max(len(records), 1))
        report.peak_in_flight = workers

        async def worker() -> None:
            conn: _Connection | None = None
            try:
                while True:
                    try:
                        record = queue.popleft()
                    except IndexError:
                        return
                    if conn is None or not conn.alive:
                        try:
                            conn = await self._connect_retrying(report)
                        except OSError:
                            report.requests += 1
                            report.errors += 1
                            conn = None
                            continue
                    if not await self._one_record(conn, record, report):
                        conn.close()
            finally:
                if conn is not None:
                    conn.close()

        await asyncio.gather(*(worker() for _ in range(workers)))

    async def _run_open(
        self, records: list[TraceRecord], report: LoadReport
    ) -> None:
        pool: asyncio.Queue[_Connection] = asyncio.Queue()
        created = 0
        in_flight = 0
        tasks: list[asyncio.Task] = []

        async def checkout() -> _Connection:
            nonlocal created
            while True:
                try:
                    conn = pool.get_nowait()
                except asyncio.QueueEmpty:
                    pass
                else:
                    if conn.alive:
                        return conn
                    created -= 1  # dead connection leaves the pool
                    continue
                if created < self.config.concurrency:
                    created += 1
                    try:
                        return await self._connect_retrying(report)
                    except OSError:
                        created -= 1
                        raise
                conn = await pool.get()
                if conn.alive:
                    return conn
                created -= 1

        async def one(record: TraceRecord) -> None:
            nonlocal in_flight
            in_flight += 1
            report.peak_in_flight = max(report.peak_in_flight, in_flight)
            try:
                try:
                    conn = await checkout()
                except OSError:
                    report.requests += 1
                    report.errors += 1
                    return
                if await self._one_record(conn, record, report):
                    pool.put_nowait(conn)
                else:
                    conn.close()
                    pool.put_nowait(conn)  # wake waiters; dead conns are skipped
            finally:
                in_flight -= 1

        for record in records:
            await asyncio.sleep(self._rng.expovariate(self.config.rate))
            tasks.append(asyncio.ensure_future(one(record)))
        if tasks:
            await asyncio.gather(*tasks)
        while not pool.empty():
            pool.get_nowait().close()

    # -- request execution -----------------------------------------------------

    async def _connect(self) -> _Connection:
        reader, writer = await asyncio.open_connection(*self.config.connect_address)
        return _Connection(reader, writer)

    def _retry_delay(self, attempt: int) -> float:
        return min(
            self.config.retry_backoff_cap,
            self.config.retry_backoff * (2 ** (attempt - 1)),
        )

    async def _connect_retrying(self, report: LoadReport) -> _Connection:
        """Connect, retrying refused/reset connects under the retry budget.

        A refused connect is what a fleet looks like for the instant
        every worker is mid-restart — as retryable as a 503 rejection.
        """
        attempt = 0
        while True:
            try:
                return await self._connect()
            except OSError:
                if attempt >= self.config.retries:
                    raise
                attempt += 1
                report.retries_by_status[RETRY_TRANSPORT] += 1
                await asyncio.sleep(self._retry_delay(attempt))

    async def _roundtrip_retrying(
        self, conn: _Connection, request: Request, report: LoadReport
    ):
        """One roundtrip with transport-level retries.

        Resets, refused reconnects, and closes mid-response (a SIGKILLed
        worker drops its accepted sockets) retry on a fresh connection
        under the same budget and backoff as 502/503/504 answers, counted
        under the ``"reset"`` key.  Framing errors (plain
        :class:`ProtocolError`) are bugs, not restarts — they propagate.
        """
        attempt = 0
        while True:
            try:
                if not conn.alive:
                    await self._reopen(conn)
                return await self._roundtrip(conn, request, report)
            except (ConnectionClosedError, ConnectionError, OSError):
                conn.alive = False
                if attempt >= self.config.retries:
                    raise
                attempt += 1
                report.retries_by_status[RETRY_TRANSPORT] += 1
                await asyncio.sleep(self._retry_delay(attempt))

    async def _roundtrip(
        self, conn: _Connection, request: Request, report: LoadReport
    ):
        wire = serialize_request(request)
        report.wire_bytes_out += len(wire)
        conn.writer.write(wire)
        await conn.writer.drain()
        parsed = await asyncio.wait_for(
            read_response(conn.reader), self.config.request_timeout
        )
        report.wire_bytes_in += parsed.wire_bytes
        if not parsed.keep_alive:
            conn.alive = False
        return parsed

    async def _one_record(
        self, conn: _Connection, record: TraceRecord, report: LoadReport
    ) -> bool:
        """Issue one trace record; returns False if the connection died."""
        report.requests += 1
        try:
            await self._fetch_document(conn, record.url, record.user, report)
        except asyncio.TimeoutError:
            report.timeouts += 1
            return False
        except (ProtocolError, ConnectionError, OSError):
            report.errors += 1
            return False
        return conn.alive

    async def _reopen(self, conn: _Connection) -> None:
        """Replace a dead connection's streams in place (for retries)."""
        conn.close()
        fresh = await self._connect()
        conn.reader, conn.writer = fresh.reader, fresh.writer
        conn.alive = True

    async def _fetch_document(
        self, conn: _Connection, url: str, user: str, report: LoadReport
    ) -> None:
        request = Request(url=url, cookies={"uid": user}, client_id=user)
        held = self._url_refs.get((user, url))
        if held is not None and held in self._base_cache:
            request.headers.set(HEADER_ACCEPT_DELTA, held)
        attempt = 0
        while True:
            started = time.perf_counter()
            parsed = await self._roundtrip_retrying(conn, request, report)
            latency = time.perf_counter() - started
            response = parsed.response
            report.status_counts[response.status] += 1
            if response.status not in (502, 503, 504):
                break
            if attempt < self.config.retries:
                # Transient server-side condition: back off (capped
                # exponential) and try again (the retrying roundtrip
                # reconnects if the server closed the connection —
                # 503 rejections do).
                attempt += 1
                report.retries_by_status[response.status] += 1
                await asyncio.sleep(self._retry_delay(attempt))
                continue
            if response.status == 503:
                report.rejected += 1
            else:
                report.errors += 1
            return
        if response.degraded is not None:
            report.degraded += 1
        if response.status != 200:
            report.errors += 1
            return
        document = self._reconstruct(url, user, response, report)
        if document is None:
            # Unusable delta (lost base): the paper's fallback is a plain
            # refetch, which the server answers with a full response.
            self._url_refs.pop((user, url), None)
            parsed = await self._roundtrip_retrying(
                conn, Request(url=url, cookies={"uid": user}, client_id=user), report
            )
            response = parsed.response
            if response.status != 200:
                report.errors += 1
                return
            document = self._reconstruct(url, user, response, report)
            if document is None:
                report.errors += 1
                return
        report.completed += 1
        report.note_latency(
            latency, response.headers.get(HEADER_TRACE_ID) or "-", url
        )
        report.document_wire_bytes += parsed.wire_bytes
        report.document_bytes += len(document)
        # Adopt the advertised base-file (full responses advertise the
        # class base; post-rebase deltas advertise the upgrade).
        ref = response.base_file_ref
        if ref is not None:
            self._url_refs[(user, url)] = ref
            if ref not in self._base_cache:
                await self._fetch_base(conn, url, user, ref, report)
        self._check_render(url, user, response, document, report)

    def _reconstruct(
        self, url: str, user: str, response: Response, report: LoadReport
    ) -> bytes | None:
        """Turn a document response into document bytes, verifying it."""
        if response.is_delta:
            ref = response.delta_base_ref
            base = self._base_cache.get(ref) if ref else None
            if base is None:
                report.delta_failures += 1
                return None
            payload = response.body
            try:
                if response.headers.get(HEADER_CONTENT_ENCODING) == "deflate":
                    payload = decompress(payload)
                # apply_delta checks the wire checksum: success IS
                # byte-for-byte verification of the reconstruction.  The
                # decode bound rejects payloads that would reconstruct
                # more than the engine would ever serve.
                document = apply_delta(
                    payload, base, max_target_length=DEFAULT_MAX_TARGET_LENGTH
                )
            except (DeltaError, zlib.error):
                report.delta_failures += 1
                self._base_cache.pop(ref, None)
                return None
            report.deltas += 1
            return document
        if self.config.verify and not digest_matches(
            response.headers.get(HEADER_BODY_DIGEST), response.body
        ):
            report.verify_failures += 1
        report.fulls += 1
        return response.body

    async def _fetch_base(
        self, conn: _Connection, document_url: str, user: str, ref: str,
        report: LoadReport,
    ) -> None:
        server, _ = split_server(document_url)
        try:
            class_id, version = parse_base_ref(ref)
        except ValueError:
            return
        base_url = DeltaServer.base_file_url(server, class_id, version)
        request = Request(url=base_url, cookies={"uid": user}, client_id=user)
        try:
            parsed = await self._roundtrip_retrying(conn, request, report)
        except (asyncio.TimeoutError, ProtocolError, ConnectionError, OSError):
            report.errors += 1
            conn.alive = False
            return
        response = parsed.response
        report.base_fetches += 1
        if response.status != 200:
            return
        if self.config.verify and not digest_matches(
            response.headers.get(HEADER_BODY_DIGEST), response.body
        ):
            report.verify_failures += 1
            return
        self._base_cache[ref] = response.body
        report.base_bytes += len(response.body)

    def _check_render(
        self, url: str, user: str, response: Response, document: bytes,
        report: LoadReport,
    ) -> None:
        if self._verify_render is None:
            return
        if response.degraded is not None:
            # Stale-base degradation is intentionally not a fresh render;
            # byte integrity was already verified via the digest.
            return
        served_at_header = response.headers.get(HEADER_SERVED_AT)
        if served_at_header is None:
            return
        try:
            served_at = float(served_at_header)
        except ValueError:
            report.verify_failures += 1
            return
        expected = self._verify_render(url, user, served_at)
        if expected is not None and expected != document:
            report.verify_failures += 1


async def replay_trace(
    trace: Trace, config: LoadGenConfig, *, verify_render: VerifyRender | None = None
) -> LoadReport:
    """One-call façade: replay ``trace`` per ``config`` and report."""
    return await LoadGenerator(config, verify_render=verify_render).run(trace)
