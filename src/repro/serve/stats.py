"""Live serving counters, wired into the ``repro.metrics`` substrate.

The discrete-event simulator reports throughput/concurrency from its
virtual clock; this module is the same accounting for the real asyncio
server: connection slots, per-request wall-clock latency percentiles
(:class:`~repro.metrics.collector.LatencySample`), response-size samples
(:class:`~repro.metrics.collector.SizeSample`), and the delta/full/base
split that Table II-style bandwidth math needs.  ``render`` produces the
same aligned tables every benchmark emits.
"""

from __future__ import annotations

import traceback
from collections import Counter
from dataclasses import dataclass, field

from repro.http.messages import Response
from repro.metrics import (
    LatencySample,
    SizeSample,
    format_sample,
    histogram_lines,
    render_table,
)


@dataclass(slots=True)
class ServeStats:
    """Counters for one live server instance (single event loop; unlocked)."""

    started_at: float | None = None
    connections_accepted: int = 0
    connections_rejected: int = 0
    active_connections: int = 0
    peak_connections: int = 0
    requests: int = 0
    responses: int = 0
    deltas_served: int = 0
    full_documents: int = 0
    base_files_served: int = 0
    errors: int = 0
    timeouts: int = 0
    protocol_errors: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    #: degraded answers: marked-stale base-files and 502 fallbacks
    degraded_stale: int = 0
    degraded_unavailable: int = 0
    health_checks: int = 0
    status_counts: Counter = field(default_factory=Counter)
    #: unhandled dispatch exceptions, classified by exception type name
    exception_counts: Counter = field(default_factory=Counter)
    #: formatted traceback of the most recent unhandled exception
    last_error: str | None = None
    latencies: LatencySample = field(default_factory=LatencySample)
    response_sizes: SizeSample = field(default_factory=SizeSample)

    # -- event hooks -----------------------------------------------------------

    def on_connection_open(self) -> None:
        self.connections_accepted += 1
        self.active_connections += 1
        self.peak_connections = max(self.peak_connections, self.active_connections)

    def on_connection_rejected(self, wire_bytes: int = 0) -> None:
        """A connection turned away with 503.

        The rejection is a real response on the wire, so it must land in
        *all* of the response accounting — ``responses``,
        ``status_counts``, and (when known) ``bytes_out`` — or
        ``throughput_rps`` and the status table disagree under
        admission-control load.  Invariant:
        ``sum(status_counts.values()) == responses``.
        """
        self.connections_rejected += 1
        self.responses += 1
        self.status_counts[503] += 1
        if wire_bytes:
            self.bytes_out += wire_bytes

    def on_connection_close(self) -> None:
        self.active_connections -= 1

    def on_exception(self, exc: BaseException) -> None:
        """Classify an unhandled dispatch exception by type, keeping the
        formatted traceback for diagnostics instead of discarding it."""
        self.exception_counts[type(exc).__name__] += 1
        self.last_error = "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        )

    def on_response(
        self, response: Response, wire_bytes: int, latency_seconds: float | None
    ) -> None:
        self.responses += 1
        self.status_counts[response.status] += 1
        self.bytes_out += wire_bytes
        self.response_sizes.add(len(response.body))
        if latency_seconds is not None:
            self.latencies.add(latency_seconds)
        if response.status >= 500:
            self.errors += 1
        degraded = response.degraded
        if degraded == "stale-base":
            self.degraded_stale += 1
        elif degraded is not None:
            self.degraded_unavailable += 1
        if response.status != 200:
            return
        if response.is_delta:
            self.deltas_served += 1
        elif response.cachable and response.is_base_file:
            self.base_files_served += 1
        else:
            self.full_documents += 1

    # -- reporting -------------------------------------------------------------

    def throughput_rps(self, now: float) -> float:
        """Responses per second of wall-clock since ``started_at``."""
        if self.started_at is None or now <= self.started_at:
            return 0.0
        return self.responses / (now - self.started_at)

    def render(self, now: float | None = None, title: str = "live server") -> str:
        rows: list[list[object]] = [
            ["connections accepted / rejected",
             f"{self.connections_accepted} / {self.connections_rejected}"],
            ["peak concurrent connections", self.peak_connections],
            ["requests / responses", f"{self.requests} / {self.responses}"],
            ["deltas / fulls / base-files",
             f"{self.deltas_served} / {self.full_documents} / {self.base_files_served}"],
            ["errors / timeouts / protocol errors",
             f"{self.errors} / {self.timeouts} / {self.protocol_errors}"],
            ["degraded stale / unavailable",
             f"{self.degraded_stale} / {self.degraded_unavailable}"],
            ["exceptions by type",
             ", ".join(
                 f"{name}:{count}"
                 for name, count in sorted(self.exception_counts.items())
             ) or "none"],
            ["bytes in / out", f"{self.bytes_in} / {self.bytes_out}"],
            ["mean response body", f"{self.response_sizes.mean:.0f} B"],
            ["latency mean / p50 / p99",
             f"{self.latencies.mean * 1000:.1f} / "
             f"{self.latencies.percentile(50) * 1000:.1f} / "
             f"{self.latencies.percentile(99) * 1000:.1f} ms"],
        ]
        if now is not None:
            rows.append(["throughput", f"{self.throughput_rps(now):.1f} req/s"])
        return render_table(["metric", "value"], rows, title=title)

    def snapshot_line(self, now: float | None = None) -> str:
        """One-line periodic snapshot (``--metrics-interval`` logger)."""
        uptime = (
            now - self.started_at
            if now is not None and self.started_at is not None
            else 0.0
        )
        return (
            f"[metrics] uptime={uptime:.1f}s"
            f" requests={self.requests} responses={self.responses}"
            f" rps={self.throughput_rps(now) if now is not None else 0.0:.1f}"
            f" active={self.active_connections} rejected={self.connections_rejected}"
            f" deltas={self.deltas_served} fulls={self.full_documents}"
            f" bases={self.base_files_served}"
            f" errors={self.errors} timeouts={self.timeouts}"
            f" degraded={self.degraded_stale + self.degraded_unavailable}"
            f" p50={self.latencies.percentile(50) * 1000:.1f}ms"
            f" p99={self.latencies.percentile(99) * 1000:.1f}ms"
            f" bytes_out={self.bytes_out}"
        )

    def prometheus_lines(self, now: float | None = None) -> list[str]:
        """Exposition lines for every counter and histogram held here.

        The serve-layer half of ``GET /__metrics__``; the engine and
        resilience registries render their own families.
        """
        counters: list[tuple[str, str, int]] = [
            ("repro_connections_accepted_total", "connections accepted",
             self.connections_accepted),
            ("repro_connections_rejected_total", "connections turned away with 503",
             self.connections_rejected),
            ("repro_requests_total", "HTTP requests parsed", self.requests),
            ("repro_responses_total", "HTTP responses written", self.responses),
            ("repro_deltas_served_total", "delta responses", self.deltas_served),
            ("repro_full_documents_total", "full document responses",
             self.full_documents),
            ("repro_base_files_served_total", "base-file responses",
             self.base_files_served),
            ("repro_errors_total", "responses with status >= 500", self.errors),
            ("repro_timeouts_total", "requests answered 504", self.timeouts),
            ("repro_protocol_errors_total", "malformed inbound framing",
             self.protocol_errors),
            ("repro_bytes_in_total", "request wire bytes read", self.bytes_in),
            ("repro_bytes_out_total", "response wire bytes written", self.bytes_out),
            ("repro_degraded_stale_total", "marked-stale base-file answers",
             self.degraded_stale),
            ("repro_degraded_unavailable_total", "origin-unavailable 502 answers",
             self.degraded_unavailable),
            ("repro_health_checks_total", "GET /__health__ probes",
             self.health_checks),
        ]
        lines: list[str] = []
        for name, help_text, value in counters:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} counter")
            lines.append(format_sample(name, (), value))
        lines.append("# TYPE repro_responses_by_status_total counter")
        for status in sorted(self.status_counts):
            lines.append(
                format_sample(
                    "repro_responses_by_status_total",
                    (("status", str(status)),),
                    self.status_counts[status],
                )
            )
        lines.append("# TYPE repro_exceptions_total counter")
        for name in sorted(self.exception_counts):
            lines.append(
                format_sample(
                    "repro_exceptions_total",
                    (("type", name),),
                    self.exception_counts[name],
                )
            )
        lines.append("# TYPE repro_active_connections gauge")
        lines.append(
            format_sample("repro_active_connections", (), self.active_connections)
        )
        lines.append("# TYPE repro_peak_connections gauge")
        lines.append(
            format_sample("repro_peak_connections", (), self.peak_connections)
        )
        if now is not None and self.started_at is not None:
            lines.append("# TYPE repro_uptime_seconds gauge")
            lines.append(
                format_sample("repro_uptime_seconds", (), now - self.started_at)
            )
        lines.append("# TYPE repro_request_latency_seconds histogram")
        lines.extend(
            histogram_lines("repro_request_latency_seconds", self.latencies.histogram)
        )
        lines.append("# TYPE repro_response_body_bytes histogram")
        lines.extend(
            histogram_lines("repro_response_body_bytes", self.response_sizes.histogram)
        )
        return lines
