"""Live serving counters, wired into the ``repro.metrics`` substrate.

The discrete-event simulator reports throughput/concurrency from its
virtual clock; this module is the same accounting for the real asyncio
server: connection slots, per-request wall-clock latency percentiles
(:class:`~repro.metrics.collector.LatencySample`), response-size samples
(:class:`~repro.metrics.collector.SizeSample`), and the delta/full/base
split that Table II-style bandwidth math needs.  ``render`` produces the
same aligned tables every benchmark emits.
"""

from __future__ import annotations

import traceback
from collections import Counter
from dataclasses import dataclass, field

from repro.http.messages import Response
from repro.metrics import LatencySample, SizeSample, render_table


@dataclass(slots=True)
class ServeStats:
    """Counters for one live server instance (single event loop; unlocked)."""

    started_at: float | None = None
    connections_accepted: int = 0
    connections_rejected: int = 0
    active_connections: int = 0
    peak_connections: int = 0
    requests: int = 0
    responses: int = 0
    deltas_served: int = 0
    full_documents: int = 0
    base_files_served: int = 0
    errors: int = 0
    timeouts: int = 0
    protocol_errors: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    #: degraded answers: marked-stale base-files and 502 fallbacks
    degraded_stale: int = 0
    degraded_unavailable: int = 0
    health_checks: int = 0
    status_counts: Counter = field(default_factory=Counter)
    #: unhandled dispatch exceptions, classified by exception type name
    exception_counts: Counter = field(default_factory=Counter)
    #: formatted traceback of the most recent unhandled exception
    last_error: str | None = None
    latencies: LatencySample = field(default_factory=LatencySample)
    response_sizes: SizeSample = field(default_factory=SizeSample)

    # -- event hooks -----------------------------------------------------------

    def on_connection_open(self) -> None:
        self.connections_accepted += 1
        self.active_connections += 1
        self.peak_connections = max(self.peak_connections, self.active_connections)

    def on_connection_rejected(self, wire_bytes: int = 0) -> None:
        """A connection turned away with 503; the rejection response is
        real wire traffic, so it lands in the byte/status accounting."""
        self.connections_rejected += 1
        if wire_bytes:
            self.bytes_out += wire_bytes
            self.status_counts[503] += 1

    def on_connection_close(self) -> None:
        self.active_connections -= 1

    def on_exception(self, exc: BaseException) -> None:
        """Classify an unhandled dispatch exception by type, keeping the
        formatted traceback for diagnostics instead of discarding it."""
        self.exception_counts[type(exc).__name__] += 1
        self.last_error = "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        )

    def on_response(
        self, response: Response, wire_bytes: int, latency_seconds: float | None
    ) -> None:
        self.responses += 1
        self.status_counts[response.status] += 1
        self.bytes_out += wire_bytes
        self.response_sizes.add(len(response.body))
        if latency_seconds is not None:
            self.latencies.add(latency_seconds)
        if response.status >= 500:
            self.errors += 1
        degraded = response.degraded
        if degraded == "stale-base":
            self.degraded_stale += 1
        elif degraded is not None:
            self.degraded_unavailable += 1
        if response.status != 200:
            return
        if response.is_delta:
            self.deltas_served += 1
        elif response.cachable and response.is_base_file:
            self.base_files_served += 1
        else:
            self.full_documents += 1

    # -- reporting -------------------------------------------------------------

    def throughput_rps(self, now: float) -> float:
        """Responses per second of wall-clock since ``started_at``."""
        if self.started_at is None or now <= self.started_at:
            return 0.0
        return self.responses / (now - self.started_at)

    def render(self, now: float | None = None, title: str = "live server") -> str:
        rows: list[list[object]] = [
            ["connections accepted / rejected",
             f"{self.connections_accepted} / {self.connections_rejected}"],
            ["peak concurrent connections", self.peak_connections],
            ["requests / responses", f"{self.requests} / {self.responses}"],
            ["deltas / fulls / base-files",
             f"{self.deltas_served} / {self.full_documents} / {self.base_files_served}"],
            ["errors / timeouts / protocol errors",
             f"{self.errors} / {self.timeouts} / {self.protocol_errors}"],
            ["degraded stale / unavailable",
             f"{self.degraded_stale} / {self.degraded_unavailable}"],
            ["exceptions by type",
             ", ".join(
                 f"{name}:{count}"
                 for name, count in sorted(self.exception_counts.items())
             ) or "none"],
            ["bytes in / out", f"{self.bytes_in} / {self.bytes_out}"],
            ["mean response body", f"{self.response_sizes.mean:.0f} B"],
            ["latency mean / p50 / p99",
             f"{self.latencies.mean * 1000:.1f} / "
             f"{self.latencies.percentile(50) * 1000:.1f} / "
             f"{self.latencies.percentile(99) * 1000:.1f} ms"],
        ]
        if now is not None:
            rows.append(["throughput", f"{self.throughput_rps(now):.1f} req/s"])
        return render_table(["metric", "value"], rows, title=title)
