"""Offload blocking work (delta generation, rendering) off the event loop.

The Vdelta differ costs milliseconds per delta (the paper's 6–8 ms,
Section VI-C); run inline it would stall every other connection on the
asyncio loop.  :class:`DeltaExecutor` pushes those calls onto a worker
pool so the loop only ever awaits.

Three kinds:

* ``thread`` (default) — a ``ThreadPoolExecutor``.  The engine is sharded
  (per-class locks, off-lock origin fetch, snapshot-encode-commit delta
  generation — see :mod:`repro.core.delta_server`), so worker threads for
  *different classes* genuinely overlap: origin waits run in parallel and
  lock holds are brief.  The pure-Python differ still holds the GIL while
  encoding, so CPU-bound encode work time-slices rather than running in
  parallel — the win is overlap of origin latency, I/O, and (with a
  C-accelerated differ or zlib-heavy payloads, which release the GIL)
  real compute too.  The default pool size is therefore sized for
  latency overlap, not core count: ``min(64, 4 × cores)``.
* ``process`` — a ``ProcessPoolExecutor`` for *stateless, picklable*
  jobs (e.g. raw ``make_delta`` calls).  Processes pay off when encode
  CPU dominates the request (big documents, high compression levels) and
  the job can be expressed without the shared class map — the engine
  itself holds live locks and cross-referenced class state and cannot be
  shipped across process boundaries.
* ``sync`` — run inline.  Fallback for environments without worker
  threads and for deterministic unit tests.
"""

from __future__ import annotations

import asyncio
import functools
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable

KINDS = ("thread", "process", "sync")


def default_thread_workers() -> int:
    """Default thread-pool size: overlap-oriented, not core-count-bound.

    Worker threads mostly wait (origin fetch, lock waits, loop I/O), so
    the pool runs wider than the core count; 64 caps memory and context-
    switch overhead on big machines.
    """
    return min(64, 4 * (os.cpu_count() or 4))


class DeltaExecutor:
    """Awaitable bridge from the event loop to a worker pool."""

    def __init__(self, kind: str = "thread", max_workers: int | None = None) -> None:
        if kind not in KINDS:
            raise ValueError(f"executor kind must be one of {KINDS}, got {kind!r}")
        self.kind = kind
        if kind == "thread":
            if max_workers is None:
                max_workers = default_thread_workers()
            self._pool: ThreadPoolExecutor | ProcessPoolExecutor | None = (
                ThreadPoolExecutor(max_workers=max_workers, thread_name_prefix="delta")
            )
        elif kind == "process":
            self._pool = ProcessPoolExecutor(max_workers=max_workers)
        else:
            self._pool = None

    async def run(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Run ``fn(*args, **kwargs)`` off-loop and await its result.

        In ``sync`` mode the call runs inline (blocking the loop) — the
        documented fallback, not the serving configuration.
        """
        if self._pool is None:
            return fn(*args, **kwargs)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._pool, functools.partial(fn, *args, **kwargs)
        )

    def shutdown(self, wait: bool = True) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=wait)

    def __enter__(self) -> "DeltaExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return f"DeltaExecutor(kind={self.kind!r})"
