"""Offload blocking work (delta generation, rendering) off the event loop.

The Vdelta differ costs milliseconds per delta (the paper's 6–8 ms,
Section VI-C); run inline it would stall every other connection on the
asyncio loop.  :class:`DeltaExecutor` pushes those calls onto a worker
pool so the loop only ever awaits.

Three kinds:

* ``thread`` (default) — a ``ThreadPoolExecutor``.  The delta-server
  engine is shared mutable state guarded by its own lock, so threads are
  the right vehicle: requests serialize on the engine (the paper's
  single-CPU server) while connection I/O stays fully concurrent.  The
  pure-Python differ holds the GIL while encoding, so threads do not add
  CPU parallelism — they buy loop responsiveness, which is what the
  ceiling-bound capacity experiment needs.
* ``process`` — a ``ProcessPoolExecutor`` for *stateless, picklable*
  jobs (e.g. raw ``make_delta`` calls).  A future sharded engine can use
  it for true CPU parallelism; the shared class-map engine cannot be
  shipped across process boundaries.
* ``sync`` — run inline.  Fallback for environments without worker
  threads and for deterministic unit tests.
"""

from __future__ import annotations

import asyncio
import functools
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable

KINDS = ("thread", "process", "sync")


class DeltaExecutor:
    """Awaitable bridge from the event loop to a worker pool."""

    def __init__(self, kind: str = "thread", max_workers: int | None = None) -> None:
        if kind not in KINDS:
            raise ValueError(f"executor kind must be one of {KINDS}, got {kind!r}")
        self.kind = kind
        if kind == "thread":
            self._pool: ThreadPoolExecutor | ProcessPoolExecutor | None = (
                ThreadPoolExecutor(max_workers=max_workers, thread_name_prefix="delta")
            )
        elif kind == "process":
            self._pool = ProcessPoolExecutor(max_workers=max_workers)
        else:
            self._pool = None

    async def run(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Run ``fn(*args, **kwargs)`` off-loop and await its result.

        In ``sync`` mode the call runs inline (blocking the loop) — the
        documented fallback, not the serving configuration.
        """
        if self._pool is None:
            return fn(*args, **kwargs)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._pool, functools.partial(fn, *args, **kwargs)
        )

    def shutdown(self, wait: bool = True) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=wait)

    def __enter__(self) -> "DeltaExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return f"DeltaExecutor(kind={self.kind!r})"
