"""HPP-style template splitting (Douglis, Haro & Rabinovich — paper's [6]).

HPP ("HTML macro-preprocessing") separates a dynamic document into a
*static template*, cached like any static object, and *dynamic bindings*
fetched from the server on every access.  The paper's introduction uses it
as the closest prior art and argues delta-encoding strictly dominates it:

    "According to their simulations, the size of network transfers are
    typically 2 to 8 times smaller than the original sizes.  This idea is
    simpler than delta-encoding, but it is less efficient.  Clearly,
    delta-encoding exploits more redundancy than this scheme."

The reason: HPP's template is fixed per *document structure*, so anything
that varies — even content that is identical across *most* requests —
must ship as a binding every time, while a delta ships only what changed
*since the base-file*.

Our implementation derives the template the way an HPP author effectively
does: from several renders of a document, keep as template the byte runs
common to all of them (computed with the same chunk differ used
elsewhere), and ship the gaps as bindings.  This is the most favorable
automated reading of HPP — a hand-written template could not keep more.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.delta.compress import compress
from repro.delta.instructions import base_coverage
from repro.delta.vdelta import VdeltaEncoder


@dataclass(frozen=True, slots=True)
class TemplateSplit:
    """A document structure split into static template and binding slots.

    ``kept`` are the template's byte ranges of the reference document;
    bindings for a concrete render are the bytes between matched template
    ranges.
    """

    reference: bytes
    kept_ranges: tuple[tuple[int, int], ...]

    @property
    def template_bytes(self) -> int:
        return sum(end - start for start, end in self.kept_ranges)

    @property
    def template(self) -> bytes:
        return b"".join(self.reference[s:e] for s, e in self.kept_ranges)


def split_document(
    renders: list[bytes], encoder: VdeltaEncoder | None = None
) -> TemplateSplit:
    """Derive the static template: byte runs common to all renders.

    The first render is the reference; every other render is diffed
    against it and only reference ranges copied by *every* diff survive as
    template.
    """
    if not renders:
        raise ValueError("need at least one render")
    reference = renders[0]
    if len(renders) == 1:
        return TemplateSplit(reference, ((0, len(reference)),))
    encoder = encoder or VdeltaEncoder()
    index = encoder.index(reference)
    counts = [0] * (len(reference) + 1)
    for render in renders[1:]:
        result = encoder.encode_with_index(index, render)
        for start, end in base_coverage(result.instructions, len(reference)):
            counts[start] += 1
            counts[end] -= 1
    needed = len(renders) - 1
    kept: list[tuple[int, int]] = []
    running = 0
    start: int | None = None
    for i, inc in enumerate(counts[:-1]):
        running += inc
        if running >= needed and start is None:
            start = i
        elif running < needed and start is not None:
            kept.append((start, i))
            start = None
    if start is not None:
        kept.append((start, len(reference)))
    return TemplateSplit(reference, tuple(kept))


@dataclass(slots=True)
class HPPStats:
    """Transfer accounting for the HPP baseline."""

    requests: int = 0
    direct_bytes: int = 0
    template_bytes_sent: int = 0  # templates are cachable: sent once each
    binding_bytes_sent: int = 0

    @property
    def sent_bytes(self) -> int:
        return self.template_bytes_sent + self.binding_bytes_sent

    @property
    def savings(self) -> float:
        if not self.direct_bytes:
            return 0.0
        return 1.0 - self.sent_bytes / self.direct_bytes

    @property
    def reduction_factor(self) -> float:
        if not self.sent_bytes:
            return float("inf")
        return self.direct_bytes / self.sent_bytes


class HPPServer:
    """Replays requests under the HPP scheme for comparison benchmarks.

    Per URL: the first few renders train the template; after that, each
    request ships only the (compressed) dynamic bindings, and the template
    ships once per URL (it is cachable and shared by all clients behind
    the proxy).
    """

    def __init__(
        self,
        fetch: Callable[[str, str, float], bytes],
        training_renders: int = 3,
        compression_level: int = 6,
    ) -> None:
        if training_renders < 2:
            raise ValueError("need >= 2 training renders to find dynamic parts")
        self._fetch = fetch
        self._training = training_renders
        self._level = compression_level
        self._samples: dict[str, list[bytes]] = {}
        self._splits: dict[str, TemplateSplit] = {}
        self._template_shipped: set[str] = set()
        self._encoder = VdeltaEncoder()
        self._indexes: dict[str, object] = {}
        self.stats = HPPStats()

    def handle(self, url: str, user: str, now: float) -> None:
        """Process one request, accounting transfer bytes."""
        document = self._fetch(url, user, now)
        self.stats.requests += 1
        self.stats.direct_bytes += len(document)

        split = self._splits.get(url)
        if split is None:
            samples = self._samples.setdefault(url, [])
            samples.append(document)
            # no template yet: full document ships (counted as bindings)
            self.stats.binding_bytes_sent += len(
                compress(document, self._level)
            )
            if len(samples) >= self._training:
                self._splits[url] = split_document(samples, self._encoder)
                self._indexes[url] = self._encoder.index(samples[0])
                del self._samples[url]
            return

        if url not in self._template_shipped:
            # one cachable template transfer (proxy serves everyone after)
            self.stats.template_bytes_sent += len(
                compress(split.template, self._level)
            )
            self._template_shipped.add(url)
        bindings = self._bindings(url, split, document)
        self.stats.binding_bytes_sent += len(compress(bindings, self._level))

    #: a COPY must span at least this much to count as a template segment;
    #: HPP's macros are structural, so stray few-byte overlaps between a
    #: binding's text and the template do not let the client reconstruct
    #: anything — they must ship like any other binding bytes.
    MIN_TEMPLATE_MATCH = 128

    def _bindings(self, url: str, split: TemplateSplit, document: bytes) -> bytes:
        """Bytes of ``document`` not matched by the template ranges.

        A document run produced by a long COPY from inside a template range
        is template content the client already holds; everything else — ADD
        literals, copies from non-template reference regions, and short
        incidental matches — is a binding and must ship.
        """
        from repro.delta.instructions import Add, Run

        result = self._encoder.encode_with_index(self._indexes[url], document)
        out = bytearray()
        pos = 0
        for instr in result.instructions:
            if isinstance(instr, Add):
                out += instr.data
                pos += len(instr.data)
            elif isinstance(instr, Run):
                out += bytes([instr.byte]) * instr.length
                pos += instr.length
            else:
                if not self._inside_template(split, instr.offset, instr.length):
                    out += document[pos : pos + instr.length]
                pos += instr.length
        return bytes(out)

    def _inside_template(self, split: TemplateSplit, offset: int, length: int) -> bool:
        if length < self.MIN_TEMPLATE_MATCH:
            return False
        end = offset + length
        return any(s <= offset and end <= e for s, e in split.kept_ranges)
