"""Plain proxy-caching baseline: what the paper's introduction starts from.

"No matter the replacement scheme, the cache size and the user population
serviced by the cache, proxy-cache hit rates are usually around 40 %.
However, if proxy-caches were equipped with mechanisms that exploit
redundancy from all documents, static and dynamic, hit rates could have
been up to 80 %." (Section I, citing Wolman et al.)

The baseline replays a trace against a proxy that can cache *static*
objects only — dynamic documents are uncachable by definition — so its
byte hit rate is bounded by the static fraction of the traffic.  Compared
against the delta-server replay of the same trace, it quantifies the
redundancy that classic caching leaves on the table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.proxy.cache import LRUCache
from repro.http.messages import Response


@dataclass(slots=True)
class PlainProxyStats:
    """Traffic accounting for the plain-proxy baseline."""

    requests: int = 0
    direct_bytes: int = 0  # origin-rendered bytes (all traffic)
    upstream_bytes: int = 0  # bytes actually fetched over the wide-area link
    hits: int = 0

    @property
    def byte_savings(self) -> float:
        if not self.direct_bytes:
            return 0.0
        return 1.0 - self.upstream_bytes / self.direct_bytes

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


def replay_plain_proxy(
    requests: list[tuple[str, str, float]],
    fetch: Callable[[str, str, float], bytes],
    is_static: Callable[[str], bool],
    capacity_bytes: int = 256 * 1024 * 1024,
) -> PlainProxyStats:
    """Replay ``(url, user, now)`` requests through a static-only proxy.

    ``is_static`` marks URLs whose responses are cachable; dynamic URLs
    always go upstream, exactly like a pre-delta-encoding deployment.
    """
    cache = LRUCache(capacity_bytes)
    stats = PlainProxyStats()
    for url, user, now in requests:
        stats.requests += 1
        body = fetch(url, user, now)
        stats.direct_bytes += len(body)
        if not is_static(url):
            stats.upstream_bytes += len(body)
            continue
        cached = cache.get(url)
        if cached is not None:
            stats.hits += 1
            continue
        stats.upstream_bytes += len(body)
        response = Response(status=200, body=body)
        response.mark_cachable()
        cache.put(url, response)
    return stats
