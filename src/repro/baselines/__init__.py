"""Baseline schemes the paper positions class-based delta-encoding against.

* :mod:`repro.baselines.hpp` — HTML macro-preprocessing (Douglis et al.,
  the paper's [6]): split documents into a cachable static template plus
  dynamic bindings fetched per request.  "The size of network transfers
  are typically 2 to 8 times smaller than the original sizes ... this idea
  is simpler than delta-encoding, but it is less efficient."
* :mod:`repro.baselines.plain_proxy` — classic proxy-caching only: dynamic
  documents are uncachable, so the proxy helps only with base-file-like
  static objects; hit rates top out around 40 % (paper Section I).
"""

from __future__ import annotations

from repro.baselines.hpp import HPPServer, HPPStats, TemplateSplit, split_document
from repro.baselines.plain_proxy import PlainProxyStats, replay_plain_proxy

__all__ = [
    "HPPServer",
    "HPPStats",
    "PlainProxyStats",
    "TemplateSplit",
    "replay_plain_proxy",
    "split_document",
]
