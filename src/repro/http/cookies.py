"""Cookie-jar model for user identification.

Section V of the paper leans on cookies for telling users apart during
anonymization, and explicitly calls out that the mapping is imperfect:
"Netscape and Internet Explorer do not share cookies ... the system will
interpret these transactions as originating from different users."  The
:class:`CookieJar` here is per *browser instance*, so the simulator can
reproduce that very failure mode (one human, two jars).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

_uid_counter = itertools.count(1)


def issue_uid(prefix: str = "u") -> str:
    """Server-issued opaque user identification for a new cookie jar."""
    return f"{prefix}{next(_uid_counter):08d}"


@dataclass(slots=True)
class CookieJar:
    """Cookies held by one browser instance."""

    cookies: dict[str, str] = field(default_factory=dict)

    def ensure_uid(self) -> str:
        """Return this jar's uid, issuing one on first use (Set-Cookie)."""
        if "uid" not in self.cookies:
            self.cookies["uid"] = issue_uid()
        return self.cookies["uid"]

    def as_request_cookies(self) -> dict[str, str]:
        """Copy of the cookies to attach to an outgoing request."""
        return dict(self.cookies)

    def clear(self) -> None:
        """Forget everything (user cleared browser data)."""
        self.cookies.clear()
