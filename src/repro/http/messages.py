"""Minimal HTTP-like message model for the simulated architecture.

The deployment architecture (paper Section VI-C, Fig. 2) is transparent:
clients, proxy-caches, and web-servers exchange ordinary requests and
responses, and the delta-server rides on top using only standard
header-style metadata.  This module models exactly the message surface the
rest of the system needs — methods, URLs, headers, cookies, cachability —
without pretending to be a full HTTP stack.

Delta-specific headers:

* ``X-Delta-Base`` — on a base-file response: ``"<class_id>/<version>"``.
  Base-file responses are marked cachable so proxies treat them as static
  content.
* ``X-Delta`` — on a delta response: the base ``"<class_id>/<version>"``
  this delta must be applied to.
* ``X-Accept-Delta`` — on a request: the ``"<class_id>/<version>"`` pairs
  of the base-files the client already holds.
* ``X-Degraded`` — on a degraded response: ``"stale-base"`` when the
  delta-server answered with the class's base-file because the origin was
  unavailable, ``"origin-unavailable"`` on the 502 fallback.  Degraded
  bodies are real payloads (digests match) but not fresh renders, so
  freshness checks must skip them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

HEADER_DELTA_BASE = "X-Delta-Base"
HEADER_DELTA = "X-Delta"
HEADER_ACCEPT_DELTA = "X-Accept-Delta"
HEADER_CONTENT_ENCODING = "Content-Encoding"
HEADER_CACHE_CONTROL = "Cache-Control"
HEADER_DEGRADED = "X-Degraded"


class Headers:
    """Case-insensitive header multimap with last-write-wins semantics."""

    __slots__ = ("_items",)

    def __init__(self, initial: dict[str, str] | None = None) -> None:
        self._items: dict[str, tuple[str, str]] = {}
        if initial:
            for name, value in initial.items():
                self.set(name, value)

    def set(self, name: str, value: str) -> None:
        self._items[name.lower()] = (name, value)

    def get(self, name: str, default: str | None = None) -> str | None:
        entry = self._items.get(name.lower())
        return entry[1] if entry else default

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._items

    def __iter__(self):
        return iter(original for original, _ in self._items.values())

    def items(self) -> list[tuple[str, str]]:
        return [(original, value) for original, value in self._items.values()]

    def copy(self) -> "Headers":
        clone = Headers()
        clone._items = dict(self._items)
        return clone

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        return f"Headers({dict(self.items())!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Headers):
            return NotImplemented
        return {k: v for k, (_, v) in self._items.items()} == {
            k: v for k, (_, v) in other._items.items()
        }


@dataclass(slots=True)
class Request:
    """A client request flowing through proxy and delta-server to the origin."""

    url: str
    method: str = "GET"
    headers: Headers = field(default_factory=Headers)
    cookies: dict[str, str] = field(default_factory=dict)
    client_id: str = "anonymous"
    timestamp: float = 0.0

    @property
    def user_id(self) -> str | None:
        """User identification carried in the ``uid`` cookie.

        The paper (Section V) notes the standard way to distinguish users is
        "by distributing to them user identifications through cookies" —
        and that the same human can appear as two users (two browsers that
        do not share cookie jars).  Anonymization counts *cookie users*, not
        humans, exactly as deployed systems must.
        """
        return self.cookies.get("uid")

    def accepts_delta(self) -> list[str]:
        """Base-file ids the client advertises (``X-Accept-Delta`` header)."""
        raw = self.headers.get(HEADER_ACCEPT_DELTA, "")
        return [token for token in raw.split(",") if token] if raw else []


@dataclass(slots=True)
class Response:
    """A response, possibly a delta or a base-file rather than a full body."""

    status: int = 200
    body: bytes = b""
    headers: Headers = field(default_factory=Headers)
    cachable: bool = False

    @property
    def content_length(self) -> int:
        return len(self.body)

    @property
    def is_delta(self) -> bool:
        return HEADER_DELTA in self.headers

    @property
    def is_base_file(self) -> bool:
        return HEADER_DELTA_BASE in self.headers

    @property
    def delta_base_ref(self) -> str | None:
        """``"<class_id>/<version>"`` of the base this delta applies to."""
        return self.headers.get(HEADER_DELTA)

    @property
    def base_file_ref(self) -> str | None:
        """``"<class_id>/<version>"`` identity of this base-file response."""
        return self.headers.get(HEADER_DELTA_BASE)

    @property
    def degraded(self) -> str | None:
        """Degradation marker (``X-Degraded``), or None for fresh responses."""
        return self.headers.get(HEADER_DEGRADED)

    def mark_cachable(self, max_age: int = 86400) -> None:
        """Flag the response as proxy-cachable (base-files are; deltas aren't)."""
        self.cachable = True
        self.headers.set(HEADER_CACHE_CONTROL, f"public, max-age={max_age}")


def base_ref(class_id: str, version: int) -> str:
    """Render the ``"<class_id>/<version>"`` token used in delta headers."""
    return f"{class_id}/{version}"


def parse_base_ref(token: str) -> tuple[str, int]:
    """Inverse of :func:`base_ref`; raises ``ValueError`` on malformed input."""
    class_id, sep, version = token.rpartition("/")
    if not sep or not class_id:
        raise ValueError(f"malformed base ref {token!r}")
    return class_id, int(version)
