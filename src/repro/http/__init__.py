"""HTTP-like message substrate used by the simulated architecture (Fig. 2)."""

from __future__ import annotations

from repro.http.cookies import CookieJar, issue_uid
from repro.http.messages import (
    HEADER_ACCEPT_DELTA,
    HEADER_CACHE_CONTROL,
    HEADER_CONTENT_ENCODING,
    HEADER_DELTA,
    HEADER_DELTA_BASE,
    Headers,
    Request,
    Response,
    base_ref,
    parse_base_ref,
)

__all__ = [
    "CookieJar",
    "HEADER_ACCEPT_DELTA",
    "HEADER_CACHE_CONTROL",
    "HEADER_CONTENT_ENCODING",
    "HEADER_DELTA",
    "HEADER_DELTA_BASE",
    "Headers",
    "Request",
    "Response",
    "base_ref",
    "issue_uid",
    "parse_base_ref",
]
