"""Client-side substrate: browser instances that reconstruct deltas."""

from __future__ import annotations

from repro.client.browser import ClientStats, DeltaClient

__all__ = ["ClientStats", "DeltaClient"]
