"""Client-side of the architecture: base-file cache and reconstruction.

The paper's client options are "the browser's cache to store base-files,
and ... Java-scripts enabled at the browser, to combine deltas and locally
stored base-files" or a plug-in (Section VI-C).  :class:`DeltaClient`
models one browser instance: a cookie jar (one *user id* per jar — two
browsers of the same human are two users, exactly the paper's Netscape/IE
caveat), a base-file cache, and the reconstruction logic.

The client is transparent-deployment-honest: it learns about classes only
from response headers, fetches base-files over ordinary (cachable) URLs —
so any proxy on the path can serve them — and advertises held base-files
with the ``X-Accept-Delta`` request header.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import zlib

from repro.delta.apply import apply_delta
from repro.delta.codec import DEFAULT_MAX_TARGET_LENGTH
from repro.delta.compress import decompress
from repro.delta.errors import DeltaError
from repro.http.cookies import CookieJar
from repro.http.messages import (
    HEADER_ACCEPT_DELTA,
    HEADER_CONTENT_ENCODING,
    Request,
    Response,
    parse_base_ref,
)
from repro.url.parts import split_server

SendFn = Callable[[Request, float], Response]


@dataclass(slots=True)
class ClientStats:
    """Per-browser transfer accounting (drives latency estimates)."""

    requests: int = 0
    document_bytes: int = 0  # bytes received for document responses
    base_file_bytes: int = 0  # bytes received fetching base-files
    deltas_applied: int = 0
    full_responses: int = 0
    base_fetches: int = 0
    delta_failures: int = 0
    #: sizes of individual document transfers, for latency modelling
    transfer_sizes: list[int] = field(default_factory=list)
    #: distinct document URLs this browser has fetched
    urls_fetched: set[str] = field(default_factory=set)


class DeltaClient:
    """One browser instance talking to the web through ``send``.

    ``send`` is whatever sits upstream: the delta-server directly, or a
    proxy-cache in front of it — the client cannot tell, which is the point.
    """

    def __init__(self, send: SendFn, jar: CookieJar | None = None) -> None:
        self._send = send
        self.jar = jar or CookieJar()
        self.jar.ensure_uid()
        self._base_cache: dict[str, bytes] = {}  # ref -> base-file bytes
        self._url_ref: dict[str, str] = {}  # url -> ref it was last served under
        self.stats = ClientStats()

    @property
    def user_id(self) -> str:
        return self.jar.ensure_uid()

    def held_base_refs(self) -> list[str]:
        """Base-file references currently cached (diagnostics)."""
        return sorted(self._base_cache)

    def drop_base(self, ref: str) -> None:
        """Evict a cached base-file (simulates browser-cache pressure)."""
        self._base_cache.pop(ref, None)

    def get(self, url: str, now: float = 0.0) -> bytes:
        """Fetch ``url`` and return the reconstructed document."""
        request = self._request_for(url, now)
        response = self._send(request, now)
        self.stats.requests += 1
        self.stats.urls_fetched.add(url)
        body = self._decode(url, request, response, now)
        return body

    # -- internals -----------------------------------------------------------

    def _request_for(self, url: str, now: float) -> Request:
        uid = self.jar.ensure_uid()  # (re)issue identity before snapshotting cookies
        request = Request(
            url=url,
            cookies=self.jar.as_request_cookies(),
            client_id=uid,
            timestamp=now,
        )
        ref = self._url_ref.get(url)
        if ref is not None and ref in self._base_cache:
            request.headers.set(HEADER_ACCEPT_DELTA, ref)
        return request

    def _decode(
        self, url: str, request: Request, response: Response, now: float
    ) -> bytes:
        if response.is_delta:
            return self._decode_delta(url, response, now)
        # Full response; remember the advertised class base (if any) and
        # prefetch the base-file so the next request can use deltas.
        self.stats.full_responses += 1
        self.stats.document_bytes += response.content_length
        self.stats.transfer_sizes.append(response.content_length)
        ref = response.base_file_ref
        if ref is not None:
            self._url_ref[url] = ref
            if ref not in self._base_cache:
                self._fetch_base(url, ref, now)
        return response.body

    def _decode_delta(self, url: str, response: Response, now: float) -> bytes:
        ref = response.delta_base_ref
        assert ref is not None
        base = self._base_cache.get(ref)
        if base is None:
            # Should not happen (we only advertise bases we hold); recover
            # with a plain refetch.
            self.stats.delta_failures += 1
            return self._refetch_full(url, now)
        try:
            payload = response.body
            if response.headers.get(HEADER_CONTENT_ENCODING) == "deflate":
                payload = decompress(payload)
            # The decode bound keeps a hostile/corrupt payload from forcing
            # a giant reconstruction allocation on the client.
            document = apply_delta(
                payload, base, max_target_length=DEFAULT_MAX_TARGET_LENGTH
            )
        except (DeltaError, zlib.error):
            # Corrupt payload or stale/corrupt base: drop the base and
            # refetch the full document — the paper's fallback path.
            self.stats.delta_failures += 1
            self.drop_base(ref)
            return self._refetch_full(url, now)
        self.stats.deltas_applied += 1
        self.stats.document_bytes += response.content_length
        self.stats.transfer_sizes.append(response.content_length)
        # A delta response may advertise a newer base (post-rebase): pick it
        # up so future requests diff against the current generation.
        new_ref = response.base_file_ref
        if new_ref is not None and new_ref != ref:
            self._url_ref[url] = new_ref
            if new_ref not in self._base_cache:
                self._fetch_base(url, new_ref, now)
        return document

    def _refetch_full(self, url: str, now: float) -> bytes:
        uid = self.jar.ensure_uid()
        request = Request(
            url=url,
            cookies=self.jar.as_request_cookies(),
            client_id=uid,
            timestamp=now,
        )
        response = self._send(request, now)
        self.stats.full_responses += 1
        self.stats.document_bytes += response.content_length
        self.stats.transfer_sizes.append(response.content_length)
        ref = response.base_file_ref
        if ref is not None:
            self._url_ref[url] = ref
            if ref not in self._base_cache:
                self._fetch_base(url, ref, now)
        return response.body

    def _fetch_base(self, document_url: str, ref: str, now: float) -> None:
        server, _ = split_server(document_url)
        class_id, version = parse_base_ref(ref)
        base_url = f"{server}/__delta_base__/{class_id}/{version}"
        uid = self.jar.ensure_uid()
        request = Request(
            url=base_url,
            cookies=self.jar.as_request_cookies(),
            client_id=uid,
            timestamp=now,
        )
        response = self._send(request, now)
        self.stats.base_fetches += 1
        if response.status == 200:
            self._base_cache[ref] = response.body
            self.stats.base_file_bytes += response.content_length
