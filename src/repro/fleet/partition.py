"""Class partitioning across a worker fleet: consistent hashing on (server, hint).

Section VI's scalability argument assumes delta-server capacity can grow
past one process; the middleware-cache literature (Malik et al., see
PAPERS.md) motivates the partitioning discipline used here: every unit of
cached state has exactly one owner.  Our unit is the *document class* —
the grouper already shards classification by ``(server, hint)``
(:mod:`repro.core.grouping`), and every class lives under exactly one
such key, so hashing the key picks the one worker that owns the class's
base-file lineage and its store shard.

Why consistent hashing (a ring of virtual nodes) rather than
``hash(key) % workers``: the fleet supports rolling restarts today and
is meant to support resizes tomorrow — on a ring, changing the worker
count remaps only the keys adjacent to the moved virtual nodes instead
of reshuffling almost everything, which is what keeps per-worker store
shards warm across a resize.  The hash must also be *stable across
processes* (every worker computes the same map independently), so it is
built on :func:`hashlib.blake2b`, never on Python's salted ``hash()``.

Class ids carry their owner: worker *k* mints ids with the
``w<k>-`` prefix (``w2-cls7``), so a base-file URL — which names a class
id, not a hint — can be routed to its owner by any worker without a
shared directory.
"""

from __future__ import annotations

import bisect
import hashlib
import re
from dataclasses import dataclass, field

#: virtual nodes per worker on the hash ring; enough for <5% imbalance
#: at small fleet sizes without making map construction noticeable.
DEFAULT_VNODES = 64

#: class-id prefix shape minted by fleet workers (``w<worker>-cls<n>``)
_CLASS_PREFIX_RE = re.compile(r"^w(\d+)-")


def worker_class_prefix(worker_id: int) -> str:
    """The class-id prefix worker ``worker_id`` mints classes under."""
    if worker_id < 0:
        raise ValueError("worker_id must be >= 0")
    return f"w{worker_id}-"


def owner_of_class_id(class_id: str) -> int | None:
    """The worker that minted ``class_id``, or ``None`` for unprefixed ids.

    Unprefixed ids (``cls3``) come from single-process runs; callers
    treat ``None`` as "serve locally".
    """
    match = _CLASS_PREFIX_RE.match(class_id)
    return int(match.group(1)) if match else None


def _point(token: str) -> int:
    """A stable 64-bit ring position for ``token``."""
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class PartitionMap:
    """Deterministic (server, hint) → worker assignment over a hash ring.

    Every process that constructs ``PartitionMap(workers=N)`` gets the
    identical assignment — workers never exchange the map, they derive it.
    """

    workers: int
    vnodes: int = DEFAULT_VNODES
    _ring: tuple[tuple[int, int], ...] = field(
        init=False, repr=False, compare=False, default=()
    )
    _points: tuple[int, ...] = field(
        init=False, repr=False, compare=False, default=()
    )

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        ring = sorted(
            (_point(f"worker:{worker}:vnode:{vnode}"), worker)
            for worker in range(self.workers)
            for vnode in range(self.vnodes)
        )
        object.__setattr__(self, "_ring", tuple(ring))
        object.__setattr__(self, "_points", tuple(p for p, _ in ring))

    def owner(self, server: str, hint: str) -> int:
        """The worker owning the class key ``(server, hint)``."""
        if self.workers == 1:
            return 0
        where = _point(f"key:{server}|{hint}")
        index = bisect.bisect_right(self._points, where)
        if index == len(self._ring):
            index = 0  # wrap: the ring is circular
        return self._ring[index][1]

    def spread(self, keys: list[tuple[str, str]]) -> dict[int, int]:
        """Keys-per-worker histogram (diagnostics and balance tests)."""
        counts = {worker: 0 for worker in range(self.workers)}
        for server, hint in keys:
            counts[self.owner(server, hint)] += 1
        return counts

    def snapshot(self) -> dict:
        """Shape description for health surfaces."""
        return {"workers": self.workers, "vnodes": self.vnodes}
