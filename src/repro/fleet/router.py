"""Worker-side request routing: serve owned classes, forward the rest.

With ``SO_REUSEPORT`` (or a shared inherited listener) the kernel hands
any connection to any worker, but each document class lives in exactly
one worker (:mod:`repro.fleet.partition`).  The router is the worker-side
half of that contract:

* document requests hash their ``(server, hint)`` key — computed with the
  same admin :class:`~repro.url.rules.RuleBook` the grouper uses, so
  router and grouper can never disagree about a URL's class key;
* base-file requests (``.../__delta_base__/<class_id>/<version>``) route
  by the worker prefix baked into the class id;
* non-owned requests are forwarded verbatim over a pooled keep-alive
  connection to the owner's *internal* port and the owner's response is
  returned byte-preserving (``X-Served-At``, digests, and delta headers
  untouched — the forwarding worker is a dumb pipe);
* a dead owner (mid-restart) surfaces as :class:`PeerUnavailable`, which
  the serve layer answers with a retryable ``503`` — the same contract
  connection-slot exhaustion already has, and exactly what the load
  generator's transport-retry path expects during a crash-restart window.

Forward loops cannot form: a forwarded request carries
``X-Fleet-Forwarded`` and is always served locally by the receiver, even
if its map disagrees (it cannot, the map is deterministic — the header is
belt-and-braces against a mid-rolling-restart mixed-version fleet).
"""

from __future__ import annotations

import asyncio
import contextlib
from collections import deque
from dataclasses import dataclass

from repro.core.delta_server import DeltaServer
from repro.fleet.partition import PartitionMap, owner_of_class_id
from repro.http.messages import Request, Response
from repro.serve.protocol import (
    ProtocolError,
    read_response,
    serialize_request,
)
from repro.url.rules import RuleBook

#: stamped on every response by the worker whose engine produced it
HEADER_FLEET_WORKER = "X-Fleet-Worker"

#: request header marking an intra-fleet forward (value: origin worker id)
HEADER_FLEET_FORWARDED = "X-Fleet-Forwarded"


class PeerUnavailable(Exception):
    """The owning worker cannot be reached (crashed or mid-restart)."""


@dataclass(slots=True)
class FleetWorkerConfig:
    """One worker's view of the fleet, as handed down by the supervisor."""

    worker_id: int
    workers: int
    internal_port: int
    #: internal (loopback) ports of every worker, indexed by worker id
    peer_ports: tuple[int, ...]
    peer_host: str = "127.0.0.1"
    connect_timeout: float = 1.0
    #: per-peer response deadline; beyond it the peer counts as down
    forward_timeout: float = 10.0
    #: keep-alive connections kept per peer
    pool_size: int = 4

    def __post_init__(self) -> None:
        if not 0 <= self.worker_id < self.workers:
            raise ValueError(
                f"worker_id {self.worker_id} outside fleet of {self.workers}"
            )
        if len(self.peer_ports) != self.workers:
            raise ValueError("peer_ports must list every worker's internal port")


class FleetRouter:
    """Ownership decisions plus the forwarding data path for one worker."""

    def __init__(
        self,
        config: FleetWorkerConfig,
        rulebook: RuleBook,
        partition: PartitionMap | None = None,
    ) -> None:
        self.config = config
        self.worker_id = config.worker_id
        self.partition = partition or PartitionMap(config.workers)
        self._rulebook = rulebook
        #: per-peer keep-alive pools (event-loop confined; no locking)
        self._pools: dict[int, deque[tuple[asyncio.StreamReader, asyncio.StreamWriter]]] = {}
        # -- counters (single event loop; plain ints are exact) --
        self.local_served = 0
        self.forwarded = 0
        self.forward_failures = 0
        self.served_for_peers = 0
        self._closed = False

    # -- ownership -------------------------------------------------------------

    def owner_for_url(self, url: str) -> int:
        """Which worker owns the class state behind ``url``.

        Base-file URLs route by the minting worker's class-id prefix;
        everything else hashes the grouper's ``(server, hint)`` key.
        """
        base = DeltaServer.parse_base_file_url(url)
        if base is not None:
            class_id, _version = base
            owner = owner_of_class_id(class_id)
            if owner is not None and owner < self.config.workers:
                return owner
            return self.worker_id  # unprefixed/foreign id: serve locally
        try:
            parts = self._rulebook.partition(url)
        except ValueError:
            return self.worker_id  # unpartitionable URL: local 404 path
        return self.partition.owner(parts.server, parts.hint)

    def note_local(self, request: Request) -> None:
        """Account a locally-served request (forwarded-in ones separately)."""
        if request.headers.get(HEADER_FLEET_FORWARDED):
            self.served_for_peers += 1
        else:
            self.local_served += 1

    # -- forwarding ------------------------------------------------------------

    async def forward(self, owner: int, request: Request) -> Response:
        """Relay ``request`` to ``owner`` and return its response verbatim.

        One stale-pool retry: a pooled connection that dies on use is
        indistinguishable from a peer that restarted since the pool entry
        was parked, so the first failure burns the pooled connection and
        the retry opens a fresh one.  Only when a *fresh* connection also
        fails is the peer declared unavailable.
        """
        request.headers.set(HEADER_FLEET_FORWARDED, str(self.worker_id))
        wire = serialize_request(request)
        for fresh in (False, True):
            try:
                reader, writer = await self._checkout(owner, force_fresh=fresh)
            except (OSError, asyncio.TimeoutError) as exc:
                self.forward_failures += 1
                raise PeerUnavailable(
                    f"worker {owner} unreachable: {exc}"
                ) from exc
            try:
                writer.write(wire)
                await writer.drain()
                parsed = await asyncio.wait_for(
                    read_response(reader), self.config.forward_timeout
                )
            except (ProtocolError, ConnectionError, OSError, asyncio.TimeoutError):
                self._discard(writer)
                if fresh:
                    self.forward_failures += 1
                    raise PeerUnavailable(f"worker {owner} died mid-forward")
                continue  # stale pooled connection: retry on a fresh one
            if parsed.keep_alive:
                self._park(owner, reader, writer)
            else:
                self._discard(writer)
            self.forwarded += 1
            return parsed.response
        raise AssertionError("unreachable")  # pragma: no cover

    async def _checkout(
        self, owner: int, *, force_fresh: bool
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        pool = self._pools.setdefault(owner, deque())
        if not force_fresh:
            while pool:
                reader, writer = pool.popleft()
                if not writer.is_closing():
                    return reader, writer
                self._discard(writer)
        return await asyncio.wait_for(
            asyncio.open_connection(
                self.config.peer_host, self.config.peer_ports[owner]
            ),
            self.config.connect_timeout,
        )

    def _park(
        self, owner: int, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        pool = self._pools.setdefault(owner, deque())
        if self._closed or len(pool) >= self.config.pool_size or writer.is_closing():
            self._discard(writer)
            return
        pool.append((reader, writer))

    @staticmethod
    def _discard(writer: asyncio.StreamWriter) -> None:
        with contextlib.suppress(Exception):
            writer.close()

    async def close(self) -> None:
        """Drop every pooled peer connection (worker drain path).

        In-flight forwards keep their checked-out connection and finish
        normally; it is discarded instead of re-parked afterwards.
        """
        self._closed = True
        for pool in self._pools.values():
            while pool:
                _, writer = pool.popleft()
                self._discard(writer)

    # -- observability ---------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "worker_id": self.worker_id,
            "workers": self.config.workers,
            "partition": self.partition.snapshot(),
            "local_served": self.local_served,
            "served_for_peers": self.served_for_peers,
            "forwarded": self.forwarded,
            "forward_failures": self.forward_failures,
            "pooled_connections": sum(len(p) for p in self._pools.values()),
        }
