"""Fleet-wide Prometheus exposition: merge per-worker scrapes under one endpoint.

The supervisor scrapes every worker's internal ``/__metrics__`` and
serves one exposition.  Identical metric names from different workers
would collide, so every sample line gets a ``worker="<k>"`` label
injected; ``# HELP``/``# TYPE`` comment lines are deduplicated to their
first occurrence because the exposition format allows each exactly once
per family.  Histogram families stay valid under this relabeling — the
``le`` buckets of one worker carry that worker's label on every bucket,
so each (family, worker) group keeps its own monotone bucket series.
"""

from __future__ import annotations

#: label key injected into every relabeled sample
WORKER_LABEL = "worker"


def relabel_exposition(text: str, worker_id: int) -> str:
    """Inject ``worker="<id>"`` into every sample line of ``text``.

    Comment lines (``# HELP``/``# TYPE``) and blanks pass through
    untouched.  Handles both bare metrics (``name 1.0``) and labeled
    ones (``name{a="b"} 1.0``); label *values* may contain ``}`` or
    spaces, so labeled lines split at the final ``}`` rather than the
    first whitespace.
    """
    label = f'{WORKER_LABEL}="{worker_id}"'
    out: list[str] = []
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            out.append(line)
            continue
        brace = stripped.find("{")
        if brace != -1:
            close = stripped.rfind("}")
            if close > brace:
                existing = stripped[brace + 1 : close].rstrip().rstrip(",")
                inner = f"{existing},{label}" if existing else label
                out.append(
                    f"{stripped[:brace]}{{{inner}}}{stripped[close + 1:]}"
                )
                continue
        name, _, rest = stripped.partition(" ")
        out.append(f"{name}{{{label}}} {rest}")
    return "\n".join(out)


def merge_expositions(parts: dict[int, str], extra: str = "") -> str:
    """One fleet exposition from per-worker scrapes plus supervisor lines.

    ``parts`` maps worker id → that worker's raw exposition text (workers
    that failed to scrape are simply absent — their liveness shows up in
    the supervisor's own ``repro_fleet_worker_up`` series in ``extra``).
    """
    seen_comments: set[str] = set()
    out: list[str] = []
    for worker_id in sorted(parts):
        for line in relabel_exposition(parts[worker_id], worker_id).splitlines():
            stripped = line.strip()
            if stripped.startswith("#"):
                # "# TYPE repro_x counter" → key "TYPE repro_x": one per family
                fields = stripped.split(None, 3)
                if len(fields) >= 3 and fields[1] in ("HELP", "TYPE"):
                    key = f"{fields[1]} {fields[2]}"
                    if key in seen_comments:
                        continue
                    seen_comments.add(key)
            if stripped:
                out.append(stripped)
    if extra.strip():
        out.extend(line for line in extra.splitlines() if line.strip())
    return "\n".join(out) + "\n"
