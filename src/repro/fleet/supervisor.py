"""The fleet supervisor: spawn, watch, restart, drain N delta-server workers.

One supervisor process owns the fleet lifecycle:

* **Shared listen address** — every worker binds the same ``host:port``.
  Where the kernel supports it this is ``SO_REUSEPORT`` (the supervisor
  holds a bound-but-*not*-listening reservation socket so the port
  survives windows where every worker is mid-restart); otherwise the
  supervisor opens the listening socket itself and workers inherit the
  fd (classic pre-fork accept sharing).
* **Crash recovery** — each worker runs under a supervise loop: on exit
  it is restarted with exponential backoff (reset after a stable
  uptime), and with ``--state-dir`` each worker warm-restarts from its
  own store shard (``state/worker-<k>``) — the partition map is
  deterministic for a fixed fleet size, so a shard always rehydrates in
  the worker that owns its classes.
* **Graceful drain** — SIGTERM/SIGINT drains the fleet: workers get
  SIGTERM (stop accepting, finish in-flight under the worker's drain
  deadline, flush the store, exit 0); a worker that overstays its
  deadline is SIGKILLed.  SIGHUP rolls the fleet: one worker at a time
  is drained and respawned, waiting for readiness between workers, so
  the listen address never goes dark.
* **Aggregation** — a loopback admin endpoint serves fleet-wide
  ``/__health__`` (per-worker liveness, restart counts, drain timings,
  partition map) and ``/__metrics__`` (every worker's exposition
  relabeled with ``worker="k"`` plus supervisor-level series).
* **Control file** — ``fleet.json`` (pids, ports, admin address) so
  ``repro.cli fleet status|drain|roll`` and CI can find the fleet.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
import socket
import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.fleet.aggregate import merge_expositions
from repro.fleet.partition import PartitionMap
from repro.http.messages import Request, Response
from repro.metrics import PROMETHEUS_CONTENT_TYPE
from repro.serve.protocol import (
    read_request,
    read_response,
    serialize_request,
    serialize_response,
)
from repro.url.parts import split_server

ACCEPT_REUSEPORT = "reuseport"
ACCEPT_INHERIT = "inherit"


def pick_accept_mode(requested: str = "auto") -> str:
    """Resolve the accept-sharing mode for this kernel."""
    if requested in (ACCEPT_REUSEPORT, ACCEPT_INHERIT):
        return requested
    return ACCEPT_REUSEPORT if hasattr(socket, "SO_REUSEPORT") else ACCEPT_INHERIT


def _allocate_port(host: str) -> int:
    """An ephemeral port that was free a moment ago (loopback services)."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        probe.bind((host, 0))
        return probe.getsockname()[1]


async def http_get(
    host: str, port: int, path: str, *, timeout: float = 2.0
) -> Response:
    """One-shot loopback GET (readiness probes, scrapes, CLI verbs)."""

    async def _fetch() -> Response:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            request = Request(url=f"{host}:{port}/{path.lstrip('/')}")
            writer.write(serialize_request(request, keep_alive=False))
            await writer.drain()
            parsed = await read_response(reader)
            return parsed.response
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    return await asyncio.wait_for(_fetch(), timeout)


@dataclass(slots=True)
class FleetConfig:
    """Everything the supervisor needs to run a fleet."""

    workers: int
    host: str = "127.0.0.1"
    port: int = 0
    admin_port: int = 0
    accept_mode: str = "auto"
    #: per-worker graceful-drain budget before SIGKILL (worker-side close
    #: uses its own drain_timeout; this is the supervisor's outer patience)
    drain_grace: float = 10.0
    backoff_base: float = 0.1
    backoff_cap: float = 5.0
    #: uptime after which a worker's restart backoff resets
    stable_after: float = 3.0
    readiness_timeout: float = 30.0
    state_dir: str | None = None
    control_file: str | None = None
    #: pass-through CLI flags appended to every worker's serve argv
    worker_args: tuple[str, ...] = ()
    vnodes: int | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")


@dataclass(slots=True)
class WorkerHandle:
    """Supervisor-side state for one worker slot."""

    worker_id: int
    internal_port: int
    process: asyncio.subprocess.Process | None = None
    state: str = "starting"  # starting | up | restarting | draining | stopped
    restarts: int = 0
    last_exit: int | None = None
    last_drain_seconds: float | None = None
    started_at: float = 0.0
    ready: asyncio.Event = field(default_factory=asyncio.Event)
    #: set while a rolling restart intentionally stops this worker
    rolling: bool = False

    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.returncode is None


class FleetSupervisor:
    """Own the worker processes of one fleet (see module docstring)."""

    def __init__(self, config: FleetConfig) -> None:
        self.config = config
        self.accept_mode = pick_accept_mode(config.accept_mode)
        self.partition = (
            PartitionMap(config.workers, config.vnodes)
            if config.vnodes
            else PartitionMap(config.workers)
        )
        self.handles: list[WorkerHandle] = []
        self.restarts_total = 0
        self.scrape_failures = 0
        self._reserve_sock: socket.socket | None = None
        self._listen_sock: socket.socket | None = None
        self._port: int | None = None
        self._admin: asyncio.base_events.Server | None = None
        self._admin_port: int | None = None
        self._supervise_tasks: list[asyncio.Task] = []
        self._pump_tasks: list[asyncio.Task] = []
        self._draining = False
        self._drain_done = asyncio.Event()
        self._roll_lock = asyncio.Lock()

    # -- addresses -------------------------------------------------------------

    @property
    def port(self) -> int:
        if self._port is None:
            raise RuntimeError("fleet not started")
        return self._port

    @property
    def admin_address(self) -> tuple[str, int]:
        if self._admin_port is None:
            raise RuntimeError("fleet not started")
        return ("127.0.0.1", self._admin_port)

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Bind the shared address, spawn every worker, wait for readiness."""
        config = self.config
        if self.accept_mode == ACCEPT_REUSEPORT:
            # Reservation socket: bound (never listening) so the port stays
            # ours even in the window where every worker is down.
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((config.host, config.port))
            self._reserve_sock = sock
            self._port = sock.getsockname()[1]
        else:
            # Parent-acceptor fallback: one listening socket, inherited by
            # every worker (they accept; the supervisor never does).
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((config.host, config.port))
            sock.listen(256)
            sock.set_inheritable(True)
            self._listen_sock = sock
            self._port = sock.getsockname()[1]
        internal_ports = [_allocate_port("127.0.0.1") for _ in range(config.workers)]
        self.handles = [
            WorkerHandle(worker_id=k, internal_port=internal_ports[k])
            for k in range(config.workers)
        ]
        if config.state_dir:
            for handle in self.handles:
                self._shard_dir(handle.worker_id).mkdir(parents=True, exist_ok=True)
        await self._start_admin()
        self._supervise_tasks = [
            asyncio.ensure_future(self._supervise(handle)) for handle in self.handles
        ]
        await asyncio.wait_for(
            asyncio.gather(*(handle.ready.wait() for handle in self.handles)),
            self.config.readiness_timeout,
        )
        self._write_control_file()

    async def run_until_drained(self) -> None:
        await self._drain_done.wait()

    async def drain(self) -> dict:
        """SIGTERM every worker, wait for graceful exits, report timings."""
        self._draining = True
        for handle in self.handles:
            handle.state = "draining"
        await asyncio.gather(
            *(self._drain_worker(handle) for handle in self.handles)
        )
        for task in self._supervise_tasks:
            task.cancel()
        await asyncio.gather(*self._supervise_tasks, return_exceptions=True)
        await asyncio.gather(*self._pump_tasks, return_exceptions=True)
        await self._close_admin()
        self._close_sockets()
        self._remove_control_file()
        self._drain_done.set()
        return {
            "workers": [
                {
                    "worker": handle.worker_id,
                    "exit_code": handle.last_exit,
                    "drain_seconds": handle.last_drain_seconds,
                }
                for handle in self.handles
            ],
        }

    async def roll(self) -> None:
        """Rolling restart: drain + respawn one worker at a time."""
        async with self._roll_lock:
            for handle in self.handles:
                if self._draining:
                    return
                handle.rolling = True
                handle.state = "restarting"
                await self._drain_worker(handle)
                # The supervise loop notices the exit, sees ``rolling``,
                # and respawns without backoff; wait for readiness so at
                # most one worker is ever down.
                await asyncio.wait_for(
                    handle.ready.wait(), self.config.readiness_timeout
                )
            self._write_control_file()

    async def _drain_worker(self, handle: WorkerHandle) -> None:
        process = handle.process
        if process is None or process.returncode is not None:
            return
        handle.ready.clear()
        loop = asyncio.get_running_loop()
        started = loop.time()
        with contextlib.suppress(ProcessLookupError):
            process.send_signal(signal.SIGTERM)
        try:
            await asyncio.wait_for(process.wait(), self.config.drain_grace)
        except asyncio.TimeoutError:
            with contextlib.suppress(ProcessLookupError):
                process.kill()
            await process.wait()
        handle.last_drain_seconds = round(loop.time() - started, 4)
        handle.last_exit = process.returncode

    def close(self) -> None:
        """Hard stop (tests/atexit): kill anything still running."""
        for handle in self.handles:
            if handle.alive:
                with contextlib.suppress(ProcessLookupError):
                    handle.process.kill()
        for task in self._supervise_tasks + self._pump_tasks:
            task.cancel()
        self._close_sockets()
        self._remove_control_file()

    def _close_sockets(self) -> None:
        for sock in (self._reserve_sock, self._listen_sock):
            if sock is not None:
                with contextlib.suppress(OSError):
                    sock.close()
        self._reserve_sock = self._listen_sock = None

    # -- worker processes ------------------------------------------------------

    def _shard_dir(self, worker_id: int) -> Path:
        assert self.config.state_dir is not None
        return Path(self.config.state_dir) / f"worker-{worker_id}"

    def _worker_argv(self, handle: WorkerHandle) -> list[str]:
        config = self.config
        peers = ",".join(str(h.internal_port) for h in self.handles)
        argv = [
            sys.executable, "-m", "repro.cli", "serve",
            "--host", config.host,
            "--port", str(self.port),
            "--fleet-worker-id", str(handle.worker_id),
            "--fleet-size", str(config.workers),
            "--fleet-internal-port", str(handle.internal_port),
            "--fleet-peers", peers,
        ]
        if self.accept_mode == ACCEPT_REUSEPORT:
            argv.append("--reuse-port")
        else:
            assert self._listen_sock is not None
            argv += ["--fleet-listen-fd", str(self._listen_sock.fileno())]
        if config.state_dir:
            argv += ["--state-dir", str(self._shard_dir(handle.worker_id))]
        argv += list(config.worker_args)
        return argv

    async def _spawn(self, handle: WorkerHandle) -> None:
        env = dict(os.environ)
        # Workers must import repro the same way the supervisor did,
        # whatever the caller's PYTHONPATH said.
        import repro

        src = str(Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH", "")
        if src not in existing.split(os.pathsep):
            env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
        kwargs: dict = {
            "stdout": asyncio.subprocess.PIPE,
            "stderr": asyncio.subprocess.STDOUT,
            "env": env,
        }
        if self._listen_sock is not None:
            kwargs["pass_fds"] = (self._listen_sock.fileno(),)
        handle.process = await asyncio.create_subprocess_exec(
            *self._worker_argv(handle), **kwargs
        )
        handle.started_at = asyncio.get_running_loop().time()
        pump = asyncio.ensure_future(self._pump_output(handle))
        self._pump_tasks.append(pump)
        self._pump_tasks = [t for t in self._pump_tasks if not t.done()]

    async def _pump_output(self, handle: WorkerHandle) -> None:
        process = handle.process
        assert process is not None and process.stdout is not None
        prefix = f"[w{handle.worker_id}] "
        while True:
            line = await process.stdout.readline()
            if not line:
                return
            print(prefix + line.decode(errors="replace").rstrip(), flush=True)

    async def _wait_ready(self, handle: WorkerHandle) -> bool:
        """Poll the worker's internal health endpoint until it answers."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.readiness_timeout
        while loop.time() < deadline:
            if not handle.alive:
                return False
            try:
                response = await http_get(
                    "127.0.0.1", handle.internal_port, "__health__", timeout=1.0
                )
            except Exception:
                await asyncio.sleep(0.05)
                continue
            if response.status == 200:
                return True
            await asyncio.sleep(0.05)
        return False

    async def _supervise(self, handle: WorkerHandle) -> None:
        """Spawn-watch-restart loop for one worker slot."""
        loop = asyncio.get_running_loop()
        backoff = self.config.backoff_base
        while not self._draining:
            handle.state = "starting"
            await self._spawn(handle)
            if await self._wait_ready(handle):
                handle.state = "up"
                handle.rolling = False
                handle.ready.set()
                self._write_control_file()
            assert handle.process is not None
            returncode = await handle.process.wait()
            handle.ready.clear()
            handle.last_exit = returncode
            uptime = loop.time() - handle.started_at
            if self._draining:
                break
            if handle.rolling:
                # Intentional stop (rolling restart): respawn immediately.
                handle.restarts += 1
                self.restarts_total += 1
                continue
            handle.state = "restarting"
            if uptime >= self.config.stable_after:
                backoff = self.config.backoff_base
            print(
                f"[fleet] worker {handle.worker_id} exited rc={returncode} "
                f"after {uptime:.1f}s; restarting in {backoff:.2f}s",
                flush=True,
            )
            await asyncio.sleep(backoff)
            backoff = min(backoff * 2, self.config.backoff_cap)
            handle.restarts += 1
            self.restarts_total += 1
        handle.state = "stopped"

    # -- control file ----------------------------------------------------------

    def _write_control_file(self) -> None:
        if not self.config.control_file or self._port is None:
            return
        payload = {
            "pid": os.getpid(),
            "host": self.config.host,
            "port": self._port,
            "admin_host": "127.0.0.1",
            "admin_port": self._admin_port,
            "accept_mode": self.accept_mode,
            "workers": [
                {
                    "worker": handle.worker_id,
                    "pid": handle.pid,
                    "internal_port": handle.internal_port,
                }
                for handle in self.handles
            ],
        }
        path = Path(self.config.control_file)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
        tmp.replace(path)

    def _remove_control_file(self) -> None:
        if self.config.control_file:
            with contextlib.suppress(OSError):
                Path(self.config.control_file).unlink()

    # -- aggregation (admin endpoint) -----------------------------------------

    async def _start_admin(self) -> None:
        self._admin = await asyncio.start_server(
            self._admin_connected, "127.0.0.1", self.config.admin_port
        )
        self._admin_port = self._admin.sockets[0].getsockname()[1]

    async def _close_admin(self) -> None:
        if self._admin is not None:
            self._admin.close()
            await self._admin.wait_closed()
            self._admin = None

    def _admin_connected(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        asyncio.ensure_future(self._serve_admin(reader, writer))

    async def _serve_admin(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            parsed = await asyncio.wait_for(read_request(reader), 5.0)
            if parsed is None:
                return
            _, remainder = split_server(parsed.request.url)
            if remainder == "__health__":
                response = await self._health_response()
            elif remainder == "__metrics__":
                response = await self._metrics_response()
            elif remainder == "__drain__":
                # Answer first, then drain — the caller's connection
                # survives to read the acknowledgement.
                response = Response(status=202, body=b'{"draining": true}')
                asyncio.ensure_future(self.drain())
            elif remainder == "__roll__":
                response = Response(status=202, body=b'{"rolling": true}')
                asyncio.ensure_future(self.roll())
            else:
                response = Response(status=404, body=b"unknown fleet endpoint")
            writer.write(serialize_response(response, keep_alive=False))
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError, OSError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _scrape(self, handle: WorkerHandle, path: str) -> Response | None:
        if not handle.alive or not handle.ready.is_set():
            return None
        try:
            return await http_get(
                "127.0.0.1", handle.internal_port, path, timeout=2.0
            )
        except Exception:
            self.scrape_failures += 1
            return None

    async def _health_response(self) -> Response:
        scrapes = await asyncio.gather(
            *(self._scrape(handle, "__health__") for handle in self.handles)
        )
        workers = []
        alive = 0
        healthy = not self._draining
        for handle, scraped in zip(self.handles, scrapes):
            worker_health = None
            if scraped is not None and scraped.status == 200:
                with contextlib.suppress(ValueError):
                    worker_health = json.loads(scraped.body.decode())
            up = handle.alive and worker_health is not None
            alive += up
            if not up or worker_health.get("status") != "ok":
                healthy = False
            workers.append(
                {
                    "worker": handle.worker_id,
                    "pid": handle.pid,
                    "state": handle.state,
                    "up": up,
                    "restarts": handle.restarts,
                    "internal_port": handle.internal_port,
                    "last_exit": handle.last_exit,
                    "last_drain_seconds": handle.last_drain_seconds,
                    "health": worker_health,
                }
            )
        payload = {
            "status": (
                "draining" if self._draining
                else "ok" if healthy
                else "degraded"
            ),
            "fleet": {
                "workers": self.config.workers,
                "alive": alive,
                "restarts_total": self.restarts_total,
                "accept_mode": self.accept_mode,
                "port": self._port,
                "partition": self.partition.snapshot(),
            },
            "workers": workers,
        }
        response = Response(
            status=200, body=json.dumps(payload, sort_keys=True).encode()
        )
        response.headers.set("Content-Type", "application/json")
        return response

    async def _metrics_response(self) -> Response:
        scrapes = await asyncio.gather(
            *(self._scrape(handle, "__metrics__") for handle in self.handles)
        )
        parts = {
            handle.worker_id: scraped.body.decode()
            for handle, scraped in zip(self.handles, scrapes)
            if scraped is not None and scraped.status == 200
        }
        extra = [
            "# TYPE repro_fleet_workers gauge",
            f"repro_fleet_workers {self.config.workers}",
            "# TYPE repro_fleet_workers_alive gauge",
            f"repro_fleet_workers_alive {sum(h.alive for h in self.handles)}",
            "# TYPE repro_fleet_restarts_total counter",
            f"repro_fleet_restarts_total {self.restarts_total}",
            "# TYPE repro_fleet_scrape_failures_total counter",
            f"repro_fleet_scrape_failures_total {self.scrape_failures}",
            "# TYPE repro_fleet_worker_up gauge",
            "# TYPE repro_fleet_worker_restarts_total counter",
            "# TYPE repro_fleet_worker_drain_seconds gauge",
        ]
        for handle in self.handles:
            label = f'worker="{handle.worker_id}"'
            extra.append(f"repro_fleet_worker_up{{{label}}} {int(handle.alive)}")
            extra.append(
                f"repro_fleet_worker_restarts_total{{{label}}} {handle.restarts}"
            )
            if handle.last_drain_seconds is not None:
                extra.append(
                    f"repro_fleet_worker_drain_seconds{{{label}}} "
                    f"{handle.last_drain_seconds}"
                )
        body = merge_expositions(parts, "\n".join(extra))
        response = Response(status=200, body=body.encode())
        response.headers.set("Content-Type", PROMETHEUS_CONTENT_TYPE)
        return response
