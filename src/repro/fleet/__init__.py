"""Multi-process worker fleet: supervision, class partitioning, aggregation.

The scale-out tier (ROADMAP item 1): a supervisor spawns N delta-server
workers sharing one listen address, document classes are partitioned
across workers by consistent hashing on the grouper's (server, hint)
key, and the supervisor aggregates health/metrics, restarts crashed
workers from their store shards, and drains the fleet gracefully.
"""

from repro.fleet.aggregate import merge_expositions, relabel_exposition
from repro.fleet.partition import (
    DEFAULT_VNODES,
    PartitionMap,
    owner_of_class_id,
    worker_class_prefix,
)
from repro.fleet.router import (
    HEADER_FLEET_FORWARDED,
    HEADER_FLEET_WORKER,
    FleetRouter,
    FleetWorkerConfig,
    PeerUnavailable,
)
from repro.fleet.supervisor import (
    ACCEPT_INHERIT,
    ACCEPT_REUSEPORT,
    FleetConfig,
    FleetSupervisor,
    WorkerHandle,
    http_get,
    pick_accept_mode,
)

__all__ = [
    "ACCEPT_INHERIT",
    "ACCEPT_REUSEPORT",
    "DEFAULT_VNODES",
    "FleetConfig",
    "FleetRouter",
    "FleetSupervisor",
    "FleetWorkerConfig",
    "HEADER_FLEET_FORWARDED",
    "HEADER_FLEET_WORKER",
    "PartitionMap",
    "PeerUnavailable",
    "WorkerHandle",
    "http_get",
    "merge_expositions",
    "owner_of_class_id",
    "pick_accept_mode",
    "relabel_exposition",
    "worker_class_prefix",
]
