"""Structured fault injection for the origin path.

The serving stack's original injection point was a single bare callable
(``FaultHook``): it could swap a response, and nothing else.  Real origin
failures are richer — error *bursts* during a deploy, latency spikes when
a database fails over, slow-drip responses from an overloaded backend,
bit-rot in a payload, connections reset mid-flight — and they arrive on a
schedule, not uniformly.  A :class:`FaultPlan` models exactly that: a
composable, seeded list of :class:`FaultRule` entries, each with an
injection probability, an optional activation window (seconds relative to
the plan's arming instant), and an optional URL filter.

Rule kinds:

* ``error``   — substitute an error response (``status``, ``body``);
* ``latency`` — add delay before the fetch (``delay`` + uniform ``jitter``);
* ``drip``    — slow-drip the response: delay *after* the fetch scaled by
  body size (``bps`` bytes/second), modelling a saturated origin uplink;
* ``corrupt`` — XOR-flip ``flips`` random bytes of the response body;
* ``reset``   — raise :class:`OriginResetError` in place of a response,
  modelling a TCP reset from the origin.

``decide`` evaluates every rule per fetch (faults compose: a request can
be both delayed and reset), so one plan can describe an entire chaos
scenario.  All randomness comes from the plan's own seeded generator, so
a scenario replays identically.  Plans are thread-safe: the live server
calls ``decide`` from executor worker threads.

``FaultPlan.parse`` reads the CLI mini-language::

    error:rate=0.1,status=500;latency:rate=0.05,delay=0.2,jitter=0.1
"""

from __future__ import annotations

import random
import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.http.messages import Request, Response

KINDS = ("error", "latency", "drip", "corrupt", "reset")


class OriginResetError(ConnectionError):
    """Injected connection reset from the origin (``reset`` rules)."""


@dataclass(slots=True)
class FaultRule:
    """One injectable failure mode, optionally windowed and URL-filtered."""

    kind: str
    #: injection probability per eligible fetch, in [0, 1]
    rate: float = 1.0
    #: activation window, seconds relative to plan arming (None = unbounded)
    start: float | None = None
    end: float | None = None
    #: URL substring filter ("" matches every request)
    match: str = ""
    #: ``error``: injected response
    status: int = 500
    body: bytes = b"injected origin error"
    #: ``latency``: fixed floor + uniform jitter, seconds
    delay: float = 0.0
    jitter: float = 0.0
    #: ``drip``: response body bytes per second (0 = no drip)
    bps: float = 0.0
    #: ``corrupt``: number of bytes to XOR-flip
    flips: int = 1
    #: label used in the plan's injection counters
    name: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"fault kind must be one of {KINDS}, got {self.kind!r}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.delay < 0 or self.jitter < 0 or self.bps < 0:
            raise ValueError("delay, jitter and bps must be >= 0")
        if self.flips < 1:
            raise ValueError("flips must be >= 1")
        if self.start is not None and self.end is not None and self.end < self.start:
            raise ValueError("window end must be >= start")
        if not self.name:
            self.name = self.kind

    def active(self, elapsed: float) -> bool:
        """Whether the rule's window covers ``elapsed`` seconds after arming."""
        if self.start is not None and elapsed < self.start:
            return False
        if self.end is not None and elapsed >= self.end:
            return False
        return True


@dataclass(slots=True)
class FaultAction:
    """The composed effect of every triggered rule for one fetch."""

    pre_delay: float = 0.0
    response: Response | None = None
    exception: Exception | None = None
    corrupt_flips: int = 0
    drip_bps: float = 0.0

    @property
    def is_noop(self) -> bool:
        return (
            self.pre_delay == 0.0
            and self.response is None
            and self.exception is None
            and self.corrupt_flips == 0
            and self.drip_bps == 0.0
        )


_FLOAT_KEYS = {"rate", "start", "end", "delay", "jitter", "bps"}
_INT_KEYS = {"status", "flips"}


class FaultPlan:
    """A seeded, schedulable composition of :class:`FaultRule` entries."""

    def __init__(
        self,
        rules: Sequence[FaultRule],
        *,
        seed: int = 23,
        clock: Callable[[], float] | None = None,
        enabled: bool = True,
    ) -> None:
        self.rules = list(rules)
        self.enabled = enabled
        self.injected: Counter = Counter()
        self._rng = random.Random(seed)
        self._clock = clock or time.monotonic
        self._armed_at: float | None = None
        self._lock = threading.Lock()

    # -- lifecycle -------------------------------------------------------------

    def arm(self, at: float | None = None) -> None:
        """Pin the window origin; otherwise the first ``decide`` call arms."""
        with self._lock:
            self._armed_at = self._clock() if at is None else at

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    @property
    def elapsed(self) -> float:
        """Seconds since arming (0.0 before the first decision)."""
        with self._lock:
            if self._armed_at is None:
                return 0.0
            return self._clock() - self._armed_at

    # -- decisions -------------------------------------------------------------

    def decide(self, request: Request) -> FaultAction:
        """Evaluate every rule against one fetch; thread-safe."""
        action = FaultAction()
        if not self.enabled:
            return action
        with self._lock:
            now = self._clock()
            if self._armed_at is None:
                self._armed_at = now
            elapsed = now - self._armed_at
            for rule in self.rules:
                if not rule.active(elapsed):
                    continue
                if rule.match and rule.match not in request.url:
                    continue
                if self._rng.random() >= rule.rate:
                    continue
                self.injected[rule.name] += 1
                if rule.kind == "error":
                    if action.response is None:
                        action.response = Response(status=rule.status, body=rule.body)
                elif rule.kind == "latency":
                    action.pre_delay += rule.delay + self._rng.random() * rule.jitter
                elif rule.kind == "drip":
                    # Two drips compose to the slower (lower-bps) of the two.
                    if action.drip_bps:
                        action.drip_bps = min(action.drip_bps, rule.bps)
                    else:
                        action.drip_bps = rule.bps
                elif rule.kind == "corrupt":
                    action.corrupt_flips += rule.flips
                elif rule.kind == "reset":
                    action.exception = OriginResetError(
                        f"injected connection reset ({rule.name})"
                    )
        return action

    def mangle(self, body: bytes, flips: int) -> bytes:
        """XOR-flip ``flips`` seeded-random bytes of ``body``."""
        if not body:
            return body
        data = bytearray(body)
        with self._lock:
            for _ in range(flips):
                data[self._rng.randrange(len(data))] ^= 0xFF
        return bytes(data)

    # -- CLI surface -----------------------------------------------------------

    @classmethod
    def parse(cls, spec: str, *, seed: int = 23) -> "FaultPlan":
        """Build a plan from the ``kind:key=val,...;kind:...`` mini-language."""
        rules = []
        for chunk in spec.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            kind, _, params = chunk.partition(":")
            kwargs: dict[str, object] = {}
            for pair in params.split(","):
                pair = pair.strip()
                if not pair:
                    continue
                key, sep, value = pair.partition("=")
                key = key.strip()
                if not sep:
                    raise ValueError(f"malformed fault parameter {pair!r}")
                if key in _FLOAT_KEYS:
                    kwargs[key] = float(value)
                elif key in _INT_KEYS:
                    kwargs[key] = int(value)
                elif key == "body":
                    kwargs[key] = value.encode()
                elif key in ("match", "name"):
                    kwargs[key] = value
                else:
                    raise ValueError(f"unknown fault parameter {key!r}")
            rules.append(FaultRule(kind=kind.strip(), **kwargs))  # type: ignore[arg-type]
        if not rules:
            raise ValueError(f"fault plan spec {spec!r} contains no rules")
        return cls(rules, seed=seed)

    def describe(self) -> str:
        parts = []
        for rule in self.rules:
            window = ""
            if rule.start is not None or rule.end is not None:
                end = f"{rule.end:g}" if rule.end is not None else "inf"
                window = f"@[{rule.start or 0:g},{end})"
            parts.append(f"{rule.name}:{rule.rate:g}{window}")
        state = "on" if self.enabled else "off"
        return f"FaultPlan({state}; {'; '.join(parts)})"

    def __repr__(self) -> str:
        return self.describe()
