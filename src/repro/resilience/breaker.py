"""Origin circuit breaker: stop hammering a dead backend.

The delta-server sits in the request path next to the origin (Fig. 2);
when the origin dies, every worker thread that keeps retrying against it
is a worker thread not serving clients, and a full connection-slot table
of hung requests amplifies the outage to the whole site.  The classic
remedy is a circuit breaker (Nygard, *Release It!*), here with the usual
three states:

* **closed** — calls flow; outcomes land in a sliding window.  When the
  window holds at least ``min_calls`` outcomes and the failure fraction
  reaches ``failure_threshold``, the breaker *opens*.
* **open** — calls are denied instantly (``allow`` returns False) for
  ``cooldown`` seconds.  Callers degrade instead of hanging.
* **half-open** — after the cooldown, up to ``probes`` concurrent trial
  calls are let through.  ``probes`` successes close the breaker (window
  cleared); any probe failure reopens it and restarts the cooldown.

Thread-safe: the live server records outcomes from executor worker
threads.  The clock is injectable for deterministic tests.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(slots=True)
class BreakerStats:
    """Lifetime transition and outcome counters."""

    successes: int = 0
    failures: int = 0
    opened: int = 0
    half_opens: int = 0
    reclosed: int = 0
    #: calls denied while open / half-open saturated
    fast_fails: int = 0


class CircuitBreaker:
    """Error-rate circuit breaker over a sliding outcome window."""

    def __init__(
        self,
        *,
        window: int = 32,
        min_calls: int = 8,
        failure_threshold: float = 0.5,
        cooldown: float = 5.0,
        probes: int = 2,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if window < 1 or min_calls < 1:
            raise ValueError("window and min_calls must be >= 1")
        if min_calls > window:
            raise ValueError("min_calls cannot exceed window")
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")
        if cooldown < 0 or probes < 1:
            raise ValueError("cooldown must be >= 0 and probes >= 1")
        self.cooldown = cooldown
        self.probes = probes
        self.failure_threshold = failure_threshold
        self.min_calls = min_calls
        self.stats = BreakerStats()
        self._outcomes: deque[bool] = deque(maxlen=window)
        self._clock = clock or time.monotonic
        self._state = CLOSED
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._probe_successes = 0
        self._lock = threading.Lock()

    # -- state -----------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def failure_rate(self) -> float:
        """Failure fraction of the current window (0.0 when empty)."""
        with self._lock:
            if not self._outcomes:
                return 0.0
            return sum(1 for ok in self._outcomes if not ok) / len(self._outcomes)

    def snapshot(self) -> dict:
        """State + counters for health reporting (lock-cheap)."""
        with self._lock:
            self._maybe_half_open()
            return {
                "state": self._state,
                "window": list(self._outcomes).count(False),
                "window_size": len(self._outcomes),
                "opened": self.stats.opened,
                "reclosed": self.stats.reclosed,
                "half_opens": self.stats.half_opens,
                "fast_fails": self.stats.fast_fails,
            }

    # -- protocol --------------------------------------------------------------

    def allow(self) -> bool:
        """Whether a call may proceed right now (counts denials)."""
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and self._probes_in_flight < self.probes:
                self._probes_in_flight += 1
                return True
            self.stats.fast_fails += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            self.stats.successes += 1
            if self._state == HALF_OPEN:
                self._probe_successes += 1
                if self._probe_successes >= self.probes:
                    self._state = CLOSED
                    self._outcomes.clear()
                    self.stats.reclosed += 1
            elif self._state == CLOSED:
                self._outcomes.append(True)
            # open: a straggler finished after the trip; the cooldown stands.

    def record_failure(self) -> None:
        with self._lock:
            self.stats.failures += 1
            if self._state == HALF_OPEN:
                self._open()
            elif self._state == CLOSED:
                self._outcomes.append(False)
                if len(self._outcomes) >= self.min_calls:
                    failures = sum(1 for ok in self._outcomes if not ok)
                    if failures / len(self._outcomes) >= self.failure_threshold:
                        self._open()

    # -- internals (call with the lock held) -----------------------------------

    def _open(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._probes_in_flight = 0
        self._probe_successes = 0
        self.stats.opened += 1

    def _maybe_half_open(self) -> None:
        if self._state == OPEN and self._clock() - self._opened_at >= self.cooldown:
            self._state = HALF_OPEN
            self._probes_in_flight = 0
            self._probe_successes = 0
            self.stats.half_opens += 1

    def __repr__(self) -> str:
        return f"CircuitBreaker(state={self.state!r}, opened={self.stats.opened})"
