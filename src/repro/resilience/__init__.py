"""Resilience: fault injection, retries, circuit breaking, degradation.

The paper's deployment puts the delta-server *in the request path* next
to the origin (Fig. 2) — which means origin hiccups, slow renders, and
corrupted base-files would otherwise take client traffic down with them.
This package is the survival kit the live serving stack
(:mod:`repro.serve`) threads through itself:

* :mod:`repro.resilience.faults` — :class:`FaultPlan`, a structured,
  seeded, schedulable fault-injection engine (error bursts, latency
  spikes, slow-drip, corruption, connection resets) that drives chaos
  testing through :class:`~repro.serve.gateway.OriginGateway`;
* :mod:`repro.resilience.breaker` — :class:`CircuitBreaker`
  (closed → open → half-open) so a dead origin fails fast instead of
  hanging every worker;
* :mod:`repro.resilience.policy` — :class:`ResilientOrigin`, bounded
  retries with exponential backoff + jitter under a per-request deadline
  budget; raises :class:`OriginUnavailable` when the budget is spent,
  which the engine answers with a marked-stale base-file (when it has
  one) and the HTTP front-end with 502 — never a raw 500.

Engine-side self-healing (base-file checksums, class quarantine,
re-adoption) lives with the engine in :mod:`repro.core`; the health
surface (``/__health__``) lives with the server in :mod:`repro.serve`.
"""

from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerStats,
    CircuitBreaker,
)
from repro.resilience.faults import (
    KINDS as FAULT_KINDS,
    FaultAction,
    FaultPlan,
    FaultRule,
    OriginResetError,
)
from repro.resilience.policy import (
    OriginUnavailable,
    ResilienceConfig,
    ResilienceStats,
    ResilientOrigin,
)

__all__ = [
    "BreakerStats",
    "CLOSED",
    "CircuitBreaker",
    "FAULT_KINDS",
    "FaultAction",
    "FaultPlan",
    "FaultRule",
    "HALF_OPEN",
    "OPEN",
    "OriginResetError",
    "OriginUnavailable",
    "ResilienceConfig",
    "ResilienceStats",
    "ResilientOrigin",
]
