"""Origin resilience policy: retries, backoff, deadline budget, breaker.

:class:`ResilientOrigin` wraps any ``(request, now) -> Response`` origin
fetch (in practice :meth:`repro.serve.gateway.OriginGateway.fetch_sync`)
with the standard in-path survival kit:

* **bounded retries with exponential backoff + jitter** — a transient
  origin error (5xx response, connection reset, render exception) is
  retried up to ``retries`` times, pausing ``backoff_base * 2**attempt``
  seconds (capped at ``backoff_cap``) with multiplicative jitter so
  retry storms decorrelate;
* **per-request deadline budget** — retrying stops when the next pause
  would cross ``deadline`` seconds of total effort, so a request never
  outlives the serving layer's patience just to retry;
* **circuit breaker** — every outcome feeds a
  :class:`~repro.resilience.breaker.CircuitBreaker`; when it opens, calls
  fail fast with :class:`OriginUnavailable` instead of stacking worker
  threads on a dead origin.

On exhaustion — breaker open, retries spent, or deadline crossed — the
policy raises :class:`OriginUnavailable`.  The layers above translate
that into *graceful degradation*: the delta engine serves the class's
current base-file as a marked-stale full response when it has one, and
the HTTP front-end answers 502 otherwise.  Clients never see a raw 500
because the origin blinked.

The same ``now`` value is passed to every retry, so a time-dependent
origin renders the identical snapshot on each attempt — retries are
idempotent by construction.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.http.messages import Request, Response
from repro.metrics.registry import MetricsRegistry
from repro.resilience.breaker import CircuitBreaker

OriginFetch = Callable[[Request, float], Response]


class OriginUnavailable(RuntimeError):
    """The origin cannot serve this request within the resilience budget."""

    def __init__(
        self,
        reason: str,
        *,
        breaker_state: str | None = None,
        attempts: int = 0,
        last_status: int | None = None,
    ) -> None:
        super().__init__(reason)
        self.reason = reason
        self.breaker_state = breaker_state
        self.attempts = attempts
        self.last_status = last_status


@dataclass(slots=True)
class ResilienceConfig:
    """Knobs for the origin resilience policy (defaults are serving-safe)."""

    enabled: bool = True
    #: retry attempts after the first try
    retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 1.0
    #: multiplicative jitter fraction: pause *= 1 + U(0, jitter)
    backoff_jitter: float = 0.5
    #: total per-request effort budget, seconds (fetches + backoff)
    deadline: float = 10.0
    breaker_window: int = 32
    breaker_min_calls: int = 8
    breaker_failure_threshold: float = 0.5
    breaker_cooldown: float = 5.0
    breaker_probes: int = 2

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_cap < 0 or self.backoff_jitter < 0:
            raise ValueError("backoff parameters must be >= 0")
        if self.deadline <= 0:
            raise ValueError("deadline must be > 0")

    def make_breaker(self, clock: Callable[[], float] | None = None) -> CircuitBreaker:
        return CircuitBreaker(
            window=self.breaker_window,
            min_calls=self.breaker_min_calls,
            failure_threshold=self.breaker_failure_threshold,
            cooldown=self.breaker_cooldown,
            probes=self.breaker_probes,
            clock=clock,
        )


@dataclass(slots=True)
class ResilienceStats:
    """Counters for one policy instance."""

    calls: int = 0
    retries: int = 0
    backoff_seconds: float = 0.0
    #: calls denied instantly because the breaker was open
    fast_fails: int = 0
    #: calls that burned every retry without a usable response
    exhausted: int = 0
    #: calls whose next backoff would have crossed the deadline
    deadline_exhausted: int = 0


class ResilientOrigin:
    """Retry/backoff/breaker wrapper around a blocking origin fetch."""

    def __init__(
        self,
        fetch: OriginFetch,
        config: ResilienceConfig | None = None,
        *,
        breaker: CircuitBreaker | None = None,
        clock: Callable[[], float] | None = None,
        sleep: Callable[[float], None] | None = None,
        seed: int = 17,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or ResilienceConfig()
        self.breaker = breaker or self.config.make_breaker(clock)
        self.stats = ResilienceStats()
        #: observability sink: attempt/backoff timings and breaker
        #: rejections as named histograms/counters (shared with the
        #: serving layer when wired through ``build_server``).
        self.metrics = metrics or MetricsRegistry()
        self._fetch = fetch
        self._clock = clock or time.monotonic
        self._sleep = sleep or time.sleep
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    # -- internals -------------------------------------------------------------

    def _pause(self, attempt: int) -> float:
        base = min(
            self.config.backoff_cap, self.config.backoff_base * (2**attempt)
        )
        with self._lock:
            jitter = self._rng.random()
        return base * (1.0 + self.config.backoff_jitter * jitter)

    @staticmethod
    def _is_failure(response: Response) -> bool:
        # 5xx means the origin failed to render; everything else (404s,
        # redirects) is the origin's real answer and passes through.
        return response.status >= 500

    # -- public API ------------------------------------------------------------

    def fetch_sync(self, request: Request, now: float) -> Response:
        """Fetch with retries; raises :class:`OriginUnavailable` on defeat.

        Drop-in for :meth:`OriginGateway.fetch_sync` (runs on executor
        worker threads, so it may block in ``sleep``).
        """
        config = self.config
        with self._lock:
            self.stats.calls += 1
        deadline = self._clock() + config.deadline
        attempt = 0
        last_status: int | None = None
        last_error: Exception | None = None
        while True:
            if not self.breaker.allow():
                with self._lock:
                    self.stats.fast_fails += 1
                self.metrics.inc(
                    "origin_breaker_rejections_total",
                    help="origin calls denied instantly by the open breaker",
                )
                raise OriginUnavailable(
                    "circuit open",
                    breaker_state=self.breaker.state,
                    attempts=attempt,
                    last_status=last_status,
                )
            attempt_started = self._clock()
            try:
                response = self._fetch(request, now)
            except OriginUnavailable:
                raise
            except Exception as exc:
                self.breaker.record_failure()
                last_status, last_error = None, exc
                outcome = "error"
            else:
                if self._is_failure(response):
                    self.breaker.record_failure()
                    last_status, last_error = response.status, None
                    outcome = "failure"
                else:
                    self.breaker.record_success()
                    outcome = "success"
            self.metrics.observe(
                "origin_attempt_seconds",
                self._clock() - attempt_started,
                {"outcome": outcome},
                help="wall-clock of each origin fetch attempt",
            )
            if outcome == "success":
                return response
            attempt += 1
            if attempt > config.retries:
                with self._lock:
                    self.stats.exhausted += 1
                self.metrics.inc(
                    "origin_exhausted_total",
                    labels={"reason": "retries"},
                    help="origin requests that burned their whole budget",
                )
                raise OriginUnavailable(
                    "retries exhausted",
                    breaker_state=self.breaker.state,
                    attempts=attempt,
                    last_status=last_status,
                ) from last_error
            pause = self._pause(attempt - 1)
            if self._clock() + pause >= deadline:
                with self._lock:
                    self.stats.deadline_exhausted += 1
                self.metrics.inc(
                    "origin_exhausted_total",
                    labels={"reason": "deadline"},
                    help="origin requests that burned their whole budget",
                )
                raise OriginUnavailable(
                    "deadline budget exhausted",
                    breaker_state=self.breaker.state,
                    attempts=attempt,
                    last_status=last_status,
                ) from last_error
            with self._lock:
                self.stats.retries += 1
                self.stats.backoff_seconds += pause
            self.metrics.inc(
                "origin_retries_total", help="origin fetch retry attempts"
            )
            self.metrics.observe(
                "origin_backoff_seconds",
                pause,
                help="backoff pauses between origin retry attempts",
            )
            self._sleep(pause)

    def snapshot(self) -> dict:
        """Policy + breaker counters for health reporting."""
        with self._lock:
            stats = {
                "calls": self.stats.calls,
                "retries": self.stats.retries,
                "backoff_seconds": round(self.stats.backoff_seconds, 6),
                "fast_fails": self.stats.fast_fails,
                "exhausted": self.stats.exhausted,
                "deadline_exhausted": self.stats.deadline_exhausted,
            }
        return {"policy": stats, "breaker": self.breaker.snapshot()}
