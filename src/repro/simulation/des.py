"""Discrete-event simulation of a web-server under load (Section VI-C).

The analytic model in :mod:`repro.simulation.capacity` answers "what is
the capacity?"; this DES answers "what actually happens at a given offered
load?" — queueing, connection-slot exhaustion, rejected connections, and
latency percentiles, which is how the paper's testbed numbers (175-180
req/s plain vs ~130 req/s with the delta-server, 255 vs 500+ concurrent
connections) were observed.

Model: requests arrive as a Poisson process.  A request needs

1. a **connection slot** (rejected outright if all ``max_connections`` are
   busy — Apache 1.3's hard limit);
2. **CPU service** on a single processor, FIFO (rendering, and delta
   generation when delta-encoding);
3. a **transfer hold**: the connection stays occupied while the response
   trickles to the client over its access link; no CPU is used.

Events are processed on a heap; everything is seeded and deterministic.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Callable

from repro.network.link import LinkSpec
from repro.network.tcp import transfer_time


@dataclass(frozen=True, slots=True)
class ServerSpec:
    """Resources of the simulated server."""

    cpu_ms_per_request: float
    max_connections: int = 255

    def __post_init__(self) -> None:
        if self.cpu_ms_per_request <= 0:
            raise ValueError("cpu_ms_per_request must be > 0")
        if self.max_connections < 1:
            raise ValueError("max_connections must be >= 1")


@dataclass(slots=True)
class DESResult:
    """Aggregates from one simulated run."""

    offered_rps: float
    duration: float
    arrived: int = 0
    rejected: int = 0
    completed: int = 0
    cpu_busy: float = 0.0
    #: time-weighted connection occupancy integral
    _conn_integral: float = 0.0
    peak_concurrency: int = 0
    latencies: list[float] = field(default_factory=list)

    @property
    def achieved_rps(self) -> float:
        return self.completed / self.duration if self.duration else 0.0

    @property
    def rejection_rate(self) -> float:
        return self.rejected / self.arrived if self.arrived else 0.0

    @property
    def cpu_utilization(self) -> float:
        return self.cpu_busy / self.duration if self.duration else 0.0

    @property
    def mean_concurrency(self) -> float:
        return self._conn_integral / self.duration if self.duration else 0.0

    @property
    def mean_latency(self) -> float:
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0.0

    def latency_percentile(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        rank = min(int(len(ordered) * q / 100), len(ordered) - 1)
        return ordered[rank]


_ARRIVAL = 0
_CPU_DONE = 1
_TRANSFER_DONE = 2


def simulate_server(
    offered_rps: float,
    duration: float,
    server: ServerSpec,
    response_bytes: Callable[[random.Random], int],
    client_link: LinkSpec,
    seed: int = 42,
) -> DESResult:
    """Run the DES for ``duration`` simulated seconds at ``offered_rps``.

    ``response_bytes`` draws the response size per request (pass
    ``lambda rng: 3000`` for a constant).
    """
    if offered_rps <= 0 or duration <= 0:
        raise ValueError("offered_rps and duration must be > 0")
    rng = random.Random(seed)
    result = DESResult(offered_rps=offered_rps, duration=duration)

    events: list[tuple[float, int, int, float]] = []  # (time, kind, id, aux)
    seq = 0

    def push(time: float, kind: int, ident: int, aux: float = 0.0) -> None:
        heapq.heappush(events, (time, kind, ident, aux))

    # request state
    arrival_time: dict[int, float] = {}

    connections = 0
    cpu_queue: list[int] = []
    cpu_last_start = 0.0
    cpu_idle = True
    last_event_time = 0.0

    push(rng.expovariate(offered_rps), _ARRIVAL, 0)

    def start_cpu(now: float, ident: int) -> None:
        nonlocal cpu_idle, cpu_last_start
        cpu_idle = False
        cpu_last_start = now
        push(now + server.cpu_ms_per_request / 1000.0, _CPU_DONE, ident)

    while events:
        now, kind, ident, aux = heapq.heappop(events)
        if now > duration and kind == _ARRIVAL:
            break
        # integrate connection occupancy
        result._conn_integral += connections * (now - last_event_time)
        last_event_time = now

        if kind == _ARRIVAL:
            seq += 1
            result.arrived += 1
            push(now + rng.expovariate(offered_rps), _ARRIVAL, seq)
            if connections >= server.max_connections:
                result.rejected += 1
            else:
                connections += 1
                result.peak_concurrency = max(result.peak_concurrency, connections)
                arrival_time[ident] = now
                if cpu_idle:
                    start_cpu(now, ident)
                else:
                    cpu_queue.append(ident)
        elif kind == _CPU_DONE:
            result.cpu_busy += now - cpu_last_start
            if cpu_queue:
                start_cpu(now, cpu_queue.pop(0))
            else:
                # mark idle; the nonlocal is updated inside start_cpu otherwise
                cpu_idle = True
            size = response_bytes(rng)
            hold = transfer_time(size, client_link, rng=rng).total
            push(now + hold, _TRANSFER_DONE, ident)
        else:  # _TRANSFER_DONE
            connections -= 1
            result.completed += 1
            started = arrival_time.pop(ident, now)
            result.latencies.append(now - started)

    return result


def sweep_offered_load(
    loads_rps: list[float],
    duration: float,
    server: ServerSpec,
    response_bytes: Callable[[random.Random], int],
    client_link: LinkSpec,
    seed: int = 42,
) -> list[DESResult]:
    """Run the DES across a list of offered loads (the capacity 'knee')."""
    return [
        simulate_server(load, duration, server, response_bytes, client_link, seed)
        for load in loads_rps
    ]
