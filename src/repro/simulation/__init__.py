"""End-to-end architecture simulation (paper Fig. 2 and Section VI-C)."""

from __future__ import annotations

from repro.simulation.capacity import (
    CapacityEstimate,
    CostModel,
    DeltaCostMeasurement,
    compare_plain_vs_delta,
    estimate_capacity,
    measure_delta_cost,
)
from repro.simulation.des import DESResult, ServerSpec, simulate_server, sweep_offered_load
from repro.simulation.engine import Simulation, SimulationConfig, SimulationReport

__all__ = [
    "CapacityEstimate",
    "CostModel",
    "DESResult",
    "DeltaCostMeasurement",
    "ServerSpec",
    "simulate_server",
    "sweep_offered_load",
    "Simulation",
    "SimulationConfig",
    "SimulationReport",
    "compare_plain_vs_delta",
    "estimate_capacity",
    "measure_delta_cost",
]
