"""Server capacity and concurrency model (paper Section VI-C).

The paper measures, on a Pentium III / Apache 1.3.17 testbed:

* plain Apache: 175–180 requests/s, at most 255 concurrent connections;
* Apache + delta-server: ~130 requests/s but **500+** sustainable
  concurrent connections, because delta responses are tiny and release
  connection slots quickly;
* delta generation cost: 6–8 ms for a 50–60 KB base-file.

We reproduce the *structure* of those numbers with a calibrated cost model
(DESIGN.md §1): a single-CPU server where each request costs CPU time
(render, plus delta generation when delta-encoding), and each response
holds a connection slot for its transfer duration on the client link.

* CPU-bound capacity: ``1 / cpu_seconds_per_request``;
* connection-bound capacity (Little's law): ``max_connections /
  mean_connection_hold_seconds``;
* sustainable concurrency at a given arrival rate: ``rate × hold``.

:func:`measure_delta_cost` times *our* differ on paper-sized documents so
the report can show the measured per-delta CPU cost next to the paper's
6–8 ms.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.delta.codec import checksum, encode_delta
from repro.delta.compress import compress
from repro.delta.vdelta import VdeltaEncoder
from repro.network.link import LinkSpec
from repro.network.tcp import transfer_time


@dataclass(frozen=True, slots=True)
class CostModel:
    """Per-request CPU costs, calibrated to the paper's testbed.

    Plain Apache at 175–180 req/s implies ≈ 5.6 ms of CPU per dynamic
    request; the combined system at ~130 req/s implies ≈ 7.7 ms, i.e. the
    delta path adds ≈ 2.1 ms of *CPU* on average (the quoted 6–8 ms
    delta-generation latency includes non-CPU time, and not every response
    is a delta).
    """

    render_ms: float = 5.6
    delta_ms: float = 2.6
    #: fraction of document responses served as deltas at steady state
    delta_fraction: float = 0.8

    def cpu_ms_plain(self) -> float:
        return self.render_ms

    def cpu_ms_delta_system(self) -> float:
        return self.render_ms + self.delta_fraction * self.delta_ms


@dataclass(frozen=True, slots=True)
class CapacityEstimate:
    """Capacity and concurrency figures for one configuration."""

    name: str
    cpu_capacity_rps: float
    connection_capacity_rps: float
    mean_hold_seconds: float
    max_connections: int

    @property
    def capacity_rps(self) -> float:
        """Overall sustainable request rate (the binding constraint)."""
        return min(self.cpu_capacity_rps, self.connection_capacity_rps)

    def concurrency_at(self, rate_rps: float) -> float:
        """Concurrent connections needed to sustain ``rate_rps`` (Little)."""
        return rate_rps * self.mean_hold_seconds

    @property
    def sustainable_concurrency(self) -> float:
        """Concurrency the server actually reaches at its CPU capacity.

        For the delta system this exceeds the plain server's connection
        ceiling — the paper's "500 or more concurrent connections" — only
        because each response is small and the CPU can push many of them.
        """
        return self.cpu_capacity_rps * self.mean_hold_seconds


def estimate_capacity(
    name: str,
    cpu_ms_per_request: float,
    response_bytes: int,
    client_link: LinkSpec,
    max_connections: int = 255,
) -> CapacityEstimate:
    """Capacity of a single-CPU server for a given mean response size."""
    if cpu_ms_per_request <= 0:
        raise ValueError("cpu_ms_per_request must be > 0")
    hold = transfer_time(response_bytes, client_link).total
    return CapacityEstimate(
        name=name,
        cpu_capacity_rps=1000.0 / cpu_ms_per_request,
        connection_capacity_rps=max_connections / hold if hold > 0 else float("inf"),
        mean_hold_seconds=hold,
        max_connections=max_connections,
    )


def compare_plain_vs_delta(
    cost: CostModel,
    document_bytes: int = 55_000,
    delta_bytes: int = 3_000,
    client_link: LinkSpec | None = None,
    max_connections: int = 255,
) -> tuple[CapacityEstimate, CapacityEstimate]:
    """The paper's plain-Apache vs delta-system comparison."""
    from repro.network.link import MODEM_56K

    link = client_link or MODEM_56K
    plain = estimate_capacity(
        "plain web-server",
        cost.cpu_ms_plain(),
        document_bytes,
        link,
        max_connections,
    )
    mean_response = (
        cost.delta_fraction * delta_bytes
        + (1 - cost.delta_fraction) * document_bytes
    )
    delta = estimate_capacity(
        "web-server + delta-server",
        cost.cpu_ms_delta_system(),
        int(mean_response),
        link,
        max_connections,
    )
    return plain, delta


@dataclass(frozen=True, slots=True)
class DeltaCostMeasurement:
    """Measured cost of one delta generation on this machine."""

    base_bytes: int
    document_bytes: int
    delta_bytes: int
    compressed_bytes: int
    encode_ms: float
    compress_ms: float

    @property
    def total_ms(self) -> float:
        return self.encode_ms + self.compress_ms


def measure_delta_cost(
    base: bytes, document: bytes, repetitions: int = 5
) -> DeltaCostMeasurement:
    """Time delta generation the way the paper does (50–60 KB base-files).

    Reuses the base index across repetitions, as the delta-server itself
    does across a class's requests.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    encoder = VdeltaEncoder()
    index = encoder.index(base)
    start = time.perf_counter()
    for _ in range(repetitions):
        result = encoder.encode_with_index(index, document)
    encode_ms = (time.perf_counter() - start) / repetitions * 1000
    wire = encode_delta(result.instructions, len(base), checksum(document))
    start = time.perf_counter()
    for _ in range(repetitions):
        payload = compress(wire)
    compress_ms = (time.perf_counter() - start) / repetitions * 1000
    return DeltaCostMeasurement(
        base_bytes=len(base),
        document_bytes=len(document),
        delta_bytes=len(wire),
        compressed_bytes=len(payload),
        encode_ms=encode_ms,
        compress_ms=compress_ms,
    )
