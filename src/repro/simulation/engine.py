"""End-to-end simulation of the deployment architecture (paper Fig. 2).

Wires clients (one browser per trace user) → optional proxy-cache →
delta-server → origin, replays a trace, and produces the numbers the
paper's evaluation reports: bandwidth (Table II), user latency (Section
VI-A), class/storage scalability (Section VI-B), and a full correctness
check — every reconstructed document is compared byte-for-byte against a
direct origin render, because a delta scheme that corrupts pages saves
bandwidth nobody wants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.client.browser import DeltaClient
from repro.core.config import DeltaServerConfig
from repro.core.delta_server import DeltaServer
from repro.http.cookies import CookieJar
from repro.http.messages import Request
from repro.metrics.collector import BandwidthReport
from repro.network.latency import LatencyTracker
from repro.network.link import MODEM_56K, LinkSpec
from repro.origin.server import OriginServer
from repro.origin.site import SyntheticSite
from repro.proxy.proxy import ProxyCache
from repro.url.rules import RuleBook
from repro.workload.generator import GeneratedWorkload
from repro.workload.trace import Trace


@dataclass(frozen=True, slots=True)
class SimulationConfig:
    """Knobs of one end-to-end replay."""

    delta: DeltaServerConfig = field(default_factory=DeltaServerConfig)
    proxy_enabled: bool = True
    proxy_capacity_bytes: int = 256 * 1024 * 1024
    client_link: LinkSpec = MODEM_56K
    #: verify every reconstructed document against a direct origin render
    verify: bool = True
    #: model latency for direct vs delta transfers
    track_latency: bool = True


@dataclass(slots=True)
class SimulationReport:
    """Everything the paper's evaluation section reports, for one trace."""

    bandwidth: BandwidthReport
    latency_direct: LatencyTracker
    latency_delta: LatencyTracker
    requests: int = 0
    verify_failures: int = 0
    distinct_documents: int = 0
    classes: int = 0
    #: server-side base-file storage under class-based delta-encoding
    class_storage_bytes: int = 0
    #: what classless delta-encoding would store (one base per document)
    classless_storage_bytes: int = 0
    group_rebases: int = 0
    basic_rebases: int = 0
    proxy_hit_rate: float = 0.0
    mean_grouping_tries: float = 0.0

    @property
    def documents_per_class(self) -> float:
        """The paper's 10–100× documents-to-classes compression."""
        return self.distinct_documents / self.classes if self.classes else 0.0

    @property
    def storage_reduction_factor(self) -> float:
        if not self.class_storage_bytes:
            return float("inf")
        return self.classless_storage_bytes / self.class_storage_bytes

    @property
    def latency_improvement(self) -> float:
        """Mean direct latency / mean delta-path latency."""
        if not self.latency_delta.mean:
            return float("inf")
        return self.latency_direct.mean / self.latency_delta.mean


class Simulation:
    """One replayable instance of the Fig. 2 architecture."""

    def __init__(
        self,
        sites: list[SyntheticSite],
        config: SimulationConfig | None = None,
        rulebook: RuleBook | None = None,
    ) -> None:
        self.config = config or SimulationConfig()
        self.origin = OriginServer(sites)
        if rulebook is None:
            rulebook = RuleBook()
            for site in sites:
                rulebook.add_rule(site.spec.name, site.hint_rule_pattern())
        self.server = DeltaServer(self.origin.handle, self.config.delta, rulebook)
        self.proxy = (
            ProxyCache(self.server.handle, self.config.proxy_capacity_bytes)
            if self.config.proxy_enabled
            else None
        )
        self._upstream = self.proxy.handle if self.proxy else self.server.handle
        self._clients: dict[str, DeltaClient] = {}
        self._sites = {site.spec.name: site for site in sites}

    def client_for(self, user: str) -> DeltaClient:
        """The browser instance of trace user ``user`` (created on demand)."""
        client = self._clients.get(user)
        if client is None:
            jar = CookieJar(cookies={"uid": user})
            client = DeltaClient(self._upstream, jar)
            self._clients[user] = client
        return client

    def run(self, workload: GeneratedWorkload | Trace) -> SimulationReport:
        """Replay a trace and report the paper's evaluation quantities."""
        if isinstance(workload, GeneratedWorkload):
            trace = workload.trace
            for user, group in workload.shared_card_groups.items():
                self.origin.register_shared_card(user, group)
        else:
            trace = workload

        report = SimulationReport(
            bandwidth=BandwidthReport(name=trace.name),
            latency_direct=LatencyTracker(self.config.client_link, seed=3),
            latency_delta=LatencyTracker(self.config.client_link, seed=4),
        )
        for record in trace:
            client = self.client_for(record.user)
            before_doc = client.stats.document_bytes
            before_base = client.stats.base_file_bytes
            body = client.get(record.url, record.timestamp)
            report.requests += 1
            if self.config.verify:
                direct = self._direct_render(record.user, record.url, record.timestamp)
                if body != direct:
                    report.verify_failures += 1
            if self.config.track_latency:
                # What the user actually waited for: the document response
                # plus any base-file fetch performed in-line.
                transferred = (
                    client.stats.document_bytes
                    - before_doc
                    + client.stats.base_file_bytes
                    - before_base
                )
                report.latency_delta.record(transferred)
                report.latency_direct.record(len(body))

        self._fill_server_side(report)
        return report

    def _direct_render(self, user: str, url: str, now: float) -> bytes:
        request = Request(url=url, cookies={"uid": user}, client_id=user)
        return self.origin.handle(request, now).body

    def _fill_server_side(self, report: SimulationReport) -> None:
        stats = self.server.stats
        bw = report.bandwidth
        bw.requests = stats.requests
        bw.direct_bytes = stats.direct_bytes
        bw.sent_bytes = stats.sent_bytes
        bw.deltas_served = stats.deltas_served
        bw.full_served = stats.full_served
        bw.base_file_upstream_bytes = stats.base_file_bytes
        bw.base_file_downstream_bytes = sum(
            c.stats.base_file_bytes for c in self._clients.values()
        )

        classes = self.server.grouper.classes
        report.classes = len(classes)
        report.distinct_documents = len(
            {url for cls in classes for url in cls.members}
        )
        report.class_storage_bytes = sum(
            len(cls.raw_base or b"") for cls in classes
        )
        # Classless delta-encoding stores one base-file per document — and
        # per *user* for personalized pages; approximate with the rendered
        # snapshot size per distinct (document, user) pair seen.
        report.classless_storage_bytes = self._classless_storage()
        report.group_rebases = stats.group_rebases
        report.basic_rebases = stats.basic_rebases
        report.mean_grouping_tries = self.server.grouper.stats.mean_tries
        if self.proxy:
            report.proxy_hit_rate = self.proxy.cache.stats.hit_rate

    def _classless_storage(self) -> int:
        """Storage a per-(document, user) base-file scheme would need."""
        total = 0
        for user, client in self._clients.items():
            for url in client.stats.urls_fetched:
                site = self._sites.get(url.split("/")[0])
                if site is None:
                    continue
                total += len(
                    self._direct_render(user, url, 0.0)
                )
        return total
