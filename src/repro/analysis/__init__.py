"""The paper's closed-form analyses, with Monte-Carlo validators."""

from __future__ import annotations

from repro.analysis.basefile_error import (
    SimulationResult,
    expected_candidates,
    normalizing_constant,
    p_error_bound,
    per_eviction_error_bound,
    simulate_best_kept,
)
from repro.analysis.latency_model import (
    bandwidth_to_latency_factor,
    highbw_rounds_ratio,
    modem_latency_ratio,
)
from repro.analysis.privacy_error import (
    decaying_bound,
    exact_decaying,
    exact_iid,
    iid_bound,
    monte_carlo_decaying,
    monte_carlo_iid,
    recommended_n,
)

__all__ = [
    "SimulationResult",
    "bandwidth_to_latency_factor",
    "decaying_bound",
    "exact_decaying",
    "exact_iid",
    "expected_candidates",
    "highbw_rounds_ratio",
    "iid_bound",
    "modem_latency_ratio",
    "monte_carlo_decaying",
    "monte_carlo_iid",
    "normalizing_constant",
    "p_error_bound",
    "per_eviction_error_bound",
    "recommended_n",
    "simulate_best_kept",
]
