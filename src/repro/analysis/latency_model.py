"""Analytic latency-ratio estimates (paper Section VI-A).

The paper converts bandwidth savings into latency savings with two
back-of-envelope arguments, both reproduced here so the benchmark can show
analytic-vs-simulated agreement:

* **high-bandwidth path**: slow-start dominates, RTT rounds scale with
  ``log2`` of the transfer size, so ``L1/L2 ≈ log2(S1/S2) ≈ 5`` for
  30 KB vs 1 KB;
* **56 Kb/s modem**: transmission time dominates and ``L1/L2`` is linear in
  ``S1/S2`` but pulled down by fixed per-transfer costs (setup, queueing,
  losses) to ≈ 10.
"""

from __future__ import annotations

import math


def highbw_rounds_ratio(size_large: int, size_small: int) -> float:
    """``log2(S1/S2)`` — the paper's slow-start rounds argument."""
    if size_small <= 0 or size_large <= 0:
        raise ValueError("sizes must be positive")
    if size_large < size_small:
        raise ValueError("size_large must be >= size_small")
    return max(math.log2(size_large / size_small), 1.0)


def modem_latency_ratio(
    size_large: int,
    size_small: int,
    bandwidth_bps: float = 56_000,
    fixed_overhead: float = 0.3,
) -> float:
    """Transmission-dominated ratio with fixed per-transfer overheads.

    ``L = overhead + 8·S/bw`` for each size; the overhead term (connection
    setup, queueing, typical retransmissions) is what turns the naive
    ``S1/S2 = 30`` into the paper's "around 10".
    """
    if size_small <= 0 or size_large <= 0:
        raise ValueError("sizes must be positive")
    if bandwidth_bps <= 0:
        raise ValueError("bandwidth must be positive")
    latency_large = fixed_overhead + 8 * size_large / bandwidth_bps
    latency_small = fixed_overhead + 8 * size_small / bandwidth_bps
    return latency_large / latency_small


def bandwidth_to_latency_factor(
    size_ratio: float, modem: bool = True
) -> float:
    """Rule-of-thumb latency gain for a given size reduction factor.

    The paper's summary numbers: a ~30× size reduction gives ~10× latency
    for modem users and ~5× for high-bandwidth users.
    """
    if size_ratio < 1:
        raise ValueError("size_ratio must be >= 1")
    if modem:
        return modem_latency_ratio(int(size_ratio * 1024), 1024)
    return highbw_rounds_ratio(int(size_ratio * 1024), 1024)
