"""Error analysis of the randomized base-file algorithm (paper Section IV).

The paper models the chance that the algorithm discards the *best*
base-file candidate.  With ``N = R·p`` candidates and ``K`` stored
documents, assuming the probability that the algorithm mis-ranks two
candidates ``i1 < i2`` is ``c/|i1 - i2|`` with ``c ≈ 1/ln N``, the
probability of ever evicting the best candidate is bounded by::

    P_error <= (N - K) / ((ln N)^(K-1) * (K-1)!)

For the paper's example (R = 10^5, p = 10^-2, K = 10 → N = 1000) the bound
is ≤ 8·10^-11.

Alongside the closed form, :func:`simulate_best_kept` Monte-Carlos the
*actual algorithm* on synthetic document clusters with known pairwise
distances, measuring how often the finally selected base-file is (near-)
optimal — an empirical check the paper's abstract model cannot give.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass


def expected_candidates(requests: int, sample_probability: float) -> float:
    """``N = R·p``: expected number of base-file candidates."""
    if requests < 0:
        raise ValueError(f"requests must be >= 0, got {requests}")
    if not 0 <= sample_probability <= 1:
        raise ValueError(f"sample_probability must be in [0,1], got {sample_probability}")
    return requests * sample_probability


def normalizing_constant(n: int) -> float:
    """``c`` such that ``c · sum_{i=1}^{N-1} 1/i = 1`` (≈ 1/ln N)."""
    if n < 2:
        raise ValueError(f"need n >= 2, got {n}")
    harmonic = sum(1.0 / i for i in range(1, n))
    return 1.0 / harmonic


def p_error_bound(n: int, k: int) -> float:
    """The paper's upper bound on discarding the best candidate.

    ``P_error <= (N-K) / ((ln N)^(K-1) (K-1)!)``
    """
    if k < 2:
        raise ValueError(f"need k >= 2, got {k}")
    if n <= k:
        return 0.0
    return (n - k) / (math.log(n) ** (k - 1) * math.factorial(k - 1))


def per_eviction_error_bound(n: int, k: int) -> float:
    """Per-eviction bound ``c^(K-1)/(K-1)!`` with ``c = 1/ln(N-1)``."""
    if k < 2:
        raise ValueError(f"need k >= 2, got {k}")
    if n <= 2:
        return 1.0
    c = 1.0 / math.log(n - 1)
    return c ** (k - 1) / math.factorial(k - 1)


@dataclass(frozen=True, slots=True)
class SimulationResult:
    """Outcome of a Monte-Carlo run of the real algorithm."""

    trials: int
    best_kept: int
    #: mean ratio of (selected base's total delta) / (optimal base's total
    #: delta) — 1.0 means the choice was as good as the offline optimum.
    mean_quality_ratio: float

    @property
    def best_kept_fraction(self) -> float:
        return self.best_kept / self.trials if self.trials else 0.0


def simulate_best_kept(
    candidates: int = 100,
    capacity: int = 8,
    trials: int = 200,
    cluster_spread: float = 1.0,
    seed: int = 13,
) -> SimulationResult:
    """Monte-Carlo the eviction scheme on synthetic 1-D documents.

    Documents are points on a line drawn from a normal cluster; the "delta"
    between two documents is their distance.  The offline-optimal base is
    the medoid.  Each trial streams the candidates in random order through
    the store-K / evict-worst scheme and checks whether the final selection
    matches (or how close it comes to) the medoid.
    """
    if capacity < 2 or candidates <= capacity:
        raise ValueError("need candidates > capacity >= 2")
    rng = random.Random(seed)
    best_kept = 0
    quality_sum = 0.0
    for _ in range(trials):
        points = [rng.gauss(0.0, cluster_spread) for _ in range(candidates)]
        totals = [sum(abs(p - q) for q in points) for p in points]
        optimal = min(range(candidates), key=totals.__getitem__)

        order = list(range(candidates))
        rng.shuffle(order)
        stored: list[int] = []
        for idx in order:
            stored.append(idx)
            if len(stored) > capacity:
                worst = max(
                    stored,
                    key=lambda i: sum(abs(points[i] - points[j]) for j in stored if j != i),
                )
                stored.remove(worst)
        selected = min(
            stored,
            key=lambda i: sum(abs(points[i] - points[j]) for j in stored if j != i),
        )
        if selected == optimal:
            best_kept += 1
        quality_sum += totals[selected] / totals[optimal] if totals[optimal] else 1.0
    return SimulationResult(
        trials=trials,
        best_kept=best_kept,
        mean_quality_ratio=quality_sum / trials,
    )
