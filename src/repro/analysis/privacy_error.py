"""Privacy analysis of anonymization (paper Section V).

An anonymization error occurs when private information survives into the
anonymized base-file: of the ``N`` documents compared against the base, at
least ``M`` happened to share the same private data.

*i.i.d. model* — each comparison document shares private data with the base
with probability ``p``; then ``X ~ Binomial(N, p)`` and::

    P_error = P(X >= M) <= (N·e/M)^M · p^M

The paper's example: p = 0.01, N = 10, M = 5 → bound 4.7·10^-7, exact
2.4·10^-8.

*Decaying model* — successive sharing events get less likely
(``p_j = p^j``), reflecting that the same secret appearing again and again
is increasingly implausible; then::

    P_error <= (N·e/M)^M · p^(M(M+1)/2)
"""

from __future__ import annotations

import math
import random


def _validate(n: int, m: int, p: float) -> None:
    if n < 1:
        raise ValueError(f"N must be >= 1, got {n}")
    if not 1 <= m <= n:
        raise ValueError(f"M must be in [1, N], got M={m}, N={n}")
    if not 0 <= p <= 1:
        raise ValueError(f"p must be in [0, 1], got {p}")


def exact_iid(n: int, m: int, p: float) -> float:
    """Exact ``P(X >= M)`` for ``X ~ Binomial(N, p)``."""
    _validate(n, m, p)
    return sum(
        math.comb(n, i) * p**i * (1 - p) ** (n - i) for i in range(m, n + 1)
    )


def iid_bound(n: int, m: int, p: float) -> float:
    """The paper's closed-form bound ``(N·e/M)^M · p^M``."""
    _validate(n, m, p)
    return (n * math.e / m) ** m * p**m


def decaying_bound(n: int, m: int, p: float) -> float:
    """Bound under the decaying model: ``(N·e/M)^M · p^(M(M+1)/2)``."""
    _validate(n, m, p)
    return (n * math.e / m) ** m * p ** (m * (m + 1) / 2)


def exact_decaying(n: int, m: int, p: float, trials: int = 0) -> float:
    """``P(X = M)``-style estimate for the decaying model (paper's approx).

    The paper computes ``P(X = M) <= C(N, M) · p · p² ··· p^M`` and argues
    ``P(X > M)`` is negligible; this returns that dominant term.
    """
    _validate(n, m, p)
    product = 1.0
    for j in range(1, m + 1):
        product *= p**j
    return math.comb(n, m) * product


def monte_carlo_iid(
    n: int, m: int, p: float, trials: int = 200_000, seed: int = 5
) -> float:
    """Empirical ``P(X >= M)`` under the i.i.d. model."""
    _validate(n, m, p)
    rng = random.Random(seed)
    errors = 0
    for _ in range(trials):
        shared = sum(1 for _ in range(n) if rng.random() < p)
        if shared >= m:
            errors += 1
    return errors / trials


def monte_carlo_decaying(
    n: int, m: int, p: float, trials: int = 200_000, seed: int = 5
) -> float:
    """Empirical ``P(X >= M)`` when the j-th sharing event has prob ``p^j``.

    Sequential model: the next document shares private data with
    probability ``p^(j+1)`` where ``j`` sharing events have already
    occurred (the paper's decreasing-``p_j`` refinement).
    """
    _validate(n, m, p)
    rng = random.Random(seed)
    errors = 0
    for _ in range(trials):
        shared = 0
        for _ in range(n):
            if rng.random() < p ** (shared + 1):
                shared += 1
        if shared >= m:
            errors += 1
    return errors / trials


def recommended_n(m: int) -> int:
    """The paper's rule of thumb: N at least twice M."""
    if m < 1:
        raise ValueError(f"M must be >= 1, got {m}")
    return 2 * m
