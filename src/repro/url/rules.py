"""Admin-provided regular-expression rules for URL partitioning.

"Depending on the web-site, the administrator describes to the grouping
mechanism how to partition URLs into parts using regular expressions."
(Section III.)

A :class:`HintRule` is a compiled regex with named groups ``hint`` and
(optionally) ``rest``; a :class:`RuleBook` maps server-parts to ordered
rule lists and falls back to the built-in heuristic when no rule matches —
so unconfigured sites still group, just with weaker hints.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.url.parts import URLParts, heuristic_partition, split_server


@dataclass(frozen=True)
class HintRule:
    """One regex rule applied to the part of the URL after the server-part.

    The pattern must define a named group ``hint``; a named group ``rest``
    is optional (defaults to the unmatched tail, else empty).
    """

    pattern: str
    _compiled: re.Pattern[str] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        compiled = re.compile(self.pattern)
        if "hint" not in compiled.groupindex:
            raise ValueError(f"rule pattern must name a 'hint' group: {self.pattern!r}")
        object.__setattr__(self, "_compiled", compiled)

    def apply(self, server: str, remainder: str) -> URLParts | None:
        """Partition ``remainder`` (URL after the server-part), or ``None``."""
        match = self._compiled.match(remainder)
        if match is None:
            return None
        hint = match.group("hint") or ""
        if "rest" in self._compiled.groupindex:
            rest = match.group("rest") or ""
        else:
            rest = remainder[match.end() :]
        return URLParts(server, hint, rest)


class RuleBook:
    """Per-site partitioning rules with heuristic fallback."""

    def __init__(self) -> None:
        self._rules: dict[str, list[HintRule]] = {}

    def add_rule(self, server: str, pattern: str) -> None:
        """Register a rule for ``server``; rules are tried in insertion order."""
        self._rules.setdefault(server, []).append(HintRule(pattern))

    def rules_for(self, server: str) -> list[HintRule]:
        """Rules registered for ``server`` (possibly empty)."""
        return list(self._rules.get(server, []))

    def partition(self, url: str) -> URLParts:
        """Partition ``url`` using the first matching admin rule.

        Falls back to :func:`~repro.url.parts.heuristic_partition` when the
        site has no rules or none match.
        """
        server, remainder = split_server(url)
        for rule in self._rules.get(server, []):
            parts = rule.apply(server, remainder)
            if parts is not None:
                return parts
        return heuristic_partition(url)
