"""URL partitioning substrate (paper Section III, Table I)."""

from __future__ import annotations

from repro.url.parts import URLParts, heuristic_partition, split_server
from repro.url.rules import HintRule, RuleBook

__all__ = [
    "HintRule",
    "RuleBook",
    "URLParts",
    "heuristic_partition",
    "split_server",
]
