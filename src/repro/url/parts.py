"""URL partitioning into server-part, hint-part, and rest.

Section III of the paper partitions every URL in three parts:

* **server-part** — "the string from the beginning of the URL till the
  first slash, as usual";
* **hint-part** — the portion that hints at content similarity ("a
  similarity between two URLs is an indication of a similarity between
  their corresponding contents"); which portion this is depends on how the
  web-site organizes its content;
* **rest** — everything else.

Table I of the paper gives three examples, all of which the default
heuristic below reproduces (see ``tests/url/test_parts.py``)::

    www.foo.com/laptops?id=100        -> hint "laptops",      rest "id=100"
    www.foo.com/?dept=laptops&id=100  -> hint "dept=laptops", rest "id=100"
    www.foo.com/laptops/100           -> hint "laptops",      rest "100"

Site administrators can override the heuristic with regular-expression
rules (:mod:`repro.url.rules`), exactly as the paper prescribes: "the
administrator describes to the grouping mechanism how to partition URLs
into parts using regular expressions".
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class URLParts:
    """A URL split into the three parts the grouping mechanism consumes."""

    server: str
    hint: str
    rest: str

    @property
    def key(self) -> tuple[str, str]:
        """(server, hint) pair — the grouping mechanism's search key."""
        return (self.server, self.hint)


def split_server(url: str) -> tuple[str, str]:
    """Split off the server-part; returns ``(server, remainder)``.

    Accepts bare (``www.foo.com/x``) and scheme-prefixed
    (``http://www.foo.com/x``) URLs; the scheme is not part of the
    server-part identity.
    """
    for scheme in ("https://", "http://"):
        if url.startswith(scheme):
            url = url[len(scheme) :]
            break
    server, slash, remainder = url.partition("/")
    if not server:
        raise ValueError(f"URL has no server-part: {url!r}")
    return server, remainder if slash else ""


def heuristic_partition(url: str) -> URLParts:
    """Default partitioning used when a site has no admin-provided rules.

    * If the path has segments, the first segment is the hint and the
      remaining segments plus the query string are the rest.
    * If the path is empty but there is a query string, the first
      ``key=value`` pair is the hint and the remaining pairs are the rest
      (the ``?dept=laptops&id=100`` style of Table I).
    """
    server, remainder = split_server(url)
    path, question, query = remainder.partition("?")
    segments = [s for s in path.split("/") if s]
    if segments:
        hint = segments[0]
        rest_bits = ["/".join(segments[1:])] if len(segments) > 1 else []
        if query:
            rest_bits.append(query)
        return URLParts(server, hint, "&".join(bit for bit in rest_bits if bit))
    if query:
        first, amp, others = query.partition("&")
        return URLParts(server, first, others)
    return URLParts(server, "", "")
