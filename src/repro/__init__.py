"""repro — Class-Based Delta-Encoding (ICDCS 2002) reproduction.

A from-scratch Python implementation of Psounis, *"Class-based
Delta-encoding: A Scalable Scheme for Caching Dynamic Web Content"*:
a delta-server that renders dynamic web traffic cachable by grouping
documents into classes, keeping one shared base-file per class, and
answering requests with compressed deltas.

Typical use::

    from repro import Simulation, SimulationConfig
    from repro.origin import SiteSpec, SyntheticSite
    from repro.workload import WorkloadSpec, generate_workload

    site = SyntheticSite(SiteSpec(name="www.shop.example"))
    workload = generate_workload([site], WorkloadSpec(name="demo", requests=500))
    report = Simulation([site]).run(workload)
    print(f"bandwidth savings: {report.bandwidth.savings:.1%}")

Subpackages: :mod:`repro.core` (the paper's contribution),
:mod:`repro.delta`, :mod:`repro.url`, :mod:`repro.http`,
:mod:`repro.origin`, :mod:`repro.client`, :mod:`repro.proxy`,
:mod:`repro.network`, :mod:`repro.workload`, :mod:`repro.analysis`,
:mod:`repro.metrics`, :mod:`repro.simulation`, :mod:`repro.serve`
(the engine behind real asyncio sockets).
"""

from __future__ import annotations

from repro.core import (
    AnonymizationConfig,
    Anonymizer,
    BaseFileConfig,
    DeltaServer,
    DeltaServerConfig,
    EvictionVariant,
    GroupingConfig,
)
from repro.delta import apply_delta, delta_size, make_delta
from repro.simulation import Simulation, SimulationConfig, SimulationReport

__version__ = "1.0.0"

__all__ = [
    "AnonymizationConfig",
    "Anonymizer",
    "BaseFileConfig",
    "DeltaServer",
    "DeltaServerConfig",
    "EvictionVariant",
    "GroupingConfig",
    "Simulation",
    "SimulationConfig",
    "SimulationReport",
    "apply_delta",
    "delta_size",
    "make_delta",
    "__version__",
]
