"""Simulated origin web-servers and synthetic dynamic content.

Stands in for the paper's three commercial web-sites (whose traces and URLs
are withheld for privacy); see DESIGN.md §1 for the substitution rationale.
"""

from __future__ import annotations

from repro.origin.private import (
    PrivateProfile,
    card_number_for,
    find_card_numbers,
    profile_for,
    shared_card_number,
)
from repro.origin.server import OriginServer, OriginStats
from repro.origin.site import PageKey, SiteSpec, SyntheticSite, UrlStyle
from repro.origin.text import rng_for, stable_seed

__all__ = [
    "OriginServer",
    "OriginStats",
    "PageKey",
    "PrivateProfile",
    "SiteSpec",
    "SyntheticSite",
    "UrlStyle",
    "card_number_for",
    "find_card_numbers",
    "profile_for",
    "rng_for",
    "shared_card_number",
    "stable_seed",
]
