"""Synthetic dynamic web-site: the content the delta-server accelerates.

A :class:`SyntheticSite` deterministically renders product pages assembled
from the blocks in :mod:`repro.origin.templates`.  It stands in for the
paper's (withheld) commercial sites; :class:`SiteSpec` exposes the knobs
that control how much temporal and spatial redundancy exists for the scheme
to exploit.

The three ``url_style`` values reproduce Table I's three site organizations
exactly, including the admin regex rules each style needs.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.origin import templates
from repro.origin.private import PrivateProfile
from repro.origin.text import rng_for
from repro.url.parts import split_server


class UrlStyle(enum.Enum):
    """The three URL organizations of paper Table I."""

    PATH_QUERY = "path_query"  # www.foo.com/laptops?id=100
    QUERY_ONLY = "query_only"  # www.foo.com/?dept=laptops&id=100
    PATH_ONLY = "path_only"  # www.foo.com/laptops/100


@dataclass(frozen=True, slots=True)
class SiteSpec:
    """Configuration of one synthetic site.

    Byte sizes are approximate targets per block; defaults give ~35 KB
    documents, inside the 30–50 KB band the paper reports for documents
    that benefit from delta-encoding (Section VI-A).
    """

    name: str
    url_style: UrlStyle = UrlStyle.PATH_QUERY
    categories: tuple[str, ...] = ("laptops", "desktops", "tablets", "phones")
    products_per_category: int = 50
    header_bytes: int = 4000
    skeleton_bytes: int = 16000
    detail_bytes: int = 9000
    dynamic_bytes: int = 3000
    personal_bytes: int = 1200
    epoch_seconds: float = 60.0
    #: how often product-detail content is revised wholesale (catalog
    #: edits); infinite = never (the default)
    detail_revision_seconds: float = math.inf
    personalized: bool = True
    private_page_fraction: float = 0.6

    def __post_init__(self) -> None:
        if not self.categories:
            raise ValueError("site needs at least one category")
        if self.products_per_category < 1:
            raise ValueError("products_per_category must be >= 1")


@dataclass(frozen=True, slots=True)
class PageKey:
    """Identity of one dynamic document (a product page)."""

    category: str
    product_id: int


class SyntheticSite:
    """Deterministic renderer for one synthetic dynamic site."""

    def __init__(self, spec: SiteSpec) -> None:
        self.spec = spec
        # Stable blocks are render-invariant; build them once.
        self._header = templates.site_header(spec.name, spec.header_bytes)
        self._footer = templates.footer(spec.name)
        self._skeletons = {
            cat: templates.category_skeleton(spec.name, cat, spec.skeleton_bytes)
            for cat in spec.categories
        }

    # -- URL handling ------------------------------------------------------

    def url_for(self, page: PageKey) -> str:
        """Render the page's URL in this site's style."""
        style = self.spec.url_style
        if style is UrlStyle.PATH_QUERY:
            return f"{self.spec.name}/{page.category}?id={page.product_id}"
        if style is UrlStyle.QUERY_ONLY:
            return f"{self.spec.name}/?dept={page.category}&id={page.product_id}"
        return f"{self.spec.name}/{page.category}/{page.product_id}"

    def parse_url(self, url: str) -> PageKey:
        """Inverse of :meth:`url_for`; raises ``ValueError`` on foreign URLs."""
        server, remainder = split_server(url)
        if server != self.spec.name:
            raise ValueError(f"URL {url!r} does not belong to site {self.spec.name}")
        style = self.spec.url_style
        path, _, query = remainder.partition("?")
        path = path.strip("/")
        if style is UrlStyle.PATH_QUERY:
            category = path
            product = _query_param(query, "id")
        elif style is UrlStyle.QUERY_ONLY:
            category = _query_param(query, "dept")
            product = _query_param(query, "id")
        else:
            category, _, product = path.partition("/")
        if category not in self.spec.categories:
            raise ValueError(f"unknown category {category!r} in {url!r}")
        page = PageKey(category, int(product))
        if not 0 <= page.product_id < self.spec.products_per_category:
            raise ValueError(f"product id out of range in {url!r}")
        return page

    def hint_rule_pattern(self) -> str:
        """Admin regex (Section III) partitioning this site's URLs.

        The pattern is applied to the URL after the server-part and names
        ``hint`` and ``rest`` groups, mirroring Table I.
        """
        style = self.spec.url_style
        if style is UrlStyle.PATH_QUERY:
            return r"(?P<hint>[^/?]+)\?(?P<rest>.*)"
        if style is UrlStyle.QUERY_ONLY:
            return r"\?(?P<hint>dept=[^&]+)&(?P<rest>.*)"
        return r"(?P<hint>[^/?]+)/(?P<rest>.*)"

    def all_pages(self) -> list[PageKey]:
        """Every document the site can serve, in deterministic order."""
        return [
            PageKey(cat, pid)
            for cat in self.spec.categories
            for pid in range(self.spec.products_per_category)
        ]

    # -- Rendering ---------------------------------------------------------

    def epoch_at(self, now: float) -> int:
        """Logical epoch driving the volatile fragments at time ``now``."""
        return int(now // self.spec.epoch_seconds)

    def page_has_private_box(self, page: PageKey) -> bool:
        """Whether this page type displays the account box when logged in.

        Deterministic per page so the same URL always behaves the same —
        checkout-like pages show the card, plain catalog pages don't.
        """
        rng = rng_for("private-page", self.spec.name, page.category, page.product_id)
        return rng.random() < self.spec.private_page_fraction

    def render(
        self,
        page: PageKey,
        now: float,
        user_id: str | None = None,
        profile: PrivateProfile | None = None,
        use_shared_card: bool = False,
    ) -> bytes:
        """Render the current snapshot of ``page`` at time ``now``.

        ``user_id`` enables personalization; ``profile`` additionally embeds
        the user's private data on pages that display the account box.
        """
        spec = self.spec
        epoch = self.epoch_at(now)
        revision = (
            0
            if math.isinf(spec.detail_revision_seconds)
            else int(now // spec.detail_revision_seconds)
        )
        blocks = [
            self._header,
            self._skeletons[page.category],
            templates.product_detail(
                spec.name, page.category, page.product_id, spec.detail_bytes,
                revision=revision,
            ),
            templates.dynamic_fragments(
                spec.name, page.category, page.product_id, epoch, spec.dynamic_bytes
            ),
        ]
        if user_id is not None and spec.personalized:
            blocks.append(
                templates.personal_block(spec.name, user_id, epoch, spec.personal_bytes)
            )
            if profile is not None and self.page_has_private_box(page):
                blocks.append(templates.private_block(profile, use_shared_card))
        blocks.append(self._footer)
        return templates.assemble(blocks)


def _query_param(query: str, key: str) -> str:
    """Extract one ``key=value`` pair from a query string."""
    for pair in query.split("&"):
        name, _, value = pair.partition("=")
        if name == key and value:
            return value
    raise ValueError(f"missing query parameter {key!r} in {query!r}")
