"""Deterministic filler-text generation for synthetic documents.

Every piece of content in a synthetic site is derived from a seeded RNG so
that traces are reproducible bit-for-bit, and so that two renders of the
same (site, category, product, epoch, user) tuple are identical — the
temporal-correlation property that delta-encoding exploits.
"""

from __future__ import annotations

import hashlib
import random

# A compact vocabulary; realistic enough that DEFLATE behaves like it does
# on English/HTML, small enough to keep generation fast.
_WORDS = (
    "the quick premium digital portable wireless compact advanced standard "
    "professional lightweight durable ergonomic powerful efficient sleek "
    "modern classic reliable performance battery display keyboard screen "
    "memory storage processor graphics design warranty shipping customer "
    "review rating feature specification model series edition bundle offer "
    "discount price quality service support technology hardware software "
    "system network security media audio video camera sensor adapter cable "
    "charger dock stand cover case accessory upgrade option package deal"
).split()

_SENTENCE_LENGTHS = (6, 8, 9, 11, 13)


def stable_seed(*parts: object) -> int:
    """Deterministic 64-bit seed derived from arbitrary identifying parts.

    Uses blake2b rather than ``hash()`` so results are stable across
    processes (``PYTHONHASHSEED`` does not leak into traces).
    """
    digest = hashlib.blake2b(
        "\x1f".join(str(p) for p in parts).encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def rng_for(*parts: object) -> random.Random:
    """A ``random.Random`` seeded from :func:`stable_seed`."""
    return random.Random(stable_seed(*parts))


def sentence(rng: random.Random) -> str:
    """One sentence of filler prose."""
    count = rng.choice(_SENTENCE_LENGTHS)
    words = [rng.choice(_WORDS) for _ in range(count)]
    words[0] = words[0].capitalize()
    return " ".join(words) + "."


def paragraph(rng: random.Random, approx_bytes: int) -> str:
    """Roughly ``approx_bytes`` of prose (never empty)."""
    parts: list[str] = []
    size = 0
    while size < approx_bytes:
        text = sentence(rng)
        parts.append(text)
        size += len(text) + 1
    return " ".join(parts)


def word(rng: random.Random) -> str:
    """A single filler word."""
    return rng.choice(_WORDS)
