"""HTML block templates for synthetic dynamic documents.

A rendered page is a concatenation of blocks with very different sharing
and volatility characteristics — this structure is what gives the paper's
scheme something to exploit:

===================  =========================  ============================
Block                Shared across              Changes over time
===================  =========================  ============================
site header / nav    every page of the site     never
category skeleton    every product in category  never
product detail       every render of a product  never
dynamic fragments    nothing                    per *epoch* (stock, ads, …)
personal block       nothing (per user)         slowly
private block        nothing (per user)         never (card on file)
footer               every page of the site     never
===================  =========================  ============================

*Temporal* correlation (same URL, later snapshot) comes from everything but
the dynamic fragments being stable.  *Spatial* correlation (different
products, same category) comes from the header, skeleton, and footer.  The
class-based scheme's bet — one base-file per category-like class is almost
as good as one per document — is exactly the bet that the skeleton
dominates the detail, which the sizes in :class:`~repro.origin.site.SiteSpec`
make tunable.
"""

from __future__ import annotations

import functools

from repro.origin.private import PrivateProfile
from repro.origin.text import paragraph, rng_for, word


def site_header(site_name: str, approx_bytes: int) -> str:
    """Site-wide banner and navigation, identical on every page."""
    rng = rng_for("header", site_name)
    nav_items = "".join(
        f'<li><a href="/{word(rng)}">{word(rng).title()}</a></li>' for _ in range(12)
    )
    blurb = paragraph(rng, max(approx_bytes - 400, 80))
    return (
        f"<header><h1>{site_name}</h1>"
        f"<nav><ul>{nav_items}</ul></nav>"
        f"<div class='banner'>{blurb}</div></header>"
    )


def category_skeleton(site_name: str, category: str, approx_bytes: int) -> str:
    """Category-level layout shared by every product page in the category."""
    rng = rng_for("skeleton", site_name, category)
    sidebar = "".join(
        f'<li><a href="/{category}/{word(rng)}">{word(rng).title()} '
        f"{word(rng)}</a></li>"
        for _ in range(20)
    )
    blurb = paragraph(rng, max(approx_bytes - 1200, 80))
    promos = "".join(
        f"<div class='promo'>{paragraph(rng, 120)}</div>" for _ in range(4)
    )
    return (
        f"<section class='category' data-cat='{category}'>"
        f"<h2>{category.title()}</h2>"
        f"<aside><ul>{sidebar}</ul></aside>"
        f"<div class='blurb'>{blurb}</div>{promos}</section>"
    )


@functools.lru_cache(maxsize=4096)
def product_detail(
    site_name: str, category: str, product_id: int, approx_bytes: int,
    revision: int = 0,
) -> str:
    """Product-specific content (name, specs, description).

    Stable within a *revision*; sites that edit their catalog over time
    (``SiteSpec.detail_revision_seconds``) bump the revision, replacing the
    block wholesale — the slow structural drift that defeats fixed
    template-splitting schemes but only costs delta-encoding a rebase.
    """
    rng = rng_for("product", site_name, category, product_id, revision)
    name = f"{word(rng).title()} {word(rng).title()} {product_id}"
    specs = "".join(
        f"<tr><td>{word(rng)}</td><td>{word(rng)} {rng.randint(1, 64)}</td></tr>"
        for _ in range(10)
    )
    description = paragraph(rng, max(approx_bytes - 800, 80))
    return (
        f"<article class='product' data-id='{product_id}'>"
        f"<h3>{name}</h3><table>{specs}</table>"
        f"<p>{description}</p></article>"
    )


@functools.lru_cache(maxsize=8192)
def dynamic_fragments(
    site_name: str,
    category: str,
    product_id: int,
    epoch: int,
    approx_bytes: int,
    fragments: int = 4,
) -> str:
    """Per-epoch volatile content: stock levels, prices, rotating ads.

    Fragment *i* re-randomizes every ``i + 1`` epochs, so consecutive
    snapshots of a page differ gradually rather than all-at-once — matching
    how real dynamic pages churn and giving deltas a realistic size
    distribution instead of a step function.
    """
    per_fragment = max(approx_bytes // fragments, 40)
    parts: list[str] = []
    for i in range(fragments):
        fragment_epoch = epoch // (i + 1)
        rng = rng_for("dyn", site_name, category, product_id, i, fragment_epoch)
        parts.append(
            f"<div class='dyn' data-slot='{i}'>"
            f"<span class='stock'>{rng.randint(0, 500)} in stock</span>"
            f"<span class='price'>${rng.randint(50, 3000)}.{rng.randint(0, 99):02d}</span>"
            f"<p>{paragraph(rng, per_fragment - 80)}</p></div>"
        )
    return "".join(parts)


@functools.lru_cache(maxsize=8192)
def personal_block(
    site_name: str, user_id: str, epoch: int, approx_bytes: int
) -> str:
    """Per-user personalization: greeting and recommendations.

    Recommendations reshuffle slowly (every 8 epochs) — personalization is
    stickier than stock tickers but not static.
    """
    rng = rng_for("personal", site_name, user_id, epoch // 8)
    name_rng = rng_for("username", user_id)
    display_name = f"{word(name_rng).title()} {word(name_rng).title()}"
    recs = "".join(
        f"<li>{word(rng).title()} {word(rng)} — ${rng.randint(20, 900)}</li>"
        for _ in range(6)
    )
    filler = paragraph(rng, max(approx_bytes - 400, 40))
    return (
        f"<div class='personal' data-uid='{user_id}'>"
        f"<p>Welcome back, {display_name}!</p>"
        f"<ul class='recs'>{recs}</ul><p>{filler}</p></div>"
    )


def private_block(profile: PrivateProfile, use_shared_card: bool) -> str:
    """Account box containing the user's card on file — the data that must
    never survive into a shared base-file (paper Section V)."""
    card = (
        profile.shared_card
        if use_shared_card and profile.shared_card
        else profile.card
    )
    return (
        f"<div class='account'><p>Account: {profile.user_id}</p>"
        f"<p>Card on file: {card}</p>"
        f"<p>One-click checkout enabled.</p></div>"
    )


def footer(site_name: str) -> str:
    """Site-wide footer, identical on every page."""
    rng = rng_for("footer", site_name)
    links = " | ".join(f"<a href='/{word(rng)}'>{word(rng)}</a>" for _ in range(6))
    return f"<footer>{links}<p>© {site_name}</p></footer>"


def assemble(blocks: list[str]) -> bytes:
    """Wrap blocks into a complete HTML document."""
    body = "\n".join(blocks)
    return f"<!DOCTYPE html>\n<html><body>\n{body}\n</body></html>".encode()
