"""Private-information model: the data anonymization must keep out of
shared base-files.

Section V's motivating example is a credit-card number appearing in a
rendered page (order confirmation, account box).  We generate
deterministic, user-specific private tokens and provide a detector so
tests and benchmarks can assert — not eyeball — that no private token of
any user survives in an anonymized base-file.

The module also models the paper's *shared corporate card* concern: a
private token deliberately shared by a small set of users, which defeats
M=1 anonymization but not M>1.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.origin.text import rng_for

# Luhn-less 16-digit "card numbers" in 4-4-4-4 form, visually distinct from
# filler text so coverage analysis is unambiguous.
_CARD_RE = re.compile(rb"\b\d{4}-\d{4}-\d{4}-\d{4}\b")


def card_number_for(user_id: str, salt: str = "") -> str:
    """Deterministic 16-digit card-like token for ``user_id``."""
    rng = rng_for("card", user_id, salt)
    groups = ["".join(str(rng.randrange(10)) for _ in range(4)) for _ in range(4)]
    return "-".join(groups)


def shared_card_number(group: str) -> str:
    """A corporate card shared by every member of ``group``."""
    return card_number_for(f"corp:{group}", salt="shared")


def find_card_numbers(document: bytes) -> set[bytes]:
    """All card-like tokens present in ``document``."""
    return set(_CARD_RE.findall(document))


@dataclass(frozen=True, slots=True)
class PrivateProfile:
    """What private data a user's rendered pages may contain."""

    user_id: str
    card: str
    shared_group: str | None = None

    @property
    def shared_card(self) -> str | None:
        return shared_card_number(self.shared_group) if self.shared_group else None

    def tokens(self) -> list[str]:
        """Every private token that could appear in this user's pages."""
        toks = [self.card]
        if self.shared_group:
            toks.append(shared_card_number(self.shared_group))
        return toks


def profile_for(user_id: str, shared_group: str | None = None) -> PrivateProfile:
    """Build the private-data profile for a user."""
    return PrivateProfile(
        user_id=user_id, card=card_number_for(user_id), shared_group=shared_group
    )
