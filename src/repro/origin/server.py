"""Simulated origin web-server hosting one or more synthetic sites.

Plays the role of the Apache server in Fig. 2: given a request, it renders
the *current snapshot* of the dynamic document.  The delta-server sits in
front of it and never caches these responses — it diffs them.

Thread-safe: the sharded engine fetches from the origin under no engine
lock, so concurrent ``handle`` calls are the norm.  Rendering itself is
pure (immutable templates, per-call seeded rngs) and runs in parallel;
only the stats counters and the lazy profile registry sit behind an
internal lock.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.http.messages import Request, Response
from repro.origin.private import PrivateProfile, profile_for
from repro.origin.site import PageKey, SyntheticSite
from repro.url.parts import split_server


@dataclass(slots=True)
class OriginStats:
    """Counters for origin-side accounting."""

    requests: int = 0
    bytes_rendered: int = 0
    errors: int = 0


class OriginServer:
    """Serves current document snapshots for a set of synthetic sites."""

    def __init__(self, sites: list[SyntheticSite] | None = None) -> None:
        self._sites: dict[str, SyntheticSite] = {}
        self._profiles: dict[str, PrivateProfile] = {}
        self._shared_groups: dict[str, str] = {}
        self.stats = OriginStats()
        # Guards stats and the lazy profile/shared-group registries; site
        # registration happens at setup time and rendering is pure, so
        # neither needs it.
        self._lock = threading.Lock()
        for site in sites or []:
            self.add_site(site)

    def add_site(self, site: SyntheticSite) -> None:
        """Host another site on this origin."""
        if site.spec.name in self._sites:
            raise ValueError(f"site {site.spec.name!r} already hosted")
        self._sites[site.spec.name] = site

    def site(self, name: str) -> SyntheticSite:
        """The hosted site with server-part ``name``."""
        return self._sites[name]

    @property
    def sites(self) -> list[SyntheticSite]:
        return list(self._sites.values())

    def register_shared_card(self, user_id: str, group: str) -> None:
        """Put ``user_id`` in a corporate-card group (paper Section V).

        Members of a group render the *same* card number on their private
        pages, modelling the shared-corporate-card risk that motivates the
        M > 1 anonymization level.
        """
        with self._lock:
            self._shared_groups[user_id] = group
            self._profiles.pop(user_id, None)  # rebuild with the group attached

    def profile_for(self, user_id: str) -> PrivateProfile:
        """The (lazily created) private-data profile of a user."""
        with self._lock:
            profile = self._profiles.get(user_id)
            if profile is None:
                # Deterministic per user, so building inside the lock keeps
                # racing requests for one user on a single profile object.
                profile = profile_for(user_id, self._shared_groups.get(user_id))
                self._profiles[user_id] = profile
            return profile

    def handle(self, request: Request, now: float) -> Response:
        """Render the current snapshot for ``request`` at time ``now``.

        Safe to call from many threads at once; renders run in parallel.
        """
        with self._lock:
            self.stats.requests += 1
        try:
            server, _ = split_server(request.url)
            site = self._sites[server]
            page = site.parse_url(request.url)
        except (KeyError, ValueError):
            with self._lock:
                self.stats.errors += 1
            return Response(status=404, body=b"not found")
        body = self._render(site, page, request, now)
        with self._lock:
            self.stats.bytes_rendered += len(body)
        return Response(status=200, body=body)

    def _render(
        self, site: SyntheticSite, page: PageKey, request: Request, now: float
    ) -> bytes:
        user_id = request.user_id
        if user_id is None:
            return site.render(page, now)
        profile = self.profile_for(user_id)
        return site.render(
            page,
            now,
            user_id=user_id,
            profile=profile,
            use_shared_card=profile.shared_group is not None,
        )
