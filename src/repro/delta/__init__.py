"""Delta-encoding substrate: Vdelta-style differ, wire codec, compression.

Quick use::

    from repro.delta import make_delta, apply_delta

    delta = make_delta(base, target)        # compact wire bytes
    assert apply_delta(delta, base) == target

The substrate exposes three cost/precision tiers used by the class-based
layer above it:

* :class:`VdeltaEncoder` — the full differ (4-byte chunks, forward and
  backward match extension) used to produce deltas sent to clients;
* :class:`LightEstimator` — the paper's "light version" (larger chunks,
  forward-only) used to *estimate* closeness during grouping;
* :func:`delta_size` — wire-size of a full diff without serializing, used
  by the base-file selection algorithm which only compares sizes.
"""

from __future__ import annotations

from repro.delta.apply import apply_delta, replay
from repro.delta.codec import (
    DEFAULT_MAX_TARGET_LENGTH,
    checksum,
    decode_delta,
    encode_delta,
    encoded_size,
)
from repro.delta.compress import compress, compressed_size, decompress
from repro.delta.errors import BaseMismatchError, CorruptDeltaError, DeltaError
from repro.delta.instructions import (
    Add,
    Copy,
    Instruction,
    Run,
    added_bytes,
    base_coverage,
    copied_bytes,
    optimize_runs,
    target_length,
)
from repro.delta.light import LightEstimator
from repro.delta.vdelta import BaseIndex, EncodeResult, MatchStats, VdeltaEncoder

_DEFAULT_ENCODER = VdeltaEncoder()


def diff(base: bytes, target: bytes, encoder: VdeltaEncoder | None = None) -> EncodeResult:
    """Diff ``target`` against ``base`` with the full Vdelta-style encoder."""
    return (encoder or _DEFAULT_ENCODER).encode(base, target)


def make_delta(
    base: bytes, target: bytes, encoder: VdeltaEncoder | None = None
) -> bytes:
    """Produce serialized (uncompressed) delta wire bytes."""
    encoder = encoder or _DEFAULT_ENCODER
    return bytes(encoder.encode_wire_with_index(encoder.index(base), target))


def delta_size(
    base: bytes, target: bytes, encoder: VdeltaEncoder | None = None
) -> int:
    """Wire size of the delta between ``base`` and ``target``, in bytes."""
    encoder = encoder or _DEFAULT_ENCODER
    return len(encoder.encode_wire_with_index(encoder.index(base), target))


__all__ = [
    "Add",
    "BaseIndex",
    "DEFAULT_MAX_TARGET_LENGTH",
    "BaseMismatchError",
    "Copy",
    "CorruptDeltaError",
    "DeltaError",
    "EncodeResult",
    "Instruction",
    "LightEstimator",
    "MatchStats",
    "Run",
    "VdeltaEncoder",
    "added_bytes",
    "apply_delta",
    "base_coverage",
    "checksum",
    "compress",
    "compressed_size",
    "copied_bytes",
    "decode_delta",
    "decompress",
    "delta_size",
    "diff",
    "encode_delta",
    "encoded_size",
    "make_delta",
    "optimize_runs",
    "replay",
    "target_length",
]
