"""Compression of deltas and documents.

The paper compresses deltas with gzip (Table II, footnote 8) and attributes
"a factor of 2 on average" of the total savings to compression.  We use raw
zlib/DEFLATE — the identical algorithm behind gzip, minus the 18-byte file
header, which is irrelevant for size comparisons.
"""

from __future__ import annotations

import zlib

DEFAULT_LEVEL = 6


def compress(data: bytes, level: int = DEFAULT_LEVEL) -> bytes:
    """DEFLATE-compress ``data`` (what the paper calls "gzipping" a delta)."""
    return zlib.compress(data, level)


def decompress(data: bytes) -> bytes:
    """Inverse of :func:`compress`."""
    return zlib.decompress(data)


def compressed_size(data: bytes, level: int = DEFAULT_LEVEL) -> int:
    """Size of ``data`` after compression, in bytes."""
    return len(compress(data, level))
