"""Vdelta-style delta encoder with a zero-copy streaming wire kernel.

The paper (footnote 2 and Section V) describes the differ it builds on:

    "*Vdelta* uses a hash table approach with enough indexes into the
    base-file for fast string matching.  Each index is a position which is
    keyed by the four bytes starting at that position.  Thus, the file is
    partitioned in four-byte-chunks.  Further, in order to identify the
    maximally long matching prefix, the algorithm traverses the file both
    forwards and backwards."

:class:`VdeltaEncoder` reproduces that structure:

* every position of the base-file is indexed in a hash table keyed by the
  ``chunk_size`` (default 4) bytes starting at that position;
* at each target position the encoder probes the table, extends candidate
  matches *forwards* maximally, picks the longest, and then extends the
  chosen match *backwards* into literal bytes it had provisionally queued as
  an ADD — the "traverses the file both forwards and backwards" step;
* unmatched bytes become ADD literals.

The encoder is deliberately greedy and single-pass, like Vdelta, so its cost
is close to linear in the target size for realistic web documents.

Streaming wire kernel
---------------------

The hot path (:meth:`VdeltaEncoder.encode_wire_with_index` /
:meth:`~VdeltaEncoder.encode_stream_with_index`) emits wire bytes directly
into a caller-supplied reusable ``bytearray`` as the greedy scan runs —
no intermediate ``list[Instruction]``, no per-instruction objects, no
separate serialization pass.  The design is allocation-frugal:

* **candidate filtering without copies** — the old kernel sliced
  ``candidates[-max_candidates:]`` (a list copy per probe) and ran a full
  match extension per surviving candidate; the kernel walks the chain tail
  by index and rejects any candidate that cannot *beat* the current best
  with a single ``bytes.startswith(needed, offset)`` call, where ``needed``
  is the shortest prefix a strictly-longer match must have.  ``startswith``
  with an offset compares in place — no slice of the base is materialized.
* **zero-copy match extension** — forward extension compares geometrically
  growing target windows against the base via ``startswith(piece, offset)``
  (the base side is never sliced).  Measured against ``memoryview``-based
  extension (the other obvious zero-copy shape), ``startswith`` won by
  ~2.6x at large windows: CPython's memoryview richcompare is slower than
  ``bytes`` comparisons, so "zero-copy" here means *no base-side slicing*,
  not memoryview wrappers.
* **``bytes`` chunk keys, kept deliberately** — int-keyed chunk hashing
  (``int.from_bytes`` rolling keys) was benchmarked and *lost* to 4-byte
  slice keys (~1.7x slower key production; dict lookup no faster), because
  CPython interns small bytes hashing in C while the rolling-hash arithmetic
  pays Python bytecode per position.  The per-probe allocations the issue
  tracked are gone either way: the probe key is the only slice per position.
* **single-pass emission** — COPY fusion and RUN extraction (the old
  ``coalesce`` + ``optimize_runs`` passes) happen inline at literal-flush
  time, so the wire bytes produced are *identical* to the old
  ``encode_delta(optimize_runs(coalesce(scan)))`` pipeline; the benchmark
  gate asserts byte parity against a frozen snapshot of the old kernel.
* **streaming compression** — :meth:`~VdeltaEncoder.encode_stream_with_index`
  hands the buffer to a ``write`` callback every ``flush_bytes`` (default
  64 KiB) so large documents never materialize their full uncompressed wire
  image; the engine points ``write`` at ``zlib.compressobj.compress``.

The instruction-object API (:meth:`VdeltaEncoder.encode` /
:meth:`~VdeltaEncoder.encode_with_index`) survives for the consumers that
genuinely need instructions — the anonymizer's coverage accounting, the
grouping baselines, tests — and is now decode-backed: it wire-encodes and
parses the result back, which keeps it consistent with the wire path by
construction.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable

from repro.delta.codec import (
    MAGIC,
    OP_ADD,
    OP_COPY,
    OP_RUN,
    decode_delta,
    write_varint,
)
from repro.delta.instructions import MIN_RUN, Copy, Instruction, run_pattern

# Probing every candidate position for a popular 4-byte key (e.g. "<td>")
# would be quadratic on repetitive HTML; Vdelta bounds this with its chain
# layout, we bound it with an explicit cap on candidates per key.
_DEFAULT_MAX_CHAIN = 64

# Stop probing further candidates once a match this long is found: longer
# alternatives save a few wire bytes at most, and probing dominates cost.
_GOOD_ENOUGH_MATCH = 2048

# Streaming flush threshold: large enough that zlib sees meaty chunks,
# small enough that a multi-megabyte document never materializes its full
# uncompressed wire image.
DEFAULT_FLUSH_BYTES = 64 * 1024


@dataclass(frozen=True, slots=True)
class MatchStats:
    """Diagnostics from one encode pass."""

    copies: int
    adds: int
    copied_bytes: int
    added_bytes: int

    @property
    def match_ratio(self) -> float:
        """Fraction of target bytes sourced from the base-file."""
        total = self.copied_bytes + self.added_bytes
        return self.copied_bytes / total if total else 1.0


@dataclass(slots=True)
class EncodeResult:
    """Instruction stream plus statistics for one (base, target) pair."""

    instructions: list[Instruction]
    stats: MatchStats


class BaseIndex:
    """Hash index of a base-file: position lists keyed by byte chunks.

    Built once per base-file and reused across every target diffed against
    it — on the delta-server one base-file serves a whole class of
    documents, so amortizing the index matters.  The kernel reads
    ``table`` directly (one dict ``get`` per target position, no method
    dispatch); ``candidates`` remains for the instruction-level consumers.
    """

    __slots__ = ("base", "chunk_size", "step", "table", "max_chain")

    def __init__(
        self,
        base: bytes,
        chunk_size: int = 4,
        step: int = 1,
        max_chain: int = _DEFAULT_MAX_CHAIN,
    ) -> None:
        if chunk_size < 2:
            raise ValueError(f"chunk_size must be >= 2, got {chunk_size}")
        if step < 1:
            raise ValueError(f"step must be >= 1, got {step}")
        self.base = base
        self.chunk_size = chunk_size
        self.step = step
        self.max_chain = max_chain
        table: dict[bytes, list[int]] = {}
        get = table.get
        for pos in range(0, len(base) - chunk_size + 1, step):
            key = base[pos : pos + chunk_size]
            chain = get(key)
            if chain is None:
                table[key] = [pos]
            elif len(chain) < max_chain:
                chain.append(pos)
        self.table = table

    @property
    def _table(self) -> dict[bytes, list[int]]:
        # Pre-rewrite private name, kept for external pokers.
        return self.table

    def candidates(self, key: bytes) -> list[int]:
        """Base-file positions whose chunk equals ``key`` (possibly empty)."""
        return self.table.get(key, [])

    def __len__(self) -> int:
        return len(self.table)


@dataclass(slots=True)
class VdeltaEncoder:
    """Greedy chunk-hash delta encoder in the style of Vdelta.

    Parameters
    ----------
    chunk_size:
        Bytes per hash key.  Vdelta uses 4; the paper's "light" variant uses
        larger chunks (see :mod:`repro.delta.light`).
    min_match:
        Shortest COPY worth emitting.  A COPY costs a handful of wire bytes,
        so matches shorter than that are cheaper as literals.
    backward:
        Whether to extend matches backwards into queued literals ("traverses
        the file both forwards and backwards").  The light variant disables
        this.
    step:
        Index every ``step``-th base position.  1 indexes every position
        (full Vdelta); the light variant samples.
    max_candidates:
        How many index candidates to try per probe before settling for the
        best found so far; bounds worst-case cost on repetitive input.
    """

    chunk_size: int = 4
    min_match: int = 8
    backward: bool = True
    step: int = 1
    max_candidates: int = 8
    max_chain: int = field(default=_DEFAULT_MAX_CHAIN)

    def __post_init__(self) -> None:
        if self.min_match < self.chunk_size:
            raise ValueError(
                f"min_match ({self.min_match}) must be >= chunk_size "
                f"({self.chunk_size}): shorter matches can never be probed"
            )

    def index(self, base: bytes) -> BaseIndex:
        """Build a reusable hash index for ``base``."""
        return BaseIndex(
            base, chunk_size=self.chunk_size, step=self.step, max_chain=self.max_chain
        )

    # ------------------------------------------------------------------
    # Wire kernel (the hot path)
    # ------------------------------------------------------------------

    def encode_wire_with_index(
        self,
        index: BaseIndex,
        target: bytes,
        target_checksum: int | None = None,
        *,
        out: bytearray | None = None,
    ) -> bytearray:
        """Encode ``target`` against a prebuilt index directly to wire bytes.

        Returns the complete serialized delta (the same bytes
        :func:`repro.delta.codec.encode_delta` would produce for the
        instruction stream) in ``out`` — pass a reused ``bytearray`` to
        avoid reallocating the buffer per encode; it is cleared first.
        """
        if out is None:
            out = bytearray()
        else:
            del out[:]
        if target_checksum is None:
            target_checksum = zlib.adler32(target) & 0xFFFFFFFF
        self._scan_to_wire(index, target, target_checksum, out, None, 0)
        return out

    def encode_stream_with_index(
        self,
        index: BaseIndex,
        target: bytes,
        write: Callable[[bytes], object],
        target_checksum: int | None = None,
        *,
        buffer: bytearray | None = None,
        flush_bytes: int = DEFAULT_FLUSH_BYTES,
    ) -> int:
        """Encode to wire bytes, streaming them through ``write``.

        ``write`` is called with chunks of roughly ``flush_bytes`` as the
        scan proceeds (the engine points it at ``zlib.compressobj.compress``
        so the uncompressed wire image is never materialized whole).  The
        chunk passed to ``write`` is a reused buffer only valid for the
        duration of the call — consume or copy it, do not retain it.
        Returns the total wire size in bytes.
        """
        if buffer is None:
            buffer = bytearray()
        else:
            del buffer[:]
        if target_checksum is None:
            target_checksum = zlib.adler32(target) & 0xFFFFFFFF
        return self._scan_to_wire(
            index, target, target_checksum, buffer, write, flush_bytes
        )

    def _scan_to_wire(
        self,
        index: BaseIndex,
        target: bytes,
        target_checksum: int,
        out: bytearray,
        write: Callable[[bytes], object] | None,
        flush_bytes: int,
    ) -> int:
        """The greedy scan, emitting wire bytes as matches are found.

        Byte-for-byte equivalent to the pre-streaming pipeline
        ``encode_delta(optimize_runs(coalesce(scan)))``: contiguous COPYs
        are fused as they are emitted and RUN extraction happens when a
        pending literal is flushed.  Returns the total wire size.
        """
        if index.chunk_size != self.chunk_size:
            raise ValueError(
                f"index chunk_size {index.chunk_size} != encoder chunk_size "
                f"{self.chunk_size}"
            )
        base = index.base
        table_get = index.table.get
        chunk = self.chunk_size
        min_match = self.min_match
        max_candidates = self.max_candidates
        backward = self.backward
        good_enough = _GOOD_ENOUGH_MATCH
        n = len(target)
        n_base = len(base)
        base_startswith = base.startswith
        append = out.append
        written = 0

        # Header: every field is known up front (target length is just
        # len(target) — the scan always reproduces the whole target), so
        # the kernel is truly single-pass.
        out += MAGIC
        write_varint(n, out)
        write_varint(n_base, out)
        out += target_checksum.to_bytes(4, "big")

        copy_off = 0
        copy_len = 0  # pending COPY awaiting possible fusion
        literal_start = 0  # start of the pending ADD run in the target
        pos = 0

        while pos + chunk <= n:
            cands = table_get(target[pos : pos + chunk])
            if cands is None:
                pos += 1
                continue

            # --- best match among the chain tail (no list copy) --------
            remaining = n - pos
            # `needed` is the shortest prefix a candidate must share to
            # *beat* the best match so far; one startswith call rejects
            # losers without any extension work.  Initially that is the
            # min_match prefix (shorter matches are discarded anyway).
            needed = target[pos : pos + min_match] if remaining >= min_match else target[pos:]
            best_off = -1
            best_len = 0
            j = len(cands)
            stop = j - max_candidates
            if stop < 0:
                stop = 0
            # Recent positions tend to be better for evolving documents;
            # probe from the end of the chain first.
            while j > stop:
                j -= 1
                cand = cands[j]
                if not base_startswith(needed, cand):
                    continue
                # Forward extension: geometric windows compared in place
                # via startswith(piece, offset), bisect inside the first
                # differing window.  Computes the exact common prefix.
                length = len(needed)
                max_len = n_base - cand
                if remaining < max_len:
                    max_len = remaining
                step = 16
                while length < max_len:
                    window = max_len - length
                    if window > step:
                        window = step
                    piece = target[pos + length : pos + length + window]
                    if base_startswith(piece, cand + length):
                        length += window
                        if step < 16384:
                            step *= 4
                        continue
                    lo, hi = 0, window
                    while lo < hi:
                        mid = (lo + hi + 1) // 2
                        if base_startswith(piece[:mid], cand + length):
                            lo = mid
                        else:
                            hi = mid - 1
                    length += lo
                    break
                # Passing the `needed` filter guarantees a strictly longer
                # match than the current best.
                best_len = length
                best_off = cand
                if best_len >= good_enough or best_len >= remaining:
                    break
                needed = target[pos : pos + best_len + 1]
            if best_len < min_match:
                pos += 1
                continue

            # --- backward extension into the pending literal -----------
            if backward:
                b_off = best_off
                p = pos
                while (
                    b_off > 0
                    and p > literal_start
                    and base[b_off - 1] == target[p - 1]
                ):
                    b_off -= 1
                    p -= 1
                best_len += pos - p
                best_off = b_off
                pos = p

            # --- emit ---------------------------------------------------
            if pos > literal_start:
                if copy_len:
                    append(OP_COPY)
                    write_varint(copy_off, out)
                    write_varint(copy_len, out)
                    copy_len = 0
                _emit_literal(target, literal_start, pos, out)
            if copy_len:
                if copy_off + copy_len == best_off:
                    # Contiguous COPYs fuse (what coalesce() used to do).
                    copy_len += best_len
                else:
                    append(OP_COPY)
                    write_varint(copy_off, out)
                    write_varint(copy_len, out)
                    copy_off = best_off
                    copy_len = best_len
            else:
                copy_off = best_off
                copy_len = best_len
            pos += best_len
            literal_start = pos

            if write is not None and len(out) >= flush_bytes:
                written += len(out)
                write(out)
                del out[:]

        # --- tail -------------------------------------------------------
        if copy_len:
            append(OP_COPY)
            write_varint(copy_off, out)
            write_varint(copy_len, out)
        if literal_start < n:
            _emit_literal(target, literal_start, n, out)
        if write is None:
            return len(out)
        written += len(out)
        if out:
            write(out)
            del out[:]
        return written

    # ------------------------------------------------------------------
    # Instruction-object API (decode-backed, for inspecting consumers)
    # ------------------------------------------------------------------

    def encode(self, base: bytes, target: bytes) -> EncodeResult:
        """Diff ``target`` against ``base``; convenience for one-shot use."""
        return self.encode_with_index(self.index(base), target)

    def encode_with_index(self, index: BaseIndex, target: bytes) -> EncodeResult:
        """Diff ``target`` against a prebuilt base index.

        Runs the wire kernel and parses the result back into instruction
        objects — the consumers that need instructions (anonymization
        coverage, grouping baselines, tests) are off the hot path, and
        decode-backing guarantees the two representations can never drift.
        """
        wire = self.encode_wire_with_index(index, target)
        instructions, _, _, _ = decode_delta(bytes(wire), max_target_length=None)
        copies = 0
        copied = 0
        for instr in instructions:
            if type(instr) is Copy:
                copies += 1
                copied += instr.length
        return EncodeResult(
            instructions=instructions,
            stats=MatchStats(
                copies=copies,
                adds=len(instructions) - copies,
                copied_bytes=copied,
                added_bytes=len(target) - copied,
            ),
        )


def _emit_literal(target: bytes, start: int, end: int, out: bytearray) -> None:
    """Emit ``target[start:end]`` as ADD/RUN wire ops (run extraction inline).

    Splits long single-byte stretches out as RUNs exactly like
    :func:`repro.delta.instructions.optimize_runs` did on the old
    instruction stream, preserving byte parity with the old pipeline.
    """
    data = target[start:end]
    seg_start = 0
    n = len(data)
    if n >= MIN_RUN:
        for match in _run_finditer(data):
            i, j = match.span()
            if i > seg_start:
                out.append(OP_ADD)
                write_varint(i - seg_start, out)
                out += data[seg_start:i]
            out.append(OP_RUN)
            out.append(data[i])
            write_varint(j - i, out)
            seg_start = j
    if seg_start < n:
        out.append(OP_ADD)
        write_varint(n - seg_start, out)
        out += data if seg_start == 0 else data[seg_start:]


_run_finditer = run_pattern().finditer
