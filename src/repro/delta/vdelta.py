"""Vdelta-style delta encoder.

The paper (footnote 2 and Section V) describes the differ it builds on:

    "*Vdelta* uses a hash table approach with enough indexes into the
    base-file for fast string matching.  Each index is a position which is
    keyed by the four bytes starting at that position.  Thus, the file is
    partitioned in four-byte-chunks.  Further, in order to identify the
    maximally long matching prefix, the algorithm traverses the file both
    forwards and backwards."

:class:`VdeltaEncoder` reproduces that structure:

* every position of the base-file is indexed in a hash table keyed by the
  ``chunk_size`` (default 4) bytes starting at that position;
* at each target position the encoder probes the table, extends candidate
  matches *forwards* maximally, picks the longest, and then extends the
  chosen match *backwards* into literal bytes it had provisionally queued as
  an ADD — the "traverses the file both forwards and backwards" step;
* unmatched bytes become ADD literals.

The encoder is deliberately greedy and single-pass, like Vdelta, so its cost
is close to linear in the target size for realistic web documents.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.delta.instructions import Add, Copy, Instruction, coalesce, optimize_runs

# Probing every candidate position for a popular 4-byte key (e.g. "<td>")
# would be quadratic on repetitive HTML; Vdelta bounds this with its chain
# layout, we bound it with an explicit cap on candidates per key.
_DEFAULT_MAX_CHAIN = 64

# Stop probing further candidates once a match this long is found: longer
# alternatives save a few wire bytes at most, and probing dominates cost.
_GOOD_ENOUGH_MATCH = 2048


def _extend_match(
    base: bytes, target: bytes, cand: int, pos: int, start: int, max_len: int
) -> int:
    """Length of the common prefix of ``base[cand:]``/``target[pos:]``.

    ``start`` bytes are already known equal.  Compares geometrically growing
    slices (C-speed) and falls back to byte-stepping only inside the first
    differing window — matches on web documents are hundreds of bytes long,
    so per-byte loops dominate encode time otherwise.
    """
    length = start
    step = 16
    while length < max_len:
        window = min(step, max_len - length)
        if (
            base[cand + length : cand + length + window]
            == target[pos + length : pos + length + window]
        ):
            length += window
            step = min(step * 4, 16384)
            continue
        # Mismatch inside this window: bisect for the first differing byte
        # using slice compares (C speed) instead of byte-stepping.
        lo, hi = 0, window
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if (
                base[cand + length : cand + length + mid]
                == target[pos + length : pos + length + mid]
            ):
                lo = mid
            else:
                hi = mid - 1
        length += lo
        break
    return length


@dataclass(frozen=True, slots=True)
class MatchStats:
    """Diagnostics from one encode pass."""

    copies: int
    adds: int
    copied_bytes: int
    added_bytes: int

    @property
    def match_ratio(self) -> float:
        """Fraction of target bytes sourced from the base-file."""
        total = self.copied_bytes + self.added_bytes
        return self.copied_bytes / total if total else 1.0


@dataclass(slots=True)
class EncodeResult:
    """Instruction stream plus statistics for one (base, target) pair."""

    instructions: list[Instruction]
    stats: MatchStats


class BaseIndex:
    """Hash index of a base-file: position lists keyed by byte chunks.

    Built once per base-file and reused across every target diffed against
    it — on the delta-server one base-file serves a whole class of
    documents, so amortizing the index matters.
    """

    __slots__ = ("base", "chunk_size", "step", "_table", "max_chain")

    def __init__(
        self,
        base: bytes,
        chunk_size: int = 4,
        step: int = 1,
        max_chain: int = _DEFAULT_MAX_CHAIN,
    ) -> None:
        if chunk_size < 2:
            raise ValueError(f"chunk_size must be >= 2, got {chunk_size}")
        if step < 1:
            raise ValueError(f"step must be >= 1, got {step}")
        self.base = base
        self.chunk_size = chunk_size
        self.step = step
        self.max_chain = max_chain
        table: dict[bytes, list[int]] = {}
        for pos in range(0, len(base) - chunk_size + 1, step):
            key = base[pos : pos + chunk_size]
            chain = table.setdefault(key, [])
            if len(chain) < max_chain:
                chain.append(pos)
        self._table = table

    def candidates(self, key: bytes) -> list[int]:
        """Base-file positions whose chunk equals ``key`` (possibly empty)."""
        return self._table.get(key, [])

    def __len__(self) -> int:
        return len(self._table)


@dataclass(slots=True)
class VdeltaEncoder:
    """Greedy chunk-hash delta encoder in the style of Vdelta.

    Parameters
    ----------
    chunk_size:
        Bytes per hash key.  Vdelta uses 4; the paper's "light" variant uses
        larger chunks (see :mod:`repro.delta.light`).
    min_match:
        Shortest COPY worth emitting.  A COPY costs a handful of wire bytes,
        so matches shorter than that are cheaper as literals.
    backward:
        Whether to extend matches backwards into queued literals ("traverses
        the file both forwards and backwards").  The light variant disables
        this.
    step:
        Index every ``step``-th base position.  1 indexes every position
        (full Vdelta); the light variant samples.
    max_candidates:
        How many index candidates to try per probe before settling for the
        best found so far; bounds worst-case cost on repetitive input.
    """

    chunk_size: int = 4
    min_match: int = 8
    backward: bool = True
    step: int = 1
    max_candidates: int = 8
    max_chain: int = field(default=_DEFAULT_MAX_CHAIN)

    def __post_init__(self) -> None:
        if self.min_match < self.chunk_size:
            raise ValueError(
                f"min_match ({self.min_match}) must be >= chunk_size "
                f"({self.chunk_size}): shorter matches can never be probed"
            )

    def index(self, base: bytes) -> BaseIndex:
        """Build a reusable hash index for ``base``."""
        return BaseIndex(
            base, chunk_size=self.chunk_size, step=self.step, max_chain=self.max_chain
        )

    def encode(self, base: bytes, target: bytes) -> EncodeResult:
        """Diff ``target`` against ``base``; convenience for one-shot use."""
        return self.encode_with_index(self.index(base), target)

    def encode_with_index(self, index: BaseIndex, target: bytes) -> EncodeResult:
        """Diff ``target`` against a prebuilt base index."""
        if index.chunk_size != self.chunk_size:
            raise ValueError(
                f"index chunk_size {index.chunk_size} != encoder chunk_size "
                f"{self.chunk_size}"
            )
        base = index.base
        chunk = self.chunk_size
        out: list[Instruction] = []
        literal_start = 0  # start of the pending ADD run in the target
        pos = 0
        n = len(target)

        while pos + chunk <= n:
            key = target[pos : pos + chunk]
            candidates = index.candidates(key)
            if not candidates:
                pos += 1
                continue
            best_off, best_len = self._best_match(base, target, pos, candidates)
            if best_len < self.min_match:
                pos += 1
                continue
            # Backward extension: grow the match into bytes currently queued
            # as literals, shrinking the pending ADD.
            if self.backward:
                back = self._extend_backward(
                    base, target, best_off, pos, literal_start
                )
                best_off -= back
                pos -= back
                best_len += back
            if pos > literal_start:
                out.append(Add(target[literal_start:pos]))
            out.append(Copy(best_off, best_len))
            pos += best_len
            literal_start = pos

        if literal_start < n:
            out.append(Add(target[literal_start:]))

        instructions = list(optimize_runs(coalesce(out)))
        copies = sum(1 for i in instructions if isinstance(i, Copy))
        adds = len(instructions) - copies
        copied = sum(i.length for i in instructions if isinstance(i, Copy))
        from repro.delta.instructions import added_bytes as _added

        added = _added(instructions)
        return EncodeResult(
            instructions=instructions,
            stats=MatchStats(
                copies=copies, adds=adds, copied_bytes=copied, added_bytes=added
            ),
        )

    def _best_match(
        self, base: bytes, target: bytes, pos: int, candidates: list[int]
    ) -> tuple[int, int]:
        """Longest forward match at ``target[pos:]`` among index candidates."""
        best_off = -1
        best_len = 0
        n_base = len(base)
        n_target = len(target)
        chunk = self.chunk_size
        # Quick filter: reject candidates with one slice compare over a
        # prefix as long as min_match allows, pruning the popular-key chains
        # that dominate probe cost on HTML.  Matches shorter than min_match
        # are discarded by the caller anyway, so the filter loses nothing.
        probe_len = min(max(chunk, self.min_match), n_target - pos)
        probe = target[pos : pos + probe_len]
        # Recent positions tend to be better for evolving documents; probe
        # from the end of the chain first.
        for cand in reversed(candidates[-self.max_candidates :]):
            if base[cand : cand + probe_len] != probe:
                continue
            max_len = min(n_base - cand, n_target - pos)
            length = _extend_match(base, target, cand, pos, probe_len, max_len)
            if length > best_len:
                best_len = length
                best_off = cand
                if best_len >= _GOOD_ENOUGH_MATCH:
                    break
        return best_off, best_len

    @staticmethod
    def _extend_backward(
        base: bytes, target: bytes, base_off: int, target_pos: int, literal_start: int
    ) -> int:
        """How far the match extends backwards into the pending literal run."""
        back = 0
        while (
            base_off - back > 0
            and target_pos - back > literal_start
            and base[base_off - back - 1] == target[target_pos - back - 1]
        ):
            back += 1
        return back
