"""Binary wire format for delta instruction streams.

A compact varint-based serialization in the spirit of VCDIFF (Korn & Vo,
cited by the paper as [12]).  Layout::

    magic    b"CBD1"
    varint   target_length
    varint   base_length
    uint32   adler32(target)       -- integrity check applied on decode
    repeated instructions:
        0x00  ADD:  varint length, <length> literal bytes
        0x01  COPY: varint offset, varint length

The checksum catches the classic delta-encoding deployment failure: applying
a delta to the wrong base-file version (e.g. a client whose cached base-file
predates a rebase).  :func:`repro.delta.apply.apply_delta` turns a checksum
mismatch into :class:`~repro.delta.errors.BaseMismatchError` so the caller
can fall back to a full-response fetch, as the architecture in Section VI-C
requires.

Decode bounds
-------------

The decoder treats the payload as attacker-controlled (it arrives over the
wire at clients and proxies) and enforces:

* **canonical, 63-bit varints** — a varint must be the shortest encoding of
  its value (no redundant ``0x80 0x00``-style continuations, so
  :func:`varint_size` always agrees with actual wire bytes) and must stay
  below ``2**63``; anything else raises :class:`CorruptDeltaError` instead
  of silently producing Python bigints.
* **a target-size ceiling** — ``max_target_length`` (default
  :data:`DEFAULT_MAX_TARGET_LENGTH`, 64 MiB) rejects payloads whose header
  or instruction stream would reconstruct more bytes than the caller is
  prepared to materialize.  A hostile 10-byte payload with a huge RUN
  length is refused at decode time, *before* :func:`repro.delta.apply.replay`
  would allocate gigabytes.  Pass ``max_target_length=None`` only for
  trusted, locally-generated payloads.
"""

from __future__ import annotations

import zlib

from repro.delta.errors import CorruptDeltaError
from repro.delta.instructions import Add, Copy, Instruction, Run, target_length

MAGIC = b"CBD1"

OP_ADD = 0x00
OP_COPY = 0x01
OP_RUN = 0x02

# Back-compat aliases (pre-streaming-kernel names).
_OP_ADD = OP_ADD
_OP_COPY = OP_COPY
_OP_RUN = OP_RUN

#: Hard ceiling on varint values: offsets and lengths live in 63 bits so
#: they can never overflow into values a signed 64-bit consumer (or a
#: future non-Python decoder) would misread.
VARINT_MAX = (1 << 63) - 1

#: Default decode-time bound on the reconstructed document size, shared by
#: the engine's document-size config
#: (:class:`repro.core.config.DeltaServerConfig.max_document_bytes`) and
#: every untrusted decode path (clients, proxies, the load generator).
DEFAULT_MAX_TARGET_LENGTH = 64 << 20


def write_varint(value: int, out: bytearray) -> None:
    """Append ``value`` as a LEB128-style varint (canonical encoding)."""
    if value < 0:
        raise ValueError(f"varint must be non-negative, got {value}")
    if value > VARINT_MAX:
        raise ValueError(f"varint exceeds the 63-bit wire range: {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_varint(data: bytes, pos: int) -> tuple[int, int]:
    """Read a varint at ``pos``; return ``(value, next_pos)``.

    Rejects non-canonical encodings (a redundant trailing ``0x00``
    continuation byte, e.g. ``0x80 0x00`` for 0) and values outside the
    63-bit range, so every decodable varint round-trips through
    :func:`write_varint` in exactly the same number of bytes.
    """
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise CorruptDeltaError("truncated varint")
        byte = data[pos]
        pos += 1
        if byte == 0 and shift:
            # write_varint stops as soon as the remaining value is zero, so
            # a zero byte is only ever valid as a varint's sole byte.
            raise CorruptDeltaError("non-canonical varint (redundant zero byte)")
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            if result > VARINT_MAX:
                raise CorruptDeltaError(
                    f"varint exceeds the 63-bit wire range: {result}"
                )
            return result, pos
        shift += 7
        if shift > 56:
            # 9 payload bytes carry 63 bits; a 10th byte can only encode
            # values >= 2**63 (or a non-canonical padding of a smaller one).
            raise CorruptDeltaError("varint too long")


def varint_size(value: int) -> int:
    """Number of bytes :func:`write_varint` emits for ``value``."""
    if value > VARINT_MAX:
        raise ValueError(f"varint exceeds the 63-bit wire range: {value}")
    size = 1
    while value > 0x7F:
        value >>= 7
        size += 1
    return size


def encode_delta(
    instructions: list[Instruction], base_length: int, target_checksum: int
) -> bytes:
    """Serialize an instruction stream to the wire format."""
    out = bytearray(MAGIC)
    write_varint(target_length(instructions), out)
    write_varint(base_length, out)
    out += target_checksum.to_bytes(4, "big")
    for instr in instructions:
        if isinstance(instr, Add):
            out.append(_OP_ADD)
            write_varint(len(instr.data), out)
            out += instr.data
        elif isinstance(instr, Run):
            out.append(_OP_RUN)
            out.append(instr.byte)
            write_varint(instr.length, out)
        else:
            out.append(_OP_COPY)
            write_varint(instr.offset, out)
            write_varint(instr.length, out)
    return bytes(out)


def decode_delta(
    payload: bytes,
    *,
    max_target_length: int | None = DEFAULT_MAX_TARGET_LENGTH,
) -> tuple[list[Instruction], int, int, int]:
    """Parse the wire format.

    Returns ``(instructions, target_length, base_length, target_checksum)``.
    Raises :class:`CorruptDeltaError` on any structural inconsistency.

    ``max_target_length`` bounds both the declared target length and the
    bytes the instruction stream produces, so a hostile payload (e.g. a
    tiny RUN with an enormous length) is rejected here instead of
    triggering a giant allocation in :func:`repro.delta.apply.replay`.
    Defaults to :data:`DEFAULT_MAX_TARGET_LENGTH`; ``None`` disables the
    bound for trusted, locally-generated payloads.
    """
    if payload[: len(MAGIC)] != MAGIC:
        raise CorruptDeltaError(f"bad magic {payload[:4]!r}")
    pos = len(MAGIC)
    tlen, pos = read_varint(payload, pos)
    blen, pos = read_varint(payload, pos)
    if max_target_length is not None and tlen > max_target_length:
        raise CorruptDeltaError(
            f"target length {tlen} exceeds bound {max_target_length}"
        )
    if pos + 4 > len(payload):
        raise CorruptDeltaError("truncated checksum")
    checksum = int.from_bytes(payload[pos : pos + 4], "big")
    pos += 4
    instructions: list[Instruction] = []
    produced = 0
    while pos < len(payload):
        if produced > tlen:
            # Bail before parsing further instructions: the stream already
            # overran its own header, so it can only be corrupt (and a RUN
            # overrun could otherwise claim an unbounded produced total).
            raise CorruptDeltaError(
                f"instructions produce more than the declared {tlen} bytes"
            )
        op = payload[pos]
        pos += 1
        if op == _OP_ADD:
            length, pos = read_varint(payload, pos)
            if length == 0 or pos + length > len(payload):
                raise CorruptDeltaError("bad ADD length")
            instructions.append(Add(payload[pos : pos + length]))
            pos += length
            produced += length
        elif op == _OP_COPY:
            offset, pos = read_varint(payload, pos)
            length, pos = read_varint(payload, pos)
            if length == 0 or offset + length > blen:
                raise CorruptDeltaError(
                    f"COPY [{offset}, {offset + length}) outside base of {blen}"
                )
            instructions.append(Copy(offset, length))
            produced += length
        elif op == _OP_RUN:
            if pos >= len(payload):
                raise CorruptDeltaError("truncated RUN byte")
            byte = payload[pos]
            pos += 1
            length, pos = read_varint(payload, pos)
            if length == 0:
                raise CorruptDeltaError("bad RUN length")
            instructions.append(Run(byte, length))
            produced += length
        else:
            raise CorruptDeltaError(f"unknown opcode {op:#x}")
    if produced != tlen:
        raise CorruptDeltaError(
            f"instructions produce {produced} bytes, header says {tlen}"
        )
    return instructions, tlen, blen, checksum


def encoded_size(instructions: list[Instruction], base_length: int) -> int:
    """Exact wire size the stream would serialize to, without serializing.

    Used by the grouping estimator and the base-file selection algorithm,
    which only need delta *sizes*, many times per request.
    """
    size = len(MAGIC) + 4  # magic + checksum
    produced = 0
    for instr in instructions:
        if isinstance(instr, Add):
            size += 1 + varint_size(len(instr.data)) + len(instr.data)
            produced += len(instr.data)
        elif isinstance(instr, Run):
            size += 2 + varint_size(instr.length)
            produced += instr.length
        else:
            size += 1 + varint_size(instr.offset) + varint_size(instr.length)
            produced += instr.length
    size += varint_size(produced) + varint_size(base_length)
    return size


def checksum(data: bytes) -> int:
    """Adler-32 checksum used for target/base integrity tags."""
    return zlib.adler32(data) & 0xFFFFFFFF
