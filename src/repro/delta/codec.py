"""Binary wire format for delta instruction streams.

A compact varint-based serialization in the spirit of VCDIFF (Korn & Vo,
cited by the paper as [12]).  Layout::

    magic    b"CBD1"
    varint   target_length
    varint   base_length
    uint32   adler32(target)       -- integrity check applied on decode
    repeated instructions:
        0x00  ADD:  varint length, <length> literal bytes
        0x01  COPY: varint offset, varint length

The checksum catches the classic delta-encoding deployment failure: applying
a delta to the wrong base-file version (e.g. a client whose cached base-file
predates a rebase).  :func:`repro.delta.apply.apply_delta` turns a checksum
mismatch into :class:`~repro.delta.errors.BaseMismatchError` so the caller
can fall back to a full-response fetch, as the architecture in Section VI-C
requires.
"""

from __future__ import annotations

import zlib

from repro.delta.errors import CorruptDeltaError
from repro.delta.instructions import Add, Copy, Instruction, Run, target_length

MAGIC = b"CBD1"

_OP_ADD = 0x00
_OP_COPY = 0x01
_OP_RUN = 0x02


def write_varint(value: int, out: bytearray) -> None:
    """Append ``value`` as a LEB128-style varint."""
    if value < 0:
        raise ValueError(f"varint must be non-negative, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_varint(data: bytes, pos: int) -> tuple[int, int]:
    """Read a varint at ``pos``; return ``(value, next_pos)``."""
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise CorruptDeltaError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise CorruptDeltaError("varint too long")


def varint_size(value: int) -> int:
    """Number of bytes :func:`write_varint` emits for ``value``."""
    size = 1
    while value > 0x7F:
        value >>= 7
        size += 1
    return size


def encode_delta(
    instructions: list[Instruction], base_length: int, target_checksum: int
) -> bytes:
    """Serialize an instruction stream to the wire format."""
    out = bytearray(MAGIC)
    write_varint(target_length(instructions), out)
    write_varint(base_length, out)
    out += target_checksum.to_bytes(4, "big")
    for instr in instructions:
        if isinstance(instr, Add):
            out.append(_OP_ADD)
            write_varint(len(instr.data), out)
            out += instr.data
        elif isinstance(instr, Run):
            out.append(_OP_RUN)
            out.append(instr.byte)
            write_varint(instr.length, out)
        else:
            out.append(_OP_COPY)
            write_varint(instr.offset, out)
            write_varint(instr.length, out)
    return bytes(out)


def decode_delta(payload: bytes) -> tuple[list[Instruction], int, int, int]:
    """Parse the wire format.

    Returns ``(instructions, target_length, base_length, target_checksum)``.
    Raises :class:`CorruptDeltaError` on any structural inconsistency.
    """
    if payload[: len(MAGIC)] != MAGIC:
        raise CorruptDeltaError(f"bad magic {payload[:4]!r}")
    pos = len(MAGIC)
    tlen, pos = read_varint(payload, pos)
    blen, pos = read_varint(payload, pos)
    if pos + 4 > len(payload):
        raise CorruptDeltaError("truncated checksum")
    checksum = int.from_bytes(payload[pos : pos + 4], "big")
    pos += 4
    instructions: list[Instruction] = []
    produced = 0
    while pos < len(payload):
        op = payload[pos]
        pos += 1
        if op == _OP_ADD:
            length, pos = read_varint(payload, pos)
            if length == 0 or pos + length > len(payload):
                raise CorruptDeltaError("bad ADD length")
            instructions.append(Add(payload[pos : pos + length]))
            pos += length
            produced += length
        elif op == _OP_COPY:
            offset, pos = read_varint(payload, pos)
            length, pos = read_varint(payload, pos)
            if length == 0 or offset + length > blen:
                raise CorruptDeltaError(
                    f"COPY [{offset}, {offset + length}) outside base of {blen}"
                )
            instructions.append(Copy(offset, length))
            produced += length
        elif op == _OP_RUN:
            if pos >= len(payload):
                raise CorruptDeltaError("truncated RUN byte")
            byte = payload[pos]
            pos += 1
            length, pos = read_varint(payload, pos)
            if length == 0:
                raise CorruptDeltaError("bad RUN length")
            instructions.append(Run(byte, length))
            produced += length
        else:
            raise CorruptDeltaError(f"unknown opcode {op:#x}")
    if produced != tlen:
        raise CorruptDeltaError(
            f"instructions produce {produced} bytes, header says {tlen}"
        )
    return instructions, tlen, blen, checksum


def encoded_size(instructions: list[Instruction], base_length: int) -> int:
    """Exact wire size the stream would serialize to, without serializing.

    Used by the grouping estimator and the base-file selection algorithm,
    which only need delta *sizes*, many times per request.
    """
    size = len(MAGIC) + 4  # magic + checksum
    produced = 0
    for instr in instructions:
        if isinstance(instr, Add):
            size += 1 + varint_size(len(instr.data)) + len(instr.data)
            produced += len(instr.data)
        elif isinstance(instr, Run):
            size += 2 + varint_size(instr.length)
            produced += instr.length
        else:
            size += 1 + varint_size(instr.offset) + varint_size(instr.length)
            produced += instr.length
    size += varint_size(produced) + varint_size(base_length)
    return size


def checksum(data: bytes) -> int:
    """Adler-32 checksum used for target/base integrity tags."""
    return zlib.adler32(data) & 0xFFFFFFFF
