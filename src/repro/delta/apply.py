"""Delta application: reconstruct a document from a base-file and a delta.

This is the client-side half of Figure 1 — "the end towards the client
reconstructs the current snapshot by combining the delta and the stored
snapshot".  Reconstruction is a single linear replay of the instruction
stream, cheap enough that the paper calls client-side latency
"insignificant" (footnote 9).
"""

from __future__ import annotations

from repro.delta.codec import DEFAULT_MAX_TARGET_LENGTH, checksum, decode_delta
from repro.delta.errors import BaseMismatchError, CorruptDeltaError
from repro.delta.instructions import Copy, Instruction, Run


def replay(instructions: list[Instruction], base: bytes) -> bytes:
    """Replay an in-memory instruction stream against ``base``."""
    out = bytearray()
    for instr in instructions:
        if isinstance(instr, Copy):
            end = instr.offset + instr.length
            if end > len(base):
                raise CorruptDeltaError(
                    f"COPY [{instr.offset}, {end}) outside base of {len(base)}"
                )
            out += base[instr.offset : end]
        elif isinstance(instr, Run):
            out += bytes([instr.byte]) * instr.length
        else:
            out += instr.data
    return bytes(out)


def apply_delta(
    payload: bytes,
    base: bytes,
    *,
    max_target_length: int | None = DEFAULT_MAX_TARGET_LENGTH,
) -> bytes:
    """Apply a serialized delta to ``base`` and return the target document.

    ``max_target_length`` caps the size of the reconstructed document
    (default :data:`~repro.delta.codec.DEFAULT_MAX_TARGET_LENGTH`); the
    bound is enforced during :func:`~repro.delta.codec.decode_delta`, so a
    hostile payload never reaches :func:`replay`'s allocations.

    Raises
    ------
    CorruptDeltaError
        If the payload is malformed or exceeds ``max_target_length``.
    BaseMismatchError
        If the base-file length or the reconstructed target checksum does
        not match the values recorded at encode time — i.e. the client's
        cached base-file is not the one the server diffed against.
    """
    instructions, tlen, blen, expect = decode_delta(
        payload, max_target_length=max_target_length
    )
    if blen != len(base):
        raise BaseMismatchError(
            f"delta was made against a {blen}-byte base, got {len(base)} bytes"
        )
    target = replay(instructions, base)
    if len(target) != tlen:
        raise CorruptDeltaError(
            f"reconstructed {len(target)} bytes, header says {tlen}"
        )
    if checksum(target) != expect:
        raise BaseMismatchError(
            "reconstructed document fails its checksum: wrong base-file version"
        )
    return target
