"""Instruction model for delta-encoded documents.

A delta is a sequence of instructions that, replayed against a *base-file*,
reproduces the *target* document (the current snapshot of a dynamic page):

* :class:`Copy` — copy ``length`` bytes starting at ``offset`` in the
  base-file.
* :class:`Add` — append literal bytes that have no usable match in the
  base-file.
* :class:`Run` — append ``length`` repetitions of one byte (padding,
  separators); VCDIFF's RUN.

This mirrors the COPY/ADD/RUN structure of Vdelta and the VCDIFF format that the
paper builds on (Hunt, Vo & Tichy; Korn & Vo).  Keeping the instruction
stream explicit — rather than emitting opaque compressed bytes — is what
allows the class-based layer to inspect *which base-file chunks were used*,
which both the grouping estimator (Section III) and the anonymization
process (Section V) require.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence


@dataclass(frozen=True, slots=True)
class Copy:
    """Copy ``length`` bytes from ``offset`` in the base-file."""

    offset: int
    length: int

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ValueError(f"Copy offset must be >= 0, got {self.offset}")
        if self.length <= 0:
            raise ValueError(f"Copy length must be > 0, got {self.length}")


@dataclass(frozen=True, slots=True)
class Add:
    """Append literal ``data`` to the output."""

    data: bytes

    def __post_init__(self) -> None:
        if not self.data:
            raise ValueError("Add data must be non-empty")


@dataclass(frozen=True, slots=True)
class Run:
    """Append ``length`` repetitions of one ``byte`` (VCDIFF's RUN).

    Long single-byte runs (padding, separator rows) would otherwise ship as
    literal ADD data; a RUN costs 3-4 wire bytes regardless of length.
    """

    byte: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.byte <= 255:
            raise ValueError(f"Run byte must be in [0, 255], got {self.byte}")
        if self.length <= 0:
            raise ValueError(f"Run length must be > 0, got {self.length}")


Instruction = Copy | Add | Run


def target_length(instructions: Iterable[Instruction]) -> int:
    """Total number of output bytes the instruction stream produces."""
    total = 0
    for instr in instructions:
        if isinstance(instr, Copy):
            total += instr.length
        elif isinstance(instr, Run):
            total += instr.length
        else:
            total += len(instr.data)
    return total


def copied_bytes(instructions: Iterable[Instruction]) -> int:
    """Number of output bytes sourced from the base-file."""
    return sum(i.length for i in instructions if isinstance(i, Copy))


def added_bytes(instructions: Iterable[Instruction]) -> int:
    """Number of non-copied output bytes (ADD literals and RUN output)."""
    total = 0
    for instr in instructions:
        if isinstance(instr, Add):
            total += len(instr.data)
        elif isinstance(instr, Run):
            total += instr.length
    return total


def base_coverage(
    instructions: Iterable[Instruction], base_length: int
) -> list[tuple[int, int]]:
    """Merged, sorted ``(start, end)`` ranges of the base-file used by copies.

    The anonymization process (paper Section V) counts, per base-file chunk,
    how often the chunk was *common* between the base-file and another
    document; coverage ranges are the raw material for those counters.
    """
    ranges: list[tuple[int, int]] = []
    for instr in instructions:
        if isinstance(instr, Copy):
            end = instr.offset + instr.length
            if end > base_length:
                raise ValueError(
                    f"Copy [{instr.offset}, {end}) exceeds base length {base_length}"
                )
            ranges.append((instr.offset, end))
    ranges.sort()
    merged: list[tuple[int, int]] = []
    for start, end in ranges:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def validate(instructions: Sequence[Instruction], base_length: int) -> None:
    """Raise ``ValueError`` if any instruction is inconsistent with the base."""
    for instr in instructions:
        if isinstance(instr, Copy) and instr.offset + instr.length > base_length:
            raise ValueError(
                f"Copy [{instr.offset}, {instr.offset + instr.length}) "
                f"exceeds base length {base_length}"
            )


def coalesce(instructions: Iterable[Instruction]) -> Iterator[Instruction]:
    """Merge adjacent compatible instructions.

    Adjacent :class:`Add` runs are concatenated, back-to-back :class:`Copy`
    ranges (where one ends exactly where the next begins) are fused, and
    same-byte :class:`Run` neighbours are merged.  Encoders may emit
    fragmented streams; coalescing shrinks the encoded wire size without
    changing the reconstructed output.
    """
    pending: Instruction | None = None
    for instr in instructions:
        if pending is None:
            pending = instr
            continue
        if isinstance(pending, Add) and isinstance(instr, Add):
            pending = Add(pending.data + instr.data)
        elif (
            isinstance(pending, Copy)
            and isinstance(instr, Copy)
            and pending.offset + pending.length == instr.offset
        ):
            pending = Copy(pending.offset, pending.length + instr.length)
        elif (
            isinstance(pending, Run)
            and isinstance(instr, Run)
            and pending.byte == instr.byte
        ):
            pending = Run(pending.byte, pending.length + instr.length)
        else:
            yield pending
            pending = instr
    if pending is not None:
        yield pending


# A RUN instruction costs ~4 wire bytes; splitting an ADD around a shorter
# run than this gains nothing once the extra ADD headers are paid.
MIN_RUN = 24

_RUN_PATTERNS: dict[int, re.Pattern[bytes]] = {}


def run_pattern(min_run: int = MIN_RUN) -> re.Pattern[bytes]:
    """Compiled pattern matching maximal single-byte runs of >= ``min_run``.

    The regex engine scans literals in C instead of a per-byte Python loop;
    greedy ``(.)\\1{n,}`` always captures the *maximal* run starting at the
    leftmost qualifying position, so segmentation is identical to the
    per-byte scan it replaced.
    """
    pattern = _RUN_PATTERNS.get(min_run)
    if pattern is None:
        pattern = _RUN_PATTERNS[min_run] = re.compile(
            b"(.)\\1{%d,}" % max(min_run - 1, 0), re.DOTALL
        )
    return pattern


def optimize_runs(
    instructions: Iterable[Instruction], min_run: int = MIN_RUN
) -> Iterator[Instruction]:
    """Rewrite long single-byte stretches inside ADD literals as RUNs."""
    pattern = run_pattern(min_run)
    for instr in instructions:
        if not isinstance(instr, Add) or len(instr.data) < min_run:
            yield instr
            continue
        data = instr.data
        start = 0  # start of the pending literal segment
        for match in pattern.finditer(data):
            i, j = match.span()
            if i > start:
                yield Add(data[start:i])
            yield Run(data[i], j - i)
            start = j
        if start == 0:
            yield instr
        elif start < len(data):
            yield Add(data[start:])
