"""The paper's "light" delta estimator used during grouping.

Section III, footnote 2:

    "Since for grouping purposes it is not required to generate a precise
    delta between the requested document and the base-file of a candidate
    class, but rather to estimate how close they are, a light version of the
    delta algorithm is used to reduce computation cost. ... We use a light
    version of this algorithm that uses larger byte-chunks and only
    traverses the file in the forward direction."

:class:`LightEstimator` wraps a :class:`~repro.delta.vdelta.VdeltaEncoder`
configured with larger chunks, sampled indexing, and no backward extension.
It reports an *estimated* delta size — good enough to rank candidate
classes, several times cheaper than the full differ.
"""

from __future__ import annotations

import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.delta.vdelta import BaseIndex, VdeltaEncoder


@dataclass(slots=True)
class LightEstimator:
    """Cheap closeness estimator between a document and a base-file.

    Parameters
    ----------
    chunk_size:
        Larger than the full differ's 4 bytes; 16 by default.
    step:
        Index every ``step``-th base position only.
    index_cache_size:
        Light indexes are memoized per base-file (keyed by length +
        adler32), because the same documents are estimated against
        repeatedly — every admitted base-file candidate, every class base.
        Estimates tolerate the astronomically unlikely checksum collision;
        the *full* encoder deliberately has no such cache.

    One estimator is shared by the whole sharded engine (every class, every
    shard), so the LRU bookkeeping is guarded by a lock.  The expensive
    part — building an index on a miss — deliberately runs *outside* the
    lock: two racing misses for one base both build, one insert wins, and
    the loser's index is garbage-collected; that beats serializing every
    cross-shard probe behind one index build.
    """

    chunk_size: int = 16
    step: int = 8
    index_cache_size: int = 64
    _encoder: VdeltaEncoder = field(init=False, repr=False)
    _cache: "OrderedDict[tuple[int, int], BaseIndex]" = field(
        init=False, repr=False, default_factory=OrderedDict
    )
    _cache_lock: threading.Lock = field(
        init=False, repr=False, default_factory=threading.Lock
    )

    def __post_init__(self) -> None:
        self._encoder = VdeltaEncoder(
            chunk_size=self.chunk_size,
            min_match=self.chunk_size,
            backward=False,
            step=self.step,
            max_candidates=4,
        )

    def index(self, base: bytes) -> BaseIndex:
        """Return a (memoized) light index for a base-file."""
        key = (len(base), zlib.adler32(base))
        with self._cache_lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                return cached
        built = self._encoder.index(base)
        with self._cache_lock:
            # A racing miss may have inserted first; keep its entry (either
            # index is equivalent) and just refresh recency.
            existing = self._cache.get(key)
            if existing is not None:
                self._cache.move_to_end(key)
                return existing
            self._cache[key] = built
            while len(self._cache) > self.index_cache_size:
                self._cache.popitem(last=False)
        return built

    def estimate(self, base: bytes, target: bytes) -> int:
        """Estimated (uncompressed) delta size in bytes."""
        return self.estimate_with_index(self.index(base), target)

    def estimate_with_index(self, index: BaseIndex, target: bytes) -> int:
        """Estimated delta size against a prebuilt light index.

        Runs the streaming wire kernel and measures the output directly —
        the wire length *is* the old ``encoded_size(instructions, ...)``
        value, without materializing an instruction list first.
        """
        return len(self._encoder.encode_wire_with_index(index, target))
