"""Exception hierarchy for the delta substrate."""

from __future__ import annotations


class DeltaError(Exception):
    """Base class for all delta-encoding failures."""


class CorruptDeltaError(DeltaError):
    """The delta payload is structurally invalid (bad magic, truncation, ...)."""


class BaseMismatchError(DeltaError):
    """The delta was applied to a different base-file than it was made for.

    Typically a stale client cache after a rebase; the caller should fetch
    the full response (and the new base-file) instead.
    """
