"""Bounded streaming histogram: O(1) memory, exact small-n percentiles.

The live serving layer records a sample per request; an unbounded
``list.append`` + ``sorted()`` percentile (the seed implementation of
:class:`~repro.metrics.collector.LatencySample`) both leaks memory over a
soak and makes every ``/__health__`` render O(n log n).  This histogram
replaces it with two fixed-size structures:

* **log-spaced buckets** — a fixed geometric ladder of upper bounds
  (``buckets_per_decade`` per power of ten between ``low`` and ``high``),
  an underflow bucket below ``low`` and an overflow bucket above
  ``high``.  ``add`` is a binary search; memory is O(buckets) forever.
* **a bounded reservoir** — uniform reservoir sampling (Vitter's
  Algorithm R, seeded so runs are reproducible) keeps up to
  ``reservoir_size`` raw values.  While the population fits in the
  reservoir every value is present, so percentiles are *exact* for small
  n — which is what unit tests and short benchmarks observe.  Past that,
  percentiles come from the bucket ladder (geometric-midpoint
  interpolation, clamped to the observed min/max), accurate to the
  bucket spacing.

Percentiles use the nearest-rank definition ``ceil(n * q / 100)`` (1-based),
the textbook form; the seed's ``int(n * q / 100)`` indexing was biased one
rank high (``percentile(50)`` of ``[1, 2]`` returned ``2``).

Exact totals (``count``, ``sum``, ``min``, ``max``) are tracked
separately, so means and byte accounting never pass through the
approximation.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_left

__all__ = ["StreamingHistogram", "nearest_rank_index"]

#: raw values kept for exact small-n percentiles
DEFAULT_RESERVOIR_SIZE = 512

#: geometric resolution of the bucket ladder (10^(1/5) ≈ 1.58x per bucket)
DEFAULT_BUCKETS_PER_DECADE = 5


def nearest_rank_index(count: int, q: float) -> int:
    """0-based index of the nearest-rank ``q``-th percentile of ``count``
    sorted values: ``ceil(count * q / 100) - 1``, clamped to ``[0, count-1]``.
    """
    if count <= 0:
        return 0
    rank = math.ceil(count * q / 100.0) - 1
    return min(max(rank, 0), count - 1)


def log_spaced_bounds(
    low: float, high: float, buckets_per_decade: int
) -> tuple[float, ...]:
    """Geometric ladder of bucket upper bounds from ``low`` to >= ``high``."""
    if low <= 0 or high <= low:
        raise ValueError("need 0 < low < high")
    if buckets_per_decade < 1:
        raise ValueError("buckets_per_decade must be >= 1")
    growth = 10.0 ** (1.0 / buckets_per_decade)
    bounds = [low]
    while bounds[-1] < high:
        bounds.append(bounds[-1] * growth)
    return tuple(bounds)


class StreamingHistogram:
    """Fixed log-spaced buckets + bounded reservoir; O(buckets) memory."""

    __slots__ = (
        "_bounds",
        "_buckets",
        "_count",
        "_sum",
        "_min",
        "_max",
        "_reservoir",
        "_reservoir_size",
        "_rng",
    )

    def __init__(
        self,
        low: float = 1e-5,
        high: float = 1e3,
        *,
        buckets_per_decade: int = DEFAULT_BUCKETS_PER_DECADE,
        reservoir_size: int = DEFAULT_RESERVOIR_SIZE,
        seed: int = 0x5EED,
    ) -> None:
        self._bounds = log_spaced_bounds(low, high, buckets_per_decade)
        # one count per bound, plus the +Inf overflow bucket
        self._buckets = [0] * (len(self._bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._reservoir: list[float] = []
        self._reservoir_size = reservoir_size
        self._rng = random.Random(seed)

    # -- recording -------------------------------------------------------------

    def add(self, value: float) -> None:
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        # bisect_left over upper bounds: index of the first bound >= value.
        # Values <= low land in bucket 0; values > high in the overflow.
        self._buckets[bisect_left(self._bounds, value)] += 1
        if len(self._reservoir) < self._reservoir_size:
            self._reservoir.append(value)
        else:
            slot = self._rng.randrange(self._count)
            if slot < self._reservoir_size:
                self._reservoir[slot] = value

    # -- scalar reads ----------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    @property
    def stored_samples(self) -> int:
        """Raw values currently held — never exceeds ``reservoir_size``."""
        return len(self._reservoir)

    @property
    def reservoir_size(self) -> int:
        return self._reservoir_size

    @property
    def bucket_count(self) -> int:
        return len(self._buckets)

    @property
    def exact(self) -> bool:
        """Whether percentiles are exact (population fits the reservoir)."""
        return self._count <= self._reservoir_size

    # -- percentiles -----------------------------------------------------------

    def percentile(self, q: float) -> float:
        if not self._count:
            return 0.0
        if self.exact:
            ordered = sorted(self._reservoir)
            return ordered[nearest_rank_index(len(ordered), q)]
        return self._bucket_percentile(q)

    def _bucket_percentile(self, q: float) -> float:
        rank = nearest_rank_index(self._count, q)
        cumulative = 0
        for i, bucket in enumerate(self._buckets):
            cumulative += bucket
            if cumulative > rank:
                return self._bucket_value(i)
        return self._max  # unreachable: buckets sum to count

    def _bucket_value(self, index: int) -> float:
        """Representative value for a bucket, clamped to observed extremes."""
        if index == 0:
            value = self._bounds[0]
        elif index >= len(self._bounds):
            value = self._bounds[-1]
        else:
            # geometric midpoint of the bucket's bounds
            value = math.sqrt(self._bounds[index - 1] * self._bounds[index])
        return min(max(value, self._min), self._max)

    # -- exposition ------------------------------------------------------------

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """Prometheus-style ``(le, cumulative_count)`` pairs, ending +Inf."""
        pairs: list[tuple[float, int]] = []
        cumulative = 0
        for bound, bucket in zip(self._bounds, self._buckets):
            cumulative += bucket
            pairs.append((bound, cumulative))
        pairs.append((math.inf, self._count))
        return pairs

    def snapshot(self) -> dict:
        """Compact summary (health endpoints, periodic loggers)."""
        return {
            "count": self._count,
            "sum": round(self._sum, 9),
            "mean": round(self.mean, 9),
            "min": round(self.min, 9),
            "max": round(self.max, 9),
            "p50": round(self.percentile(50), 9),
            "p90": round(self.percentile(90), 9),
            "p99": round(self.percentile(99), 9),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StreamingHistogram(count={self._count}, mean={self.mean:.6g}, "
            f"buckets={len(self._buckets)}, reservoir={len(self._reservoir)})"
        )
