"""Bandwidth and traffic accounting across a replayed trace.

Rolls the per-component stats (server, proxy, clients) into the quantities
the paper reports: direct KB vs delta KB, savings factor, and the split
between delta traffic and base-file distribution traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.histogram import StreamingHistogram


@dataclass(slots=True)
class BandwidthReport:
    """Table II-style bandwidth summary for one replayed trace."""

    name: str
    requests: int = 0
    #: bytes a no-delta deployment would have sent (sum of full snapshots)
    direct_bytes: int = 0
    #: document-response bytes actually sent to clients (deltas + fulls)
    sent_bytes: int = 0
    #: base-file bytes sent from the *server* (before proxy caching)
    base_file_upstream_bytes: int = 0
    #: base-file bytes received by clients (after proxy caching)
    base_file_downstream_bytes: int = 0
    deltas_served: int = 0
    full_served: int = 0

    @property
    def total_sent_bytes(self) -> int:
        """Server-side outbound bytes: documents + base-file distribution.

        Base-files count once per proxy miss — the server-side link is what
        Table II's "Delta KB" measures.
        """
        return self.sent_bytes + self.base_file_upstream_bytes

    @property
    def savings(self) -> float:
        """Fractional savings including base-file distribution cost."""
        if not self.direct_bytes:
            return 0.0
        return 1.0 - self.total_sent_bytes / self.direct_bytes

    @property
    def reduction_factor(self) -> float:
        """The paper's "factor of 20/30" bandwidth-consumption reduction."""
        if not self.total_sent_bytes:
            return float("inf")
        return self.direct_bytes / self.total_sent_bytes

    @property
    def direct_kb(self) -> int:
        return round(self.direct_bytes / 1024)

    @property
    def delta_kb(self) -> int:
        return round(self.total_sent_bytes / 1024)


class LatencySample:
    """Accumulates a distribution of durations (seconds) for percentiles.

    The float twin of :class:`SizeSample`; the live serving layer
    (:mod:`repro.serve`) records per-request wall-clock latencies here and
    reports the p50/p90/p99 figures the capacity experiments compare.

    Backed by a bounded :class:`StreamingHistogram` (log-spaced buckets +
    reservoir), so memory is O(buckets) no matter how long the soak and
    percentile reads never re-sort the full history.  Percentiles are
    exact (nearest-rank) while the population fits the reservoir, and
    bucket-resolution approximations beyond that.
    """

    __slots__ = ("histogram",)

    def __init__(self) -> None:
        self.histogram = StreamingHistogram(low=1e-5, high=1e3)

    def add(self, value: float) -> None:
        self.histogram.add(value)

    @property
    def count(self) -> int:
        return self.histogram.count

    @property
    def mean(self) -> float:
        return self.histogram.mean

    def percentile(self, q: float) -> float:
        return self.histogram.percentile(q)


class SizeSample:
    """Accumulates a distribution of sizes (delta sizes, doc sizes, ...).

    Same bounded backing as :class:`LatencySample`; ``total`` stays exact
    (tracked as a running sum, never reconstructed from buckets).
    """

    __slots__ = ("histogram",)

    def __init__(self) -> None:
        self.histogram = StreamingHistogram(low=1.0, high=float(1 << 30))

    def add(self, value: int) -> None:
        self.histogram.add(value)

    @property
    def count(self) -> int:
        return self.histogram.count

    @property
    def total(self) -> int:
        return round(self.histogram.sum)

    @property
    def mean(self) -> float:
        return self.histogram.mean

    def percentile(self, q: float) -> int:
        return round(self.histogram.percentile(q))
