"""Metrics and table rendering."""

from __future__ import annotations

from repro.metrics.collector import BandwidthReport, LatencySample, SizeSample
from repro.metrics.report import fmt_factor, fmt_kb, fmt_pct, render_table

__all__ = [
    "BandwidthReport",
    "LatencySample",
    "SizeSample",
    "fmt_factor",
    "fmt_kb",
    "fmt_pct",
    "render_table",
]
