"""Metrics and table rendering."""

from __future__ import annotations

from repro.metrics.collector import BandwidthReport, LatencySample, SizeSample
from repro.metrics.histogram import StreamingHistogram, nearest_rank_index
from repro.metrics.registry import (
    PROMETHEUS_CONTENT_TYPE,
    MetricsRegistry,
    format_sample,
    histogram_lines,
)
from repro.metrics.report import fmt_factor, fmt_kb, fmt_pct, render_table

__all__ = [
    "BandwidthReport",
    "LatencySample",
    "MetricsRegistry",
    "PROMETHEUS_CONTENT_TYPE",
    "SizeSample",
    "StreamingHistogram",
    "fmt_factor",
    "fmt_kb",
    "fmt_pct",
    "format_sample",
    "histogram_lines",
    "nearest_rank_index",
    "render_table",
]
