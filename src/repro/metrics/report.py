"""Plain-text table rendering for benchmark output.

Every benchmark regenerates a table or figure from the paper; this module
renders them in aligned ASCII so `pytest benchmarks/ --benchmark-only`
output can be compared side-by-side with the paper's tables.
"""

from __future__ import annotations

from typing import Sequence


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines: list[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def fmt_pct(fraction: float, digits: int = 1) -> str:
    """0.948 -> '94.8%'."""
    return f"{fraction * 100:.{digits}f}%"


def fmt_kb(size_bytes: float) -> str:
    """Bytes -> whole KB string."""
    return f"{size_bytes / 1024:.0f}"


def fmt_factor(value: float, digits: int = 1) -> str:
    """30.2 -> '30.2x'."""
    return f"{value:.{digits}f}x"
