"""Named counters and histograms with Prometheus text exposition.

The observability sink of the live stack: the engine, the origin
resilience policy, and the HTTP front-end all record into one
:class:`MetricsRegistry`, and ``GET /__metrics__`` renders it in the
Prometheus text exposition format (``text/plain; version=0.0.4``) so any
standard scraper — or the CI smoke job's line checker — can consume it.

Two metric families:

* **counters** — monotonically increasing floats keyed by
  ``(name, labels)``; rendered as ``repro_<name>{label="v"} value``.
* **histograms** — :class:`~repro.metrics.histogram.StreamingHistogram`
  instances (bounded: log-spaced buckets + reservoir), rendered as the
  standard ``_bucket``/``_sum``/``_count`` triplet with cumulative
  ``le`` buckets ending at ``+Inf``.

Histogram bounds are picked from the metric name suffix: ``*_seconds``
gets a 10µs..1000s ladder, ``*_bytes`` a 1B..1GiB ladder.  The registry
is thread-safe (the engine and resilience policy record from executor
worker threads while the event loop renders).
"""

from __future__ import annotations

import math
import threading
import time
from typing import Callable, Iterable, Mapping

from repro.metrics.histogram import StreamingHistogram

__all__ = [
    "MetricsRegistry",
    "format_sample",
    "histogram_lines",
    "PROMETHEUS_CONTENT_TYPE",
]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: metric name prefix for everything this repository emits
NAMESPACE = "repro"

LabelItems = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, str] | None) -> LabelItems:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    value = float(value)
    if value.is_integer():
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def format_sample(name: str, labels: LabelItems, value: float) -> str:
    """One exposition line: ``name{label="v",...} value``."""
    if labels:
        rendered = ",".join(
            f'{key}="{_escape_label(val)}"' for key, val in labels
        )
        return f"{name}{{{rendered}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


def histogram_lines(
    name: str, histogram: StreamingHistogram, labels: LabelItems = ()
) -> list[str]:
    """Standard Prometheus histogram triplet for one (name, labels) series."""
    lines = []
    for bound, cumulative in histogram.cumulative_buckets():
        le = ("+Inf",) if bound == math.inf else (f"{bound:.9g}",)
        bucket_labels = labels + (("le", le[0]),)
        lines.append(format_sample(f"{name}_bucket", bucket_labels, cumulative))
    lines.append(format_sample(f"{name}_sum", labels, histogram.sum))
    lines.append(format_sample(f"{name}_count", labels, histogram.count))
    return lines


def default_histogram_for(name: str) -> StreamingHistogram:
    """Bounds chosen by unit suffix (`*_seconds` vs `*_bytes`)."""
    if name.endswith("_seconds"):
        return StreamingHistogram(low=1e-5, high=1e3)
    if name.endswith("_bytes"):
        return StreamingHistogram(low=1.0, high=float(1 << 30))
    return StreamingHistogram(low=1e-6, high=1e6)


class MetricsRegistry:
    """Thread-safe named counters + bounded histograms."""

    def __init__(self, namespace: str = NAMESPACE) -> None:
        self.namespace = namespace
        self._lock = threading.Lock()
        self._counters: dict[str, dict[LabelItems, float]] = {}
        self._histograms: dict[str, dict[LabelItems, StreamingHistogram]] = {}
        self._help: dict[str, str] = {}

    # -- recording -------------------------------------------------------------

    def inc(
        self,
        name: str,
        amount: float = 1.0,
        labels: Mapping[str, str] | None = None,
        help: str | None = None,
    ) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._counters.setdefault(name, {})
            series[key] = series.get(key, 0.0) + amount
            if help:
                self._help.setdefault(name, help)

    def observe(
        self,
        name: str,
        value: float,
        labels: Mapping[str, str] | None = None,
        help: str | None = None,
    ) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._histograms.setdefault(name, {})
            histogram = series.get(key)
            if histogram is None:
                histogram = series[key] = default_histogram_for(name)
            if help:
                self._help.setdefault(name, help)
            histogram.add(value)

    def time(
        self,
        name: str,
        labels: Mapping[str, str] | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> "_Timer":
        """``with registry.time("stage_seconds", {"stage": "encode"}): ...``"""
        return _Timer(self, name, labels, clock)

    # -- reads -----------------------------------------------------------------

    def counter_value(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> float:
        with self._lock:
            return self._counters.get(name, {}).get(_label_key(labels), 0.0)

    def histogram(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> StreamingHistogram | None:
        with self._lock:
            return self._histograms.get(name, {}).get(_label_key(labels))

    def histogram_names(self) -> list[str]:
        with self._lock:
            return sorted(self._histograms)

    def snapshot(self) -> dict:
        """JSON-friendly dump (health endpoint, periodic logger)."""
        with self._lock:
            counters = {
                name: {
                    ",".join(f"{k}={v}" for k, v in key) or "_": value
                    for key, value in series.items()
                }
                for name, series in sorted(self._counters.items())
            }
            histograms = {
                name: {
                    ",".join(f"{k}={v}" for k, v in key) or "_": hist.snapshot()
                    for key, hist in series.items()
                }
                for name, series in sorted(self._histograms.items())
            }
        return {"counters": counters, "histograms": histograms}

    # -- exposition ------------------------------------------------------------

    def render(self, extra_lines: Iterable[str] = ()) -> str:
        """Prometheus text exposition of everything recorded (+extras)."""
        lines: list[str] = []
        with self._lock:
            counters = {
                name: dict(series) for name, series in self._counters.items()
            }
            histogram_items = [
                (name, list(series.items()))
                for name, series in self._histograms.items()
            ]
            help_texts = dict(self._help)
        for name in sorted(counters):
            full = f"{self.namespace}_{name}"
            if name in help_texts:
                lines.append(f"# HELP {full} {help_texts[name]}")
            lines.append(f"# TYPE {full} counter")
            for key in sorted(counters[name]):
                lines.append(format_sample(full, key, counters[name][key]))
        for name, series in sorted(histogram_items):
            full = f"{self.namespace}_{name}"
            if name in help_texts:
                lines.append(f"# HELP {full} {help_texts[name]}")
            lines.append(f"# TYPE {full} histogram")
            for key, histogram in sorted(series, key=lambda item: item[0]):
                lines.extend(histogram_lines(full, histogram, key))
        lines.extend(extra_lines)
        return "\n".join(lines) + "\n"


class _Timer:
    """Context manager recording elapsed wall-clock into a histogram."""

    __slots__ = ("_registry", "_name", "_labels", "_clock", "_started")

    def __init__(
        self,
        registry: MetricsRegistry,
        name: str,
        labels: Mapping[str, str] | None,
        clock: Callable[[], float],
    ) -> None:
        self._registry = registry
        self._name = name
        self._labels = labels
        self._clock = clock
        self._started = 0.0

    def __enter__(self) -> "_Timer":
        self._started = self._clock()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._registry.observe(
            self._name, self._clock() - self._started, self._labels
        )
