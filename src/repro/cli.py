"""Command-line interface: generate traces, replay them, inspect deltas.

Usage::

    python -m repro.cli trace-gen --requests 2000 --users 20 --out trace.log
    python -m repro.cli replay trace.log
    python -m repro.cli delta base.html current.html
    python -m repro.cli capacity
    python -m repro.cli serve --port 8707
    python -m repro.cli proxy --upstream-port 8707 --port 8708
    python -m repro.cli loadgen trace.log --via-proxy 127.0.0.1:8708

The CLI drives the same public API the examples use; it exists so the
system can be exercised from a shell (and from scripts) without writing
Python.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys
from pathlib import Path

from repro.core import AnonymizationConfig, DeltaServerConfig
from repro.delta import apply_delta, compress, make_delta
from repro.metrics import fmt_factor, fmt_pct, render_table
from repro.origin import SiteSpec, SyntheticSite, UrlStyle
from repro.simulation import (
    CostModel,
    Simulation,
    SimulationConfig,
    compare_plain_vs_delta,
)
from repro.workload import Trace, WorkloadSpec, analyze_trace, generate_workload

DEFAULT_SITE = "www.shop.example"

DEFAULT_CONTROL_FILE = "fleet.json"


def _install_signal_handlers(loop: asyncio.AbstractEventLoop, handlers) -> None:
    """Wire signal → callback, surviving event loops that can't.

    ``add_signal_handler`` raises off the main thread (tests) and on
    loops without signal support; fall back to ``signal.signal`` so a
    plain ``kill`` still runs the graceful-drain path instead of
    skipping ``engine.close()``'s store shutdown.
    """
    for sig, callback in handlers.items():
        try:
            loop.add_signal_handler(sig, callback)
            continue
        except (NotImplementedError, ValueError, RuntimeError):
            pass
        try:
            signal.signal(
                sig,
                lambda *_args, _cb=callback: loop.call_soon_threadsafe(_cb),
            )
        except (ValueError, OSError):
            pass  # not the main thread: no signal-driven shutdown here


def _build_site(args: argparse.Namespace) -> SyntheticSite:
    return SyntheticSite(
        SiteSpec(
            name=args.site,
            url_style=UrlStyle(args.url_style),
            categories=tuple(args.categories.split(",")),
            products_per_category=args.products,
        )
    )


def cmd_trace_gen(args: argparse.Namespace) -> int:
    site = _build_site(args)
    workload = generate_workload(
        [site],
        WorkloadSpec(
            name=Path(args.out).stem,
            requests=args.requests,
            users=args.users,
            duration=args.duration,
            revisit_bias=args.revisit_bias,
            session_urls=args.session_urls,
            seed=args.seed,
        ),
    )
    workload.trace.save(args.out)
    print(
        f"wrote {len(workload.trace)} requests "
        f"({len(workload.trace.users)} users, {len(workload.trace.urls)} URLs) "
        f"to {args.out}"
    )
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    trace = Trace.load(args.trace)
    site = _build_site(args)
    config = SimulationConfig(
        verify=args.verify,
        delta=DeltaServerConfig(
            anonymization=AnonymizationConfig(
                documents=args.anon_n, min_count=args.anon_m
            )
        ),
    )
    simulation = Simulation([site], config)
    report = simulation.run(trace)
    bw = report.bandwidth
    print(
        render_table(
            ["metric", "value"],
            [
                ["requests", bw.requests],
                ["direct KB", bw.direct_kb],
                ["sent KB", bw.delta_kb],
                ["savings", fmt_pct(bw.savings)],
                ["reduction", fmt_factor(bw.reduction_factor)],
                ["deltas / fulls", f"{bw.deltas_served} / {bw.full_served}"],
                ["classes", report.classes],
                ["verify failures", report.verify_failures],
            ],
            title=f"replay of {args.trace}",
        )
    )
    return 1 if report.verify_failures else 0


def cmd_delta(args: argparse.Namespace) -> int:
    base = Path(args.base).read_bytes()
    target = Path(args.target).read_bytes()
    payload = make_delta(base, target)
    compressed = compress(payload)
    assert apply_delta(payload, base) == target
    print(f"base      {len(base):>10,} bytes")
    print(f"target    {len(target):>10,} bytes")
    print(f"delta     {len(payload):>10,} bytes ({len(payload) / max(len(target), 1):.1%})")
    print(f"delta.gz  {len(compressed):>10,} bytes ({len(compressed) / max(len(target), 1):.1%})")
    if args.out:
        Path(args.out).write_bytes(compressed)
        print(f"wrote compressed delta to {args.out}")
    return 0


def cmd_trace_stats(args: argparse.Namespace) -> int:
    stats = analyze_trace(Trace.load(args.trace))
    print(
        render_table(
            ["metric", "value"],
            [
                ["requests", stats.requests],
                ["distinct URLs", stats.distinct_urls],
                ["distinct users", stats.distinct_users],
                ["duration", f"{stats.duration:.0f} s"],
                ["request rate", f"{stats.requests_per_second:.2f} req/s"],
                ["top-URL share", f"{stats.top_url_share:.1%}"],
                ["head (top 10% URLs) share", f"{stats.head_share:.1%}"],
                ["Zipf alpha (fit)", f"{stats.zipf_alpha:.2f}"],
                ["requests per (user, URL) pair", f"{stats.requests_per_pair:.1f}"],
            ],
            title=f"trace statistics: {args.trace}",
        )
    )
    return 0


def cmd_capacity(args: argparse.Namespace) -> int:
    plain, delta = compare_plain_vs_delta(CostModel())
    rows = []
    for estimate in (plain, delta):
        rows.append(
            [
                estimate.name,
                f"{estimate.cpu_capacity_rps:.0f}",
                f"{estimate.capacity_rps:.0f}",
                f"{estimate.sustainable_concurrency:.0f}",
            ]
        )
    print(
        render_table(
            ["configuration", "cpu rps", "capacity rps", "concurrency @ cpu cap"],
            rows,
            title="capacity (paper-calibrated cost model, modem clients)",
        )
    )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    if args.workers and args.fleet_worker_id is None:
        return cmd_serve_fleet(args)

    from repro.resilience import FaultPlan, ResilienceConfig
    from repro.serve import build_server

    site = _build_site(args)
    config = DeltaServerConfig(
        anonymization=AnonymizationConfig(documents=args.anon_n, min_count=args.anon_m),
        engine_mode=args.engine_mode,
    )
    fault_plan = (
        FaultPlan.parse(args.fault_plan, seed=args.fault_seed)
        if args.fault_plan
        else None
    )
    resilience = ResilienceConfig(
        enabled=not args.no_resilience,
        retries=args.origin_retries,
        deadline=args.origin_deadline,
        breaker_failure_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
    )
    # -- fleet worker wiring (hidden flags set by the supervisor) --
    fleet_config = None
    listen_sock = None
    if args.fleet_worker_id is not None:
        import socket as socket_module

        from repro.fleet import FleetWorkerConfig

        fleet_config = FleetWorkerConfig(
            worker_id=args.fleet_worker_id,
            workers=args.fleet_size,
            internal_port=args.fleet_internal_port,
            peer_ports=tuple(int(p) for p in args.fleet_peers.split(",")),
        )
        if args.fleet_listen_fd is not None:
            # Parent-acceptor fallback: adopt the supervisor's inherited
            # listening socket instead of binding our own.
            listen_sock = socket_module.socket(fileno=args.fleet_listen_fd)

    async def run() -> int:
        server = build_server(
            [site],
            mode=args.mode,
            config=config,
            origin_latency=args.origin_latency,
            origin_jitter=args.origin_jitter,
            fault_plan=fault_plan,
            resilience=resilience,
            executor_kind=args.executor,
            executor_workers=args.executor_workers,
            state_dir=args.state_dir,
            snapshot_every=args.snapshot_every,
            fleet=fleet_config,
            host=args.host,
            port=args.port,
            max_connections=args.max_connections,
            request_timeout=args.request_timeout,
            drain_timeout=args.drain_timeout,
            reuse_port=args.reuse_port,
            listen_sock=listen_sock,
        )
        async with server:
            host, port = server.address
            print(
                f"listening on {host}:{port} "
                f"(mode={args.mode}, slots={args.max_connections})",
                flush=True,
            )
            if server.engine is not None and args.state_dir:
                snap = server.engine.store_hooks.snapshot() or {}
                print(
                    f"persistent store: {args.state_dir} "
                    f"(warm_start={server.engine.rehydrated_classes > 0}, "
                    f"rehydrated={server.engine.rehydrated_classes}, "
                    f"recovery_ms={snap.get('recovery_ms', 0)})",
                    flush=True,
                )
            if fault_plan is not None:
                print(f"fault injection: {fault_plan.describe()}", flush=True)
            stop = asyncio.Event()
            loop = asyncio.get_running_loop()
            _install_signal_handlers(
                loop, {signal.SIGINT: stop.set, signal.SIGTERM: stop.set}
            )
            serving = asyncio.ensure_future(server.serve_forever())
            snapshot_task = None
            if args.metrics_interval:
                async def log_snapshots() -> None:
                    while True:
                        await asyncio.sleep(args.metrics_interval)
                        print(server.stats.snapshot_line(server.clock()), flush=True)

                snapshot_task = asyncio.ensure_future(log_snapshots())
            try:
                while not stop.is_set():
                    if (
                        args.max_requests is not None
                        and server.stats.requests >= args.max_requests
                    ):
                        break
                    with contextlib.suppress(asyncio.TimeoutError):
                        await asyncio.wait_for(stop.wait(), 0.2)
            finally:
                serving.cancel()
                if snapshot_task is not None:
                    snapshot_task.cancel()
                    with contextlib.suppress(asyncio.CancelledError):
                        await snapshot_task
                with contextlib.suppress(asyncio.CancelledError):
                    await serving
            print(server.stats.render(server.clock()), flush=True)
            if server.resilience is not None:
                snapshot = server.resilience.snapshot()
                breaker = snapshot["breaker"]
                policy = snapshot["policy"]
                print(
                    f"origin resilience: breaker={breaker['state']} "
                    f"(opened {breaker['opened']}x, reclosed {breaker['reclosed']}x), "
                    f"retries={policy['retries']}, fast-fails={policy['fast_fails']}",
                    flush=True,
                )
        if server.drain_report is not None:
            drained = server.drain_report
            print(
                f"drain complete: in_flight={drained['in_flight']} "
                f"cancelled={drained['cancelled']} "
                f"seconds={drained['seconds']}",
                flush=True,
            )
        return 0

    return asyncio.run(run())


def _fleet_worker_passthrough(args: argparse.Namespace) -> list[str]:
    """Serve flags forwarded verbatim to every fleet worker's argv."""
    flags = [
        "--site", args.site,
        "--url-style", args.url_style,
        "--categories", args.categories,
        "--products", str(args.products),
        "--mode", args.mode,
        "--engine-mode", args.engine_mode,
        "--max-connections", str(args.max_connections),
        "--request-timeout", str(args.request_timeout),
        "--drain-timeout", str(args.drain_timeout),
        "--executor", args.executor,
        "--origin-latency", str(args.origin_latency),
        "--origin-jitter", str(args.origin_jitter),
        "--origin-retries", str(args.origin_retries),
        "--origin-deadline", str(args.origin_deadline),
        "--breaker-threshold", str(args.breaker_threshold),
        "--breaker-cooldown", str(args.breaker_cooldown),
        "--anon-n", str(args.anon_n),
        "--anon-m", str(args.anon_m),
    ]
    if args.executor_workers is not None:
        flags += ["--executor-workers", str(args.executor_workers)]
    if args.fault_plan:
        flags += ["--fault-plan", args.fault_plan,
                  "--fault-seed", str(args.fault_seed)]
    if args.no_resilience:
        flags.append("--no-resilience")
    if args.snapshot_every is not None:
        flags += ["--snapshot-every", str(args.snapshot_every)]
    if args.metrics_interval:
        flags += ["--metrics-interval", str(args.metrics_interval)]
    return flags


def cmd_serve_fleet(args: argparse.Namespace) -> int:
    """``serve --workers N``: run the supervised multi-process fleet."""
    from repro.fleet import FleetConfig, FleetSupervisor

    config = FleetConfig(
        workers=args.workers,
        host=args.host,
        port=args.port,
        admin_port=args.admin_port,
        accept_mode=args.accept_mode,
        # Outer patience: the worker's own graceful drain gets its full
        # budget before the supervisor escalates to SIGKILL.
        drain_grace=args.drain_timeout + 5.0,
        state_dir=args.state_dir,
        control_file=args.control_file or DEFAULT_CONTROL_FILE,
        worker_args=tuple(_fleet_worker_passthrough(args)),
    )

    async def run() -> int:
        supervisor = FleetSupervisor(config)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        handlers = {signal.SIGINT: stop.set, signal.SIGTERM: stop.set}
        sighup = getattr(signal, "SIGHUP", None)
        if sighup is not None:
            handlers[sighup] = lambda: asyncio.ensure_future(supervisor.roll())
        _install_signal_handlers(loop, handlers)
        try:
            await supervisor.start()
        except Exception:
            supervisor.close()
            raise
        print(
            f"fleet listening on {config.host}:{supervisor.port} "
            f"(workers={config.workers}, accept={supervisor.accept_mode}, "
            f"admin=127.0.0.1:{supervisor.admin_address[1]})",
            flush=True,
        )
        stop_task = asyncio.ensure_future(stop.wait())
        drained_task = asyncio.ensure_future(supervisor.run_until_drained())
        await asyncio.wait(
            {stop_task, drained_task}, return_when=asyncio.FIRST_COMPLETED
        )
        stop_task.cancel()
        if not drained_task.done():
            await supervisor.drain()
            await drained_task
        for handle in supervisor.handles:
            print(
                f"fleet worker {handle.worker_id}: exit={handle.last_exit} "
                f"restarts={handle.restarts} "
                f"drain_seconds={handle.last_drain_seconds}",
                flush=True,
            )
        clean = all(handle.last_exit == 0 for handle in supervisor.handles)
        print(f"fleet drained ({'clean' if clean else 'forced'})", flush=True)
        return 0 if clean else 1

    return asyncio.run(run())


def _read_control_file(path: str) -> dict | None:
    import json as _json

    try:
        return _json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return None


def cmd_fleet(args: argparse.Namespace) -> int:
    """``fleet status|drain|roll``: control a running fleet."""
    import json as _json

    from repro.fleet import http_get

    control = _read_control_file(args.control_file)
    if control is None:
        print(
            f"fleet {args.fleet_command}: no control file at "
            f"{args.control_file} (is the fleet running?)",
            file=sys.stderr,
        )
        return 1
    admin_host = control["admin_host"]
    admin_port = control["admin_port"]
    endpoint = {
        "status": "__health__",
        "drain": "__drain__",
        "roll": "__roll__",
    }[args.fleet_command]

    async def call() -> int:
        try:
            response = await http_get(
                admin_host, admin_port, endpoint, timeout=5.0
            )
        except Exception as exc:
            # Admin endpoint gone but supervisor maybe alive: fall back
            # to plain signals against the supervisor pid.
            sig = {
                "drain": signal.SIGTERM,
                "roll": getattr(signal, "SIGHUP", signal.SIGTERM),
            }.get(args.fleet_command)
            if sig is None:
                print(f"fleet status: admin unreachable: {exc}", file=sys.stderr)
                return 1
            try:
                import os

                os.kill(control["pid"], sig)
            except (OSError, ProcessLookupError) as kill_exc:
                print(f"fleet {args.fleet_command}: {kill_exc}", file=sys.stderr)
                return 1
            print(f"fleet {args.fleet_command}: signalled pid {control['pid']}")
            return 0
        if args.fleet_command == "status":
            payload = _json.loads(response.body.decode())
            print(_json.dumps(payload, indent=2, sort_keys=True))
            return 0 if payload.get("status") == "ok" else 2
        print(response.body.decode())
        return 0

    result = asyncio.run(call())
    if args.fleet_command == "drain" and getattr(args, "wait", False):
        import os
        import time as time_module

        deadline = time_module.monotonic() + args.timeout
        while time_module.monotonic() < deadline:
            try:
                os.kill(control["pid"], 0)
            except (OSError, ProcessLookupError):
                print("fleet drain: supervisor exited")
                return result
            time_module.sleep(0.2)
        print("fleet drain: supervisor still running after --timeout",
              file=sys.stderr)
        return 1
    return result


def cmd_store_inspect(args: argparse.Namespace) -> int:
    """Dump a state directory's pack/journal contents as JSON (read-only)."""
    import json as _json

    from repro.store import inspect_state_dir

    if not Path(args.state_dir).is_dir():
        print(f"store inspect: no state directory at {args.state_dir}", file=sys.stderr)
        return 1
    dump = inspect_state_dir(args.state_dir)
    print(_json.dumps(dump, indent=None if args.compact else 2, sort_keys=True))
    return 0


def cmd_proxy(args: argparse.Namespace) -> int:
    from repro.proxy import ProxyHTTPServer

    async def run() -> int:
        server = ProxyHTTPServer(
            args.upstream_host,
            args.upstream_port,
            host=args.host,
            port=args.port,
            capacity_bytes=args.capacity_mb * 1024 * 1024,
            ttl=args.ttl if args.ttl > 0 else None,
            max_connections=args.max_connections,
            upstream_connections=args.upstream_connections,
            request_timeout=args.request_timeout,
        )
        async with server:
            host, port = server.address
            print(
                f"proxy listening on {host}:{port} "
                f"(upstream={args.upstream_host}:{args.upstream_port}, "
                f"cache={args.capacity_mb} MiB, "
                f"ttl={args.ttl if args.ttl > 0 else 'off'})",
                flush=True,
            )
            stop = asyncio.Event()
            loop = asyncio.get_running_loop()
            _install_signal_handlers(
                loop, {signal.SIGINT: stop.set, signal.SIGTERM: stop.set}
            )
            serving = asyncio.ensure_future(server.serve_forever())
            try:
                while not stop.is_set():
                    if (
                        args.max_requests is not None
                        and server.stats.requests >= args.max_requests
                    ):
                        break
                    with contextlib.suppress(asyncio.TimeoutError):
                        await asyncio.wait_for(stop.wait(), 0.2)
            finally:
                serving.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await serving
            print(server.render(), flush=True)
        return 0

    return asyncio.run(run())


def _parse_hostport(value: str) -> tuple[str, int]:
    host, sep, port = value.rpartition(":")
    if not sep or not host:
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {value!r}"
        )
    try:
        return host, int(port)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad port in {value!r}") from exc


def cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.serve import LoadGenConfig, LoadGenerator

    trace = Trace.load(args.trace)
    proxy_host, proxy_port = args.via_proxy or (None, None)
    config = LoadGenConfig(
        host=args.host,
        port=args.port,
        proxy_host=proxy_host,
        proxy_port=proxy_port,
        mode=args.mode,
        concurrency=args.concurrency,
        rate=args.rate,
        max_requests=args.requests,
        request_timeout=args.timeout,
        verify=not args.no_verify,
        retries=args.retries,
        retry_backoff=args.retry_backoff,
    )
    report = asyncio.run(LoadGenerator(config).run(trace))
    print(report.render())
    if report.verify_failures:
        return 1
    if args.strict and (
        report.errors
        or report.delta_failures
        or report.rejected
        or report.timeouts
    ):
        return 1
    return 0


def _add_site_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--site", default=DEFAULT_SITE, help="server-part")
    parser.add_argument(
        "--url-style",
        default="path_query",
        choices=[style.value for style in UrlStyle],
    )
    parser.add_argument("--categories", default="laptops,desktops")
    parser.add_argument("--products", type=int, default=5)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("trace-gen", help="generate a synthetic access-log trace")
    _add_site_args(gen)
    gen.add_argument("--requests", type=int, default=1000)
    gen.add_argument("--users", type=int, default=20)
    gen.add_argument("--duration", type=float, default=3600.0)
    gen.add_argument("--revisit-bias", type=float, default=0.6)
    gen.add_argument("--session-urls", action="store_true")
    gen.add_argument("--seed", type=int, default=1)
    gen.add_argument("--out", required=True)
    gen.set_defaults(func=cmd_trace_gen)

    replay = sub.add_parser("replay", help="replay a trace through the architecture")
    _add_site_args(replay)
    replay.add_argument("trace")
    replay.add_argument("--verify", action="store_true", help="byte-verify every response")
    replay.add_argument("--anon-n", type=int, default=3, help="anonymization N")
    replay.add_argument("--anon-m", type=int, default=1, help="anonymization M")
    replay.set_defaults(func=cmd_replay)

    delta = sub.add_parser("delta", help="diff two files with the Vdelta encoder")
    delta.add_argument("base")
    delta.add_argument("target")
    delta.add_argument("--out", help="write the compressed delta here")
    delta.set_defaults(func=cmd_delta)

    stats = sub.add_parser("trace-stats", help="summarize a trace's shape")
    stats.add_argument("trace")
    stats.set_defaults(func=cmd_trace_stats)

    capacity = sub.add_parser("capacity", help="print the capacity comparison")
    capacity.set_defaults(func=cmd_capacity)

    serve = sub.add_parser("serve", help="run the live delta-server over TCP")
    _add_site_args(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8707, help="0 picks an ephemeral port")
    serve.add_argument("--mode", default="delta", choices=["delta", "plain"])
    serve.add_argument("--max-connections", type=int, default=255,
                       help="connection-slot ceiling (paper: 255)")
    serve.add_argument("--request-timeout", type=float, default=30.0)
    serve.add_argument("--executor", default="thread", choices=["thread", "sync"],
                       help="where delta generation runs")
    serve.add_argument("--executor-workers", type=int, default=None,
                       help="thread-pool size (default: min(64, 4 x cores))")
    serve.add_argument("--engine-mode", default="sharded",
                       choices=["sharded", "serialized"],
                       help="engine concurrency model: per-class sharding "
                            "(default) or one global lock (benchmark baseline)")
    serve.add_argument("--origin-latency", type=float, default=0.0,
                       help="injected origin fetch latency, seconds")
    serve.add_argument("--origin-jitter", type=float, default=0.0,
                       help="uniform extra origin latency, seconds")
    serve.add_argument("--fault-plan", default=None,
                       help="structured fault injection, e.g. "
                       "'error:rate=0.1,status=500;latency:rate=0.05,delay=0.2'")
    serve.add_argument("--fault-seed", type=int, default=23)
    serve.add_argument("--no-resilience", action="store_true",
                       help="disable origin retries/backoff and the circuit breaker")
    serve.add_argument("--origin-retries", type=int, default=2,
                       help="origin retry attempts per request")
    serve.add_argument("--origin-deadline", type=float, default=10.0,
                       help="per-request origin effort budget, seconds")
    serve.add_argument("--breaker-threshold", type=float, default=0.5,
                       help="failure rate that opens the circuit breaker")
    serve.add_argument("--breaker-cooldown", type=float, default=5.0,
                       help="seconds the breaker stays open before probing")
    serve.add_argument("--anon-n", type=int, default=3, help="anonymization N")
    serve.add_argument("--anon-m", type=int, default=1, help="anonymization M")
    serve.add_argument("--max-requests", type=int, default=None,
                       help="exit after serving this many requests")
    serve.add_argument("--metrics-interval", type=float, default=0.0,
                       help="log a one-line stats snapshot every N seconds "
                            "(0 disables)")
    serve.add_argument("--state-dir", default=None,
                       help="persist class state and base-file version chains "
                            "here (pack/journal store); restarts warm-start "
                            "from it instead of re-fetching origins")
    serve.add_argument("--snapshot-every", type=int, default=None,
                       metavar="K",
                       help="store a full base-file snapshot every K versions "
                            "(delta chain length bound; default 8)")
    serve.add_argument("--drain-timeout", type=float, default=5.0,
                       help="graceful-drain budget for in-flight requests "
                            "on shutdown, seconds")
    serve.add_argument("--workers", type=int, default=None,
                       help="run a supervised multi-process worker fleet of "
                            "this size sharing the listen address (classes "
                            "partitioned across workers; crashed workers are "
                            "restarted; SIGTERM drains, SIGHUP rolls)")
    serve.add_argument("--admin-port", type=int, default=0,
                       help="fleet admin endpoint port (aggregated "
                            "/__health__ and /__metrics__; 0 = ephemeral)")
    serve.add_argument("--accept-mode", default="auto",
                       choices=["auto", "reuseport", "inherit"],
                       help="fleet listener sharing: SO_REUSEPORT or a "
                            "parent-held inherited socket (auto picks)")
    serve.add_argument("--control-file", default=None,
                       help="fleet control JSON path (default fleet.json; "
                            "the 'fleet' verbs read it)")
    # Hidden flags the fleet supervisor sets when spawning workers.
    serve.add_argument("--fleet-worker-id", type=int, default=None,
                       help=argparse.SUPPRESS)
    serve.add_argument("--fleet-size", type=int, default=None,
                       help=argparse.SUPPRESS)
    serve.add_argument("--fleet-internal-port", type=int, default=None,
                       help=argparse.SUPPRESS)
    serve.add_argument("--fleet-peers", default=None, help=argparse.SUPPRESS)
    serve.add_argument("--fleet-listen-fd", type=int, default=None,
                       help=argparse.SUPPRESS)
    serve.add_argument("--reuse-port", action="store_true",
                       help=argparse.SUPPRESS)
    serve.set_defaults(func=cmd_serve)

    fleet = sub.add_parser(
        "fleet", help="control a running worker fleet (serve --workers N)"
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)
    fleet_status = fleet_sub.add_parser(
        "status", help="print the fleet's aggregated health JSON"
    )
    fleet_drain = fleet_sub.add_parser(
        "drain", help="gracefully drain and stop the fleet"
    )
    fleet_drain.add_argument("--wait", action="store_true",
                             help="block until the supervisor has exited")
    fleet_drain.add_argument("--timeout", type=float, default=60.0,
                             help="--wait deadline, seconds")
    fleet_roll = fleet_sub.add_parser(
        "roll", help="rolling restart: one worker at a time, no downtime"
    )
    for fleet_verb in (fleet_status, fleet_drain, fleet_roll):
        fleet_verb.add_argument("--control-file", default=DEFAULT_CONTROL_FILE,
                                help="fleet control JSON written by serve")
        fleet_verb.set_defaults(func=cmd_fleet)

    store = sub.add_parser(
        "store", help="inspect the persistent pack/journal store"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    inspect = store_sub.add_parser(
        "inspect", help="dump a state directory's pack/journal contents as JSON"
    )
    inspect.add_argument("state_dir", help="state directory (serve --state-dir)")
    inspect.add_argument("--compact", action="store_true",
                         help="one-line JSON instead of indented output")
    inspect.set_defaults(func=cmd_store_inspect)

    proxy = sub.add_parser(
        "proxy", help="run the live caching proxy tier in front of a server"
    )
    proxy.add_argument("--host", default="127.0.0.1")
    proxy.add_argument("--port", type=int, default=8708,
                       help="0 picks an ephemeral port")
    proxy.add_argument("--upstream-host", default="127.0.0.1")
    proxy.add_argument("--upstream-port", type=int, default=8707)
    proxy.add_argument("--capacity-mb", type=int, default=64,
                       help="cache byte budget, MiB")
    proxy.add_argument("--ttl", type=float, default=300.0,
                       help="seconds before a cached entry is revalidated "
                            "upstream (0 disables expiry)")
    proxy.add_argument("--max-connections", type=int, default=255)
    proxy.add_argument("--upstream-connections", type=int, default=16,
                       help="keep-alive connection pool size to the upstream")
    proxy.add_argument("--request-timeout", type=float, default=30.0)
    proxy.add_argument("--max-requests", type=int, default=None,
                       help="exit after proxying this many requests")
    proxy.set_defaults(func=cmd_proxy)

    loadgen = sub.add_parser("loadgen", help="replay a trace against a live server")
    loadgen.add_argument("trace")
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=8707)
    loadgen.add_argument("--via-proxy", type=_parse_hostport, default=None,
                         metavar="HOST:PORT",
                         help="connect through a live proxy tier instead of "
                              "directly to the server")
    loadgen.add_argument("--mode", default="closed", choices=["closed", "open"])
    loadgen.add_argument("--concurrency", type=int, default=8)
    loadgen.add_argument("--rate", type=float, default=100.0,
                        help="open loop: Poisson arrival rate, req/s")
    loadgen.add_argument("--requests", type=int, default=None,
                         help="replay at most this many trace records")
    loadgen.add_argument("--timeout", type=float, default=15.0)
    loadgen.add_argument("--no-verify", action="store_true",
                         help="skip client-side body-digest verification")
    loadgen.add_argument("--retries", type=int, default=0,
                         help="retry 502/503/504 this many times with capped backoff")
    loadgen.add_argument("--retry-backoff", type=float, default=0.05,
                         help="base retry backoff, seconds (doubles per attempt)")
    loadgen.add_argument("--strict", action="store_true",
                         help="also exit non-zero on errors, delta failures, "
                              "rejections, or timeouts (CI chaos gates)")
    loadgen.set_defaults(func=cmd_loadgen)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
