"""Latency measurement over simulated links.

The paper validates its analytic L1/L2 estimates with a measurement tool
(MyVitalAgent); this module plays that role over our link models, and also
converts a stream of per-response transfer sizes (from a replayed trace)
into user-perceived latency statistics.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.network.link import LinkSpec
from repro.network.tcp import mean_transfer_time, slow_start_rounds, transfer_time


@dataclass(frozen=True, slots=True)
class LatencyComparison:
    """L1/L2 style comparison of two transfer sizes over one link."""

    link: str
    size_large: int
    size_small: int
    latency_large: float
    latency_small: float
    rounds_large: int
    rounds_small: int

    @property
    def latency_ratio(self) -> float:
        """The paper's L1/L2."""
        return self.latency_large / self.latency_small

    @property
    def rounds_ratio(self) -> float:
        """Slow-start rounds ratio — the paper's ≈ log2(S1/S2) argument."""
        if self.rounds_small == 0:
            return float(self.rounds_large)
        return self.rounds_large / self.rounds_small


def compare_sizes(
    size_large: int, size_small: int, link: LinkSpec, samples: int = 500
) -> LatencyComparison:
    """Measure L1/L2 for two response sizes over ``link``."""
    return LatencyComparison(
        link=link.name,
        size_large=size_large,
        size_small=size_small,
        latency_large=mean_transfer_time(size_large, link, samples=samples),
        latency_small=mean_transfer_time(size_small, link, samples=samples),
        rounds_large=slow_start_rounds(size_large, link),
        rounds_small=slow_start_rounds(size_small, link),
    )


@dataclass(slots=True)
class LatencyTracker:
    """Accumulates user-perceived latency for a stream of transfers."""

    link: LinkSpec
    seed: int = 11
    latencies: list[float] = field(default_factory=list)
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def record(self, size_bytes: int) -> float:
        """Record one response transfer; returns its modelled latency."""
        latency = transfer_time(size_bytes, self.link, rng=self._rng).total
        self.latencies.append(latency)
        return latency

    @property
    def count(self) -> int:
        return len(self.latencies)

    @property
    def total(self) -> float:
        return sum(self.latencies)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """q-th percentile latency (q in [0, 100])."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        rank = min(int(len(ordered) * q / 100), len(ordered) - 1)
        return ordered[rank]
