"""TCP slow-start transfer-time model.

Implements the standard round-based model the paper's Section VI-A
analysis rests on (see also Barford & Crovella, the paper's [2]): the
sender's window starts at ``initial_cwnd`` segments and doubles each round
until it fills the bandwidth-delay product, after which the transfer is
bandwidth-limited.  Each round costs ``max(RTT, window transmission
time)``; connection setup and loss/retransmission overheads are added on
top.

Two observations the paper derives fall straight out of this model, and the
benchmark ``bench_latency_model.py`` checks both:

* high bandwidth → rounds ≈ ``log2(size ratio)`` → a 30 KB document costs
  about 5× the RTT-rounds of a 1 KB delta;
* 56 Kb/s modem → transmission-dominated, with setup/loss overheads pulling
  the naive 30× ratio down to ≈ 10×.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.network.link import LinkSpec


@dataclass(frozen=True, slots=True)
class TransferBreakdown:
    """Where a transfer's time went."""

    total: float
    setup: float
    rounds: int  # slow-start/window rounds spent
    round_time: float  # time across all window rounds
    transmission: float  # pure serialization component included in rounds
    loss_penalty: float

    def __post_init__(self) -> None:
        if self.total < 0:
            raise ValueError("negative transfer time")


def slow_start_rounds(size_bytes: int, link: LinkSpec) -> int:
    """Number of window rounds to deliver ``size_bytes`` (no losses).

    The quantity the paper counts when it argues the RTTs needed for a
    document are "roughly log S1/S2 times" those for a delta.
    """
    if size_bytes <= 0:
        return 0
    segments = math.ceil(size_bytes / link.mss)
    cwnd = float(link.initial_cwnd)
    cap = max(link.bandwidth_delay_segments, 1.0)
    rounds = 0
    sent = 0
    while sent < segments:
        window = min(cwnd, cap)
        sent += int(window)
        rounds += 1
        cwnd = min(cwnd * 2, cap)
    return rounds


def transfer_time(
    size_bytes: int,
    link: LinkSpec,
    rng: random.Random | None = None,
    include_setup: bool = True,
) -> TransferBreakdown:
    """Model the time to deliver ``size_bytes`` over ``link``.

    ``rng`` draws loss events when the link has a non-zero ``loss_rate``;
    omit it for the deterministic no-loss time.
    """
    setup = link.setup_rtts * link.rtt if include_setup else 0.0
    if size_bytes <= 0:
        return TransferBreakdown(
            total=setup, setup=setup, rounds=0, round_time=0.0,
            transmission=0.0, loss_penalty=0.0,
        )
    segments = math.ceil(size_bytes / link.mss)
    cap = max(link.bandwidth_delay_segments, 1.0)
    cwnd = float(link.initial_cwnd)
    rounds = 0
    sent = 0
    round_time = 0.0
    transmission = 0.0
    while sent < segments:
        window = int(min(cwnd, cap))
        window = min(window, segments - sent)
        window = max(window, 1)
        serialize = window * link.packet_transmission_time
        # A round ends when the last ACK returns (RTT) or when the sender is
        # still clocking bytes out (serialization), whichever is longer.
        round_time += max(link.rtt, serialize)
        transmission += serialize
        sent += window
        rounds += 1
        cwnd = min(cwnd * 2, cap)
    loss_penalty = 0.0
    if link.loss_rate > 0 and rng is not None:
        # Per-segment independent loss; each loss event costs one RTO.
        losses = sum(1 for _ in range(segments) if rng.random() < link.loss_rate)
        loss_penalty = losses * link.rto
    total = setup + round_time + loss_penalty
    return TransferBreakdown(
        total=total,
        setup=setup,
        rounds=rounds,
        round_time=round_time,
        transmission=transmission,
        loss_penalty=loss_penalty,
    )


def mean_transfer_time(
    size_bytes: int, link: LinkSpec, samples: int = 200, seed: int = 7
) -> float:
    """Average transfer time including loss effects (Monte-Carlo)."""
    if link.loss_rate <= 0:
        return transfer_time(size_bytes, link).total
    rng = random.Random(seed)
    total = 0.0
    for _ in range(samples):
        total += transfer_time(size_bytes, link, rng=rng).total
    return total / samples
