"""Link models for the latency analysis (paper Section VI-A).

Two canonical links from the paper:

* a **high-bandwidth** path, where TCP slow-start round trips dominate and
  the latency ratio between a 30 KB and a 1 KB transfer is roughly
  ``log2(S1/S2)`` ≈ 5;
* a **56 Kb/s modem** with 100 ms RTT, where transmission time dominates
  ("the transmission time of a single packet is roughly equal to twice
  RTT") and fixed costs pull the ratio from the naive ``S1/S2 = 30`` down
  to around 10.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class LinkSpec:
    """One network path between two parties."""

    name: str
    bandwidth_bps: float  # application-visible bits per second
    rtt: float  # round-trip time, seconds
    mss: int = 1460  # TCP maximum segment size, bytes
    initial_cwnd: int = 2  # initial congestion window, segments
    #: RTTs consumed by connection setup (SYN, SYN-ACK, request).
    setup_rtts: float = 1.5
    #: Random-loss probability per transfer; each loss costs one RTO.
    loss_rate: float = 0.0
    #: Retransmission timeout charged per loss event, seconds.
    rto: float = 1.0

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ValueError(f"bandwidth_bps must be > 0, got {self.bandwidth_bps}")
        if self.rtt <= 0:
            raise ValueError(f"rtt must be > 0, got {self.rtt}")
        if self.mss <= 0:
            raise ValueError(f"mss must be > 0, got {self.mss}")
        if self.initial_cwnd < 1:
            raise ValueError(f"initial_cwnd must be >= 1, got {self.initial_cwnd}")

    @property
    def bandwidth_delay_segments(self) -> float:
        """Bandwidth-delay product in MSS segments — the pipe's capacity."""
        return self.bandwidth_bps * self.rtt / 8 / self.mss

    @property
    def packet_transmission_time(self) -> float:
        """Seconds to clock one MSS onto the wire."""
        return self.mss * 8 / self.bandwidth_bps


#: High-bandwidth path: fast enough that slow-start RTTs dominate.  The
#: initial window of 1 segment matches the paper-era TCP stacks whose RTT
#: counting yields the "L1/L2 roughly equal to 5" figure.
HIGH_BANDWIDTH = LinkSpec(
    name="high-bandwidth", bandwidth_bps=10_000_000, rtt=0.08, initial_cwnd=1
)

#: The paper's 56 Kb/s modem with 100 ms RTT.  Setup covers the dial-up
#: path's connect + request overhead; the loss term models the "timeouts
#: and retransmissions caused by packet losses" the paper charges to large
#: transfers.
MODEM_56K = LinkSpec(
    name="modem-56k", bandwidth_bps=56_000, rtt=0.1, setup_rtts=3.0, loss_rate=0.01
)

#: Server-side LAN between delta-server and origin (Fig. 2 recommends
#: placing them next to each other precisely to make this negligible).
LAN = LinkSpec(name="lan", bandwidth_bps=100_000_000, rtt=0.001, setup_rtts=0.0)
