"""Network substrate: TCP slow-start model and link specifications."""

from __future__ import annotations

from repro.network.latency import LatencyComparison, LatencyTracker, compare_sizes
from repro.network.link import HIGH_BANDWIDTH, LAN, MODEM_56K, LinkSpec
from repro.network.tcp import (
    TransferBreakdown,
    mean_transfer_time,
    slow_start_rounds,
    transfer_time,
)

__all__ = [
    "HIGH_BANDWIDTH",
    "LAN",
    "LatencyComparison",
    "LatencyTracker",
    "LinkSpec",
    "MODEM_56K",
    "TransferBreakdown",
    "compare_sizes",
    "mean_transfer_time",
    "slow_start_rounds",
    "transfer_time",
]
