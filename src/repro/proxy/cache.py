"""LRU object cache honouring response cachability.

The substrate for the proxy-cache in Fig. 2.  Only responses explicitly
marked cachable are stored — which, in this system, means base-files: the
dynamic documents themselves remain uncachable, and *that* is why plain
proxy caching tops out around 40 % hit rates (paper Section I) while the
delta-server recovers the redundancy anyway.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.http.messages import Response


@dataclass(slots=True)
class CacheStats:
    """Hit/miss accounting for one cache."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    hit_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUCache:
    """Byte-budgeted LRU cache of responses keyed by URL."""

    def __init__(self, capacity_bytes: int = 64 * 1024 * 1024) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity_bytes must be > 0, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._entries: OrderedDict[str, Response] = OrderedDict()
        self._size = 0
        self.stats = CacheStats()

    @property
    def size_bytes(self) -> int:
        return self._size

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, url: str) -> bool:
        return url in self._entries

    def get(self, url: str) -> Response | None:
        """Look up ``url``, refreshing recency on hit."""
        entry = self._entries.get(url)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(url)
        self.stats.hits += 1
        self.stats.hit_bytes += entry.content_length
        return entry

    def put(self, url: str, response: Response) -> bool:
        """Store a cachable response; returns ``False`` if not cachable."""
        if not response.cachable or response.status != 200:
            return False
        if response.content_length > self.capacity_bytes:
            return False
        if url in self._entries:
            self._size -= self._entries.pop(url).content_length
        self._entries[url] = response
        self._size += response.content_length
        self.stats.insertions += 1
        while self._size > self.capacity_bytes:
            _, evicted = self._entries.popitem(last=False)
            self._size -= evicted.content_length
            self.stats.evictions += 1
        return True

    def invalidate(self, url: str) -> bool:
        """Drop one entry; returns whether it existed."""
        entry = self._entries.pop(url, None)
        if entry is None:
            return False
        self._size -= entry.content_length
        return True

    def clear(self) -> None:
        self._entries.clear()
        self._size = 0
