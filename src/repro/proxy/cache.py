"""LRU object cache honouring response cachability.

The substrate for the proxy-cache in Fig. 2.  Only responses explicitly
marked cachable are stored — which, in this system, means base-files: the
dynamic documents themselves remain uncachable, and *that* is why plain
proxy caching tops out around 40 % hit rates (paper Section I) while the
delta-server recovers the redundancy anyway.

Semantics:

* **byte-budgeted LRU** — entries are charged their body size; inserts
  that push past ``capacity_bytes`` evict from the least-recent end.
* **TTL expiry** — with a ``ttl``, entries older than it stop being
  fresh: :meth:`lookup` reports them stale so the proxy can revalidate
  against the upstream's body checksum (a confirmed revalidation calls
  :meth:`refresh`), and :meth:`get` treats them as misses.
* **full accounting** — every lookup lands in ``hits`` or ``misses``
  (``hit_rate`` is over *all* lookups), rejected ``put``s are
  distinguishable from accepted ones (``rejections``), and explicit
  drops are counted (``invalidations``), so ``size_bytes`` and the
  counters stay provably consistent under arbitrary op interleavings.
* **thread-safe** — one lock around every operation; the live proxy's
  event loop and any background sweepers share one instance.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.http.messages import Response


@dataclass(slots=True)
class CacheStats:
    """Hit/miss accounting for one cache.

    Invariants (all enforced by tests):

    * ``hits + misses`` counts every lookup, including expired entries
      (counted in both ``expirations`` and ``misses``) and non-GET
      bypasses recorded via :meth:`LRUCache.note_bypass`.
    * live entries == ``insertions - replacements - evictions -
      invalidations``.
    * a ``put`` either increments ``insertions`` (returning ``True``) or
      ``rejections`` (returning ``False``) — never neither.
    """

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    #: inserts that overwrote a live entry for the same URL
    replacements: int = 0
    evictions: int = 0
    #: entries dropped by ``invalidate``/``clear``
    invalidations: int = 0
    #: ``put`` calls refused (uncachable, non-200, or oversized response)
    rejections: int = 0
    #: lookups that found an entry past its TTL (also counted as misses)
    expirations: int = 0
    hit_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(slots=True)
class _Entry:
    """One cached response plus the clock reading when it was stored."""

    response: Response
    stored_at: float


class LRUCache:
    """Thread-safe, byte-budgeted LRU cache of responses keyed by URL."""

    def __init__(
        self, capacity_bytes: int = 64 * 1024 * 1024, ttl: float | None = None
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity_bytes must be > 0, got {capacity_bytes}")
        if ttl is not None and ttl <= 0:
            raise ValueError(f"ttl must be > 0 (or None), got {ttl}")
        self.capacity_bytes = capacity_bytes
        self.ttl = ttl
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, _Entry] = OrderedDict()
        self._size = 0
        self.stats = CacheStats()

    @property
    def size_bytes(self) -> int:
        with self._lock:
            return self._size

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, url: str) -> bool:
        with self._lock:
            return url in self._entries

    def _fresh(self, entry: _Entry, now: float | None) -> bool:
        if self.ttl is None or now is None:
            return True
        return now - entry.stored_at <= self.ttl

    def get(self, url: str, now: float | None = None) -> Response | None:
        """Fresh-entry lookup, refreshing recency on hit.

        An expired entry is a miss (but stays stored so :meth:`lookup`
        callers can revalidate it instead of re-transferring the body).
        """
        with self._lock:
            entry = self._entries.get(url)
            if entry is None:
                self.stats.misses += 1
                return None
            if not self._fresh(entry, now):
                self.stats.expirations += 1
                self.stats.misses += 1
                return None
            self._entries.move_to_end(url)
            self.stats.hits += 1
            self.stats.hit_bytes += entry.response.content_length
            return entry.response

    def lookup(self, url: str, now: float | None = None):
        """Lookup that surfaces stale entries: ``(response, fresh)`` or ``None``.

        A stale result is counted as an expiration *and* a miss (the
        bytes cannot be served without an upstream round-trip); callers
        that revalidate it successfully should call :meth:`refresh`.
        """
        with self._lock:
            entry = self._entries.get(url)
            if entry is None:
                self.stats.misses += 1
                return None
            if not self._fresh(entry, now):
                self.stats.expirations += 1
                self.stats.misses += 1
                return entry.response, False
            self._entries.move_to_end(url)
            self.stats.hits += 1
            self.stats.hit_bytes += entry.response.content_length
            return entry.response, True

    def note_bypass(self) -> None:
        """Count a lookup that never consulted the store (non-GET traffic).

        Keeps ``hit_rate`` honest: every request the proxy answers is in
        the denominator, not just the GETs that were worth looking up.
        """
        with self._lock:
            self.stats.misses += 1

    def put(self, url: str, response: Response, now: float = 0.0) -> bool:
        """Store a cachable response; ``False`` (a counted rejection) otherwise."""
        with self._lock:
            if (
                not response.cachable
                or response.status != 200
                or response.content_length > self.capacity_bytes
            ):
                self.stats.rejections += 1
                return False
            previous = self._entries.pop(url, None)
            if previous is not None:
                self._size -= previous.response.content_length
                self.stats.replacements += 1
            self._entries[url] = _Entry(response, now)
            self._size += response.content_length
            self.stats.insertions += 1
            while self._size > self.capacity_bytes:
                _, evicted = self._entries.popitem(last=False)
                self._size -= evicted.response.content_length
                self.stats.evictions += 1
            return True

    def refresh(self, url: str, now: float) -> bool:
        """Restart an entry's TTL after a successful upstream revalidation."""
        with self._lock:
            entry = self._entries.get(url)
            if entry is None:
                return False
            entry.stored_at = now
            self._entries.move_to_end(url)
            return True

    def invalidate(self, url: str) -> bool:
        """Drop one entry; returns whether it existed."""
        with self._lock:
            entry = self._entries.pop(url, None)
            if entry is None:
                return False
            self._size -= entry.response.content_length
            self.stats.invalidations += 1
            return True

    def clear(self) -> None:
        with self._lock:
            self.stats.invalidations += len(self._entries)
            self._entries.clear()
            self._size = 0

    def check_consistency(self) -> None:
        """Assert the size/counter invariants (test and debug hook)."""
        with self._lock:
            actual = sum(
                entry.response.content_length for entry in self._entries.values()
            )
            assert self._size == actual, (self._size, actual)
            assert self._size <= self.capacity_bytes
            stats = self.stats
            live = (
                stats.insertions
                - stats.replacements
                - stats.evictions
                - stats.invalidations
            )
            assert live == len(self._entries), (live, len(self._entries))
