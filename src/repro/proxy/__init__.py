"""Proxy-cache substrate (delta-unaware, caches base-files)."""

from __future__ import annotations

from repro.proxy.cache import CacheStats, LRUCache
from repro.proxy.proxy import ProxyCache, ProxyStats
from repro.proxy.server import HEADER_PROXY_CACHE, ProxyHTTPServer

__all__ = [
    "CacheStats",
    "HEADER_PROXY_CACHE",
    "LRUCache",
    "ProxyCache",
    "ProxyHTTPServer",
    "ProxyStats",
]
