"""Proxy-cache substrate (delta-unaware, caches base-files)."""

from __future__ import annotations

from repro.proxy.cache import CacheStats, LRUCache
from repro.proxy.proxy import ProxyCache, ProxyStats

__all__ = ["CacheStats", "LRUCache", "ProxyCache", "ProxyStats"]
