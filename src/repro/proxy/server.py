"""The live proxy tier: a caching HTTP/1.1 forward proxy over asyncio.

Fig. 2's intermediary made real.  The proxy listens on its own socket,
forwards every request to one upstream delta-server over a pooled
keep-alive connection set, and caches what the upstream marks cachable —
which, in this system, is exactly the anonymized base-files.  "Many
different users will download the same base-files from a proxy-cache"
(Section VI-B): one upstream base-file transfer then serves every client
behind the proxy, and that sharing is the paper's scalability argument
for making dynamic content cachable at all.

Properties:

* **Delta-unaware.**  The proxy never parses delta payloads or
  ``X-Delta`` headers; it keys purely on URL, method, and the standard
  cachability markers.  Deltas and personalized documents pass through
  untouched — the transparent-deployment point of Section VI-C.
* **Byte-budgeted LRU with TTL** (:class:`~repro.proxy.cache.LRUCache`):
  entries past their TTL are *revalidated*, not re-transferred — the
  proxy replays the cached body's checksum in ``If-None-Match`` and the
  delta-server answers ``304 Not Modified`` when its base-file still has
  those exact bytes (base-file versions are immutable, so a refresh
  normally costs headers, not bodies).
* **Same wire stack as the server** (:mod:`repro.serve.protocol`):
  keep-alive both sides, chunked bodies, connection-slot ceiling with
  503 rejections, graceful drain.
* **Own observability surface** — ``GET /__metrics__`` renders the
  proxy's cache and traffic families in Prometheus text exposition and
  ``GET /__health__`` a JSON snapshot, so a hierarchy of processes can
  each be scraped independently.

Every response served from cache carries ``X-Proxy-Cache: hit`` (or
``revalidated``); forwarded answers carry ``miss`` (``bypass`` for
non-GETs).  Bodies are byte-identical to what the upstream would serve:
hits replay the stored body whose ``X-Body-Digest`` clients keep
verifying end-to-end.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import time
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Callable

from repro.http.messages import HEADER_IF_NONE_MATCH, Request, Response
from repro.metrics import PROMETHEUS_CONTENT_TYPE, format_sample, render_table
from repro.proxy.cache import LRUCache
from repro.proxy.proxy import ProxyStats
from repro.serve.protocol import (
    HEADER_BODY_DIGEST,
    ParsedRequest,
    ProtocolError,
    read_request,
    read_response,
    serialize_request,
    serialize_response,
)
from repro.serve.server import HEALTH_PATH, METRICS_PATH
from repro.url.parts import split_server

PROXY_SOFTWARE = "repro-proxy/1.0"

#: response header reporting how the proxy answered
HEADER_PROXY_CACHE = "X-Proxy-Cache"

#: default TTL before a cached base-file is revalidated upstream
DEFAULT_TTL = 300.0


class UpstreamError(Exception):
    """The upstream could not be reached or answered garbage."""


@dataclass(slots=True)
class ProxyServeStats:
    """Connection-level counters for one live proxy instance."""

    started_at: float | None = None
    connections_accepted: int = 0
    connections_rejected: int = 0
    active_connections: int = 0
    peak_connections: int = 0
    protocol_errors: int = 0
    timeouts: int = 0
    #: ``/__metrics__`` + ``/__health__`` probes answered by the proxy itself
    admin_requests: int = 0
    status_counts: Counter = field(default_factory=Counter)


class _UpstreamPool:
    """Bounded pool of keep-alive connections to the upstream server."""

    def __init__(self, host: str, port: int, size: int) -> None:
        self.host = host
        self.port = port
        self._slots = asyncio.Semaphore(size)
        self._idle: deque[tuple[asyncio.StreamReader, asyncio.StreamWriter]] = deque()

    async def roundtrip(self, request: Request, timeout: float):
        """One request/response exchange; retries once on a dead pooled conn.

        Returns the :class:`~repro.serve.protocol.ParsedResponse`; raises
        :class:`UpstreamError` when the upstream is unreachable or speaks
        a broken protocol even on a fresh connection.
        """
        async with self._slot():
            for attempt in (0, 1):
                reused = bool(self._idle)
                if reused:
                    reader, writer = self._idle.popleft()
                else:
                    try:
                        reader, writer = await asyncio.open_connection(
                            self.host, self.port
                        )
                    except OSError as exc:
                        raise UpstreamError(f"connect failed: {exc}") from exc
                try:
                    writer.write(serialize_request(request))
                    await writer.drain()
                    parsed = await asyncio.wait_for(read_response(reader), timeout)
                except asyncio.TimeoutError:
                    self._close(writer)
                    raise
                except (ProtocolError, ConnectionError, OSError) as exc:
                    self._close(writer)
                    if reused and attempt == 0:
                        # A pooled connection the upstream closed between
                        # requests: retry once on a fresh socket.
                        continue
                    raise UpstreamError(f"upstream exchange failed: {exc}") from exc
                if parsed.keep_alive:
                    self._idle.append((reader, writer))
                else:
                    self._close(writer)
                return parsed
        raise UpstreamError("upstream exchange failed")  # pragma: no cover

    @contextlib.asynccontextmanager
    async def _slot(self):
        await self._slots.acquire()
        try:
            yield
        finally:
            self._slots.release()

    @staticmethod
    def _close(writer: asyncio.StreamWriter) -> None:
        with contextlib.suppress(Exception):
            writer.close()

    def close(self) -> None:
        while self._idle:
            _, writer = self._idle.popleft()
            self._close(writer)


class ProxyHTTPServer:
    """Asyncio caching forward proxy in front of one upstream server."""

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        capacity_bytes: int = 64 * 1024 * 1024,
        ttl: float | None = DEFAULT_TTL,
        max_connections: int = 255,
        upstream_connections: int = 16,
        request_timeout: float = 30.0,
        idle_timeout: float = 30.0,
        drain_timeout: float = 5.0,
        chunk_threshold: int = 16 * 1024,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if max_connections < 1:
            raise ValueError("max_connections must be >= 1")
        if upstream_connections < 1:
            raise ValueError("upstream_connections must be >= 1")
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.cache = LRUCache(capacity_bytes, ttl=ttl)
        self.stats = ProxyStats()
        self.serve_stats = ProxyServeStats()
        self.max_connections = max_connections
        self.clock = clock or time.monotonic
        self._pool = _UpstreamPool(upstream_host, upstream_port, upstream_connections)
        self._host = host
        self._port = port
        self._request_timeout = request_timeout
        self._idle_timeout = idle_timeout
        self._drain_timeout = drain_timeout
        self._chunk_threshold = chunk_threshold
        self._slots = asyncio.Semaphore(max_connections)
        self._tasks: set[asyncio.Task] = set()
        self._server: asyncio.base_events.Server | None = None
        self._closing = False

    # -- lifecycle -------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        if self._server is None:
            raise RuntimeError("proxy not started")
        return self._server.sockets[0].getsockname()[:2]

    @property
    def port(self) -> int:
        return self.address[1]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._client_connected, self._host, self._port
        )
        self.serve_stats.started_at = self.clock()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        with contextlib.suppress(asyncio.CancelledError):
            await self._server.serve_forever()

    async def close(self) -> None:
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._tasks:
            _, pending = await asyncio.wait(
                set(self._tasks), timeout=self._drain_timeout
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        self._pool.close()

    async def __aenter__(self) -> "ProxyHTTPServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # -- connection handling ---------------------------------------------------

    def _client_connected(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.ensure_future(self._serve_connection(reader, writer))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._closing or self._slots.locked():
            self.serve_stats.connections_rejected += 1
            self.serve_stats.status_counts[503] += 1
            wire = serialize_response(
                Response(status=503, body=b"proxy connection slots exhausted"),
                keep_alive=False,
            )
            with contextlib.suppress(Exception):
                writer.write(wire)
                await writer.drain()
            writer.close()
            return
        await self._slots.acquire()
        self.serve_stats.connections_accepted += 1
        self.serve_stats.active_connections += 1
        self.serve_stats.peak_connections = max(
            self.serve_stats.peak_connections, self.serve_stats.active_connections
        )
        try:
            await self._request_loop(reader, writer)
        finally:
            self._slots.release()
            self.serve_stats.active_connections -= 1
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _request_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                parsed = await asyncio.wait_for(
                    read_request(reader), self._idle_timeout
                )
            except (asyncio.TimeoutError, ConnectionError):
                return
            except ProtocolError as exc:
                self.serve_stats.protocol_errors += 1
                await self._write(
                    writer,
                    Response(status=exc.status, body=str(exc).encode()),
                    keep_alive=False,
                )
                return
            if parsed is None:
                return  # clean EOF
            keep_alive = await self._serve_one(writer, parsed)
            if not keep_alive:
                return

    async def _serve_one(
        self, writer: asyncio.StreamWriter, parsed: ParsedRequest
    ) -> bool:
        try:
            response = await asyncio.wait_for(
                self._dispatch(parsed.request), self._request_timeout
            )
        except asyncio.TimeoutError:
            self.serve_stats.timeouts += 1
            response = Response(status=504, body=b"upstream timed out")
        except UpstreamError as exc:
            self.stats.upstream_errors += 1
            response = Response(status=502, body=f"upstream error: {exc}".encode())
        response.headers.set("Via", f"1.1 {PROXY_SOFTWARE}")
        keep_alive = parsed.keep_alive and not self._closing
        try:
            await self._write(writer, response, keep_alive=keep_alive)
        except ConnectionError:
            return False
        return keep_alive

    # -- dispatch --------------------------------------------------------------

    async def _dispatch(self, request: Request) -> Response:
        _, remainder = split_server(request.url)
        if remainder == METRICS_PATH:
            self.serve_stats.admin_requests += 1
            return self._metrics_response()
        if remainder == HEALTH_PATH:
            self.serve_stats.admin_requests += 1
            return self._health_response()
        self.stats.requests += 1
        if request.method != "GET":
            # A cachable 200 to a POST is the side-effect's answer, not
            # the resource's representation: never stored, never served
            # from the store — but still a counted lookup so hit_rate
            # reflects every request the proxy answered.
            self.stats.bypassed += 1
            self.cache.note_bypass()
            upstream = await self._forward(request)
            return self._deliver(upstream.response, "bypass")
        now = self.clock()
        found = self.cache.lookup(request.url, now)
        if found is not None:
            cached, fresh = found
            if fresh:
                return self._deliver(self._copy(cached), "hit")
            refreshed = await self._revalidate(request, cached, now)
            if refreshed is not None:
                return refreshed
        upstream = await self._forward(request)
        response = upstream.response
        if response.status == 200 and response.cachable:
            self.cache.put(request.url, response, now)
        elif found is not None:
            # The stale entry is not coming back (upstream stopped serving
            # this URL, or stopped marking it cachable): drop it.
            self.cache.invalidate(request.url)
        return self._deliver(self._copy(response), "miss")

    async def _revalidate(
        self, request: Request, cached: Response, now: float
    ) -> Response | None:
        """Refresh a TTL-expired entry with a checksum-conditional fetch.

        Returns the response to serve, or ``None`` to fall through to an
        unconditional forward (no digest to validate against).
        """
        digest = cached.headers.get(HEADER_BODY_DIGEST)
        if digest is None:
            return None
        conditional = Request(
            url=request.url,
            method=request.method,
            headers=request.headers.copy(),
            cookies=dict(request.cookies),
            client_id=request.client_id,
        )
        conditional.headers.set(HEADER_IF_NONE_MATCH, digest)
        self.stats.revalidations += 1
        upstream = await self._forward(conditional)
        response = upstream.response
        if response.status == 304:
            # The upstream's bytes still match the cached checksum: the
            # refresh cost headers, not a body transfer.
            self.stats.revalidated += 1
            self.cache.refresh(request.url, now)
            return self._deliver(self._copy(cached), "revalidated")
        if response.status == 200 and response.cachable:
            self.cache.put(request.url, response, now)
        else:
            self.cache.invalidate(request.url)
        return self._deliver(self._copy(response), "miss")

    async def _forward(self, request: Request):
        """One upstream round-trip with wire/body accounting."""
        parsed = await self._pool.roundtrip(request, self._request_timeout)
        self.stats.upstream_requests += 1
        self.stats.upstream_wire_bytes += parsed.wire_bytes
        self.stats.upstream_bytes += parsed.response.content_length
        return parsed

    @staticmethod
    def _copy(response: Response) -> Response:
        """Shallow response copy so served headers never touch the cache."""
        return Response(
            status=response.status,
            body=response.body,
            headers=response.headers.copy(),
            cachable=response.cachable,
        )

    def _deliver(self, response: Response, state: str) -> Response:
        response.headers.set(HEADER_PROXY_CACHE, state)
        self.stats.downstream_bytes += response.content_length
        return response

    async def _write(
        self,
        writer: asyncio.StreamWriter,
        response: Response,
        *,
        keep_alive: bool,
    ) -> None:
        chunked = len(response.body) >= self._chunk_threshold
        wire = serialize_response(response, keep_alive=keep_alive, chunked=chunked)
        self.serve_stats.status_counts[response.status] += 1
        self.stats.downstream_wire_bytes += len(wire)
        writer.write(wire)
        await writer.drain()

    # -- observability ---------------------------------------------------------

    def _health_response(self) -> Response:
        cache = self.cache.stats
        payload = {
            "status": "ok" if not self._closing else "draining",
            "upstream": {"host": self.upstream_host, "port": self.upstream_port},
            "connections": {
                "accepted": self.serve_stats.connections_accepted,
                "rejected": self.serve_stats.connections_rejected,
                "active": self.serve_stats.active_connections,
                "peak": self.serve_stats.peak_connections,
                "slots": self.max_connections,
            },
            "cache": {
                "entries": len(self.cache),
                "size_bytes": self.cache.size_bytes,
                "capacity_bytes": self.cache.capacity_bytes,
                "ttl": self.cache.ttl,
                "hits": cache.hits,
                "misses": cache.misses,
                "hit_rate": cache.hit_rate,
                "expirations": cache.expirations,
                "evictions": cache.evictions,
                "rejections": cache.rejections,
                "invalidations": cache.invalidations,
            },
            "traffic": {
                "requests": self.stats.requests,
                "bypassed": self.stats.bypassed,
                "upstream_requests": self.stats.upstream_requests,
                "upstream_wire_bytes": self.stats.upstream_wire_bytes,
                "downstream_wire_bytes": self.stats.downstream_wire_bytes,
                "revalidations": self.stats.revalidations,
                "revalidated": self.stats.revalidated,
                "upstream_errors": self.stats.upstream_errors,
            },
        }
        response = Response(
            status=200, body=json.dumps(payload, sort_keys=True).encode()
        )
        response.headers.set("Content-Type", "application/json")
        return response

    def prometheus_lines(self, now: float | None = None) -> list[str]:
        """The proxy's cache and traffic families in exposition format."""
        traffic = self.stats
        cache = self.cache.stats
        counters: list[tuple[str, str, float]] = [
            ("repro_proxy_requests_total", "requests proxied (admin excluded)",
             traffic.requests),
            ("repro_proxy_bypass_total", "non-GET requests forwarded uncached",
             traffic.bypassed),
            ("repro_proxy_upstream_requests_total", "round-trips to the upstream",
             traffic.upstream_requests),
            ("repro_proxy_upstream_errors_total", "failed upstream round-trips",
             traffic.upstream_errors),
            ("repro_proxy_revalidations_total",
             "conditional refreshes of TTL-expired entries",
             traffic.revalidations),
            ("repro_proxy_revalidated_total",
             "revalidations answered 304 Not Modified", traffic.revalidated),
            ("repro_proxy_upstream_body_bytes_total",
             "response body bytes read from the upstream", traffic.upstream_bytes),
            ("repro_proxy_downstream_body_bytes_total",
             "response body bytes served to clients", traffic.downstream_bytes),
            ("repro_proxy_upstream_wire_bytes_total",
             "wire bytes read from the upstream", traffic.upstream_wire_bytes),
            ("repro_proxy_downstream_wire_bytes_total",
             "wire bytes written to clients", traffic.downstream_wire_bytes),
            ("repro_proxy_cache_hits_total", "fresh cache hits", cache.hits),
            ("repro_proxy_cache_misses_total",
             "lookups that needed the upstream", cache.misses),
            ("repro_proxy_cache_expirations_total",
             "lookups that found a TTL-expired entry", cache.expirations),
            ("repro_proxy_cache_insertions_total", "entries stored",
             cache.insertions),
            ("repro_proxy_cache_replacements_total",
             "inserts that overwrote a live entry", cache.replacements),
            ("repro_proxy_cache_evictions_total", "LRU evictions",
             cache.evictions),
            ("repro_proxy_cache_invalidations_total", "explicit entry drops",
             cache.invalidations),
            ("repro_proxy_cache_rejections_total",
             "puts refused (uncachable/oversized)", cache.rejections),
            ("repro_proxy_cache_hit_bytes_total", "body bytes served from cache",
             cache.hit_bytes),
            ("repro_proxy_connections_accepted_total", "connections accepted",
             self.serve_stats.connections_accepted),
            ("repro_proxy_connections_rejected_total",
             "connections turned away with 503",
             self.serve_stats.connections_rejected),
            ("repro_proxy_protocol_errors_total", "malformed inbound framing",
             self.serve_stats.protocol_errors),
            ("repro_proxy_timeouts_total", "upstream exchanges answered 504",
             self.serve_stats.timeouts),
            ("repro_proxy_admin_requests_total",
             "metrics/health probes answered locally",
             self.serve_stats.admin_requests),
        ]
        lines: list[str] = []
        for name, help_text, value in counters:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} counter")
            lines.append(format_sample(name, (), value))
        lines.append("# TYPE repro_proxy_responses_by_status_total counter")
        for status in sorted(self.serve_stats.status_counts):
            lines.append(
                format_sample(
                    "repro_proxy_responses_by_status_total",
                    (("status", str(status)),),
                    self.serve_stats.status_counts[status],
                )
            )
        gauges: list[tuple[str, str, float]] = [
            ("repro_proxy_cache_entries", "live cache entries", len(self.cache)),
            ("repro_proxy_cache_size_bytes", "bytes held by the cache",
             self.cache.size_bytes),
            ("repro_proxy_cache_capacity_bytes", "cache byte budget",
             self.cache.capacity_bytes),
            ("repro_proxy_cache_hit_rate", "hits over all lookups",
             cache.hit_rate),
            ("repro_proxy_active_connections", "currently open client connections",
             self.serve_stats.active_connections),
        ]
        if now is not None and self.serve_stats.started_at is not None:
            gauges.append(
                ("repro_proxy_uptime_seconds", "seconds since start",
                 now - self.serve_stats.started_at)
            )
        for name, help_text, value in gauges:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(format_sample(name, (), value))
        return lines

    def _metrics_response(self) -> Response:
        body = "\n".join(self.prometheus_lines(self.clock())) + "\n"
        response = Response(status=200, body=body.encode())
        response.headers.set("Content-Type", PROMETHEUS_CONTENT_TYPE)
        return response

    def render(self, title: str = "proxy tier") -> str:
        """Aligned stats table (CLI exit report)."""
        traffic = self.stats
        cache = self.cache.stats
        saved = traffic.downstream_bytes - traffic.upstream_bytes
        rows: list[list[object]] = [
            ["requests (bypassed non-GET)",
             f"{traffic.requests} ({traffic.bypassed})"],
            ["upstream requests / errors",
             f"{traffic.upstream_requests} / {traffic.upstream_errors}"],
            ["cache hits / misses (hit rate)",
             f"{cache.hits} / {cache.misses} ({cache.hit_rate:.1%})"],
            ["revalidations (304 confirmed)",
             f"{traffic.revalidations} ({traffic.revalidated})"],
            ["entries / size",
             f"{len(self.cache)} / {self.cache.size_bytes} B"],
            ["insertions / evictions / invalidations / rejections",
             f"{cache.insertions} / {cache.evictions} / "
             f"{cache.invalidations} / {cache.rejections}"],
            ["body bytes upstream / downstream (saved)",
             f"{traffic.upstream_bytes} / {traffic.downstream_bytes} ({saved})"],
            ["wire bytes upstream / downstream",
             f"{traffic.upstream_wire_bytes} / {traffic.downstream_wire_bytes}"],
            ["connections accepted / rejected",
             f"{self.serve_stats.connections_accepted} / "
             f"{self.serve_stats.connections_rejected}"],
        ]
        return render_table(["metric", "value"], rows, title=title)
