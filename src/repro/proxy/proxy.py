"""Forward proxy-cache sitting between clients and the delta-server.

Completely delta-unaware, as the architecture requires: it caches whatever
is marked cachable (base-files) and forwards everything else.  Its value in
the class-based scheme is that *one* upstream base-file transfer serves
every client behind the proxy — "many different users will download the
same base-files from a proxy-cache" (Section VI-B).

This is the synchronous simulation object (used by ``repro.simulation``
and the baselines); :mod:`repro.proxy.server` runs the same cache
semantics as a live asyncio tier in front of a real delta-server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.http.messages import Request, Response
from repro.proxy.cache import LRUCache

UpstreamFn = Callable[[Request, float], Response]


@dataclass(slots=True)
class ProxyStats:
    """Traffic accounting on both sides of the proxy.

    ``upstream_bytes``/``downstream_bytes`` count response *bodies* (the
    conservation invariant ``downstream_bytes >= upstream_bytes`` holds
    whenever the cache produced at least one hit); the ``*_wire_bytes``
    fields — used by the live tier — count actual bytes on each wire.
    """

    requests: int = 0
    #: non-GET requests forwarded without consulting the cache
    bypassed: int = 0
    upstream_requests: int = 0
    upstream_bytes: int = 0
    downstream_bytes: int = 0
    #: live tier only: wire-level accounting for the byte-savings math
    upstream_wire_bytes: int = 0
    downstream_wire_bytes: int = 0
    #: conditional (If-None-Match) refreshes of TTL-expired entries …
    revalidations: int = 0
    #: … and how many came back 304 Not Modified (bytes saved)
    revalidated: int = 0
    #: upstream round-trips that failed (connect/protocol errors)
    upstream_errors: int = 0


class ProxyCache:
    """A caching forward proxy (synchronous simulation form)."""

    def __init__(
        self, upstream: UpstreamFn, capacity_bytes: int = 64 * 1024 * 1024
    ) -> None:
        self._upstream = upstream
        self.cache = LRUCache(capacity_bytes)
        self.stats = ProxyStats()

    def handle(self, request: Request, now: float) -> Response:
        """Serve from cache when possible, else forward upstream.

        Only GET responses are cachable — a 200 to a POST is a method
        side-effect's answer, not the resource's representation, and must
        never be stored under the URL and replayed to later GETs.  Every
        lookup path lands in the cache's hit/miss accounting: non-GETs
        count as bypass misses so ``hit_rate`` reflects all traffic.
        """
        self.stats.requests += 1
        is_get = request.method == "GET"
        if is_get:
            cached = self.cache.get(request.url, now)
            if cached is not None:
                self.stats.downstream_bytes += cached.content_length
                return cached
        else:
            self.stats.bypassed += 1
            self.cache.note_bypass()
        response = self._upstream(request, now)
        self.stats.upstream_requests += 1
        self.stats.upstream_bytes += response.content_length
        self.stats.downstream_bytes += response.content_length
        if is_get:
            self.cache.put(request.url, response, now)
        return response
