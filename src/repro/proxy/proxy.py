"""Forward proxy-cache sitting between clients and the delta-server.

Completely delta-unaware, as the architecture requires: it caches whatever
is marked cachable (base-files) and forwards everything else.  Its value in
the class-based scheme is that *one* upstream base-file transfer serves
every client behind the proxy — "many different users will download the
same base-files from a proxy-cache" (Section VI-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.http.messages import Request, Response
from repro.proxy.cache import LRUCache

UpstreamFn = Callable[[Request, float], Response]


@dataclass(slots=True)
class ProxyStats:
    """Traffic accounting on both sides of the proxy."""

    requests: int = 0
    upstream_requests: int = 0
    upstream_bytes: int = 0
    downstream_bytes: int = 0


class ProxyCache:
    """A caching forward proxy."""

    def __init__(
        self, upstream: UpstreamFn, capacity_bytes: int = 64 * 1024 * 1024
    ) -> None:
        self._upstream = upstream
        self.cache = LRUCache(capacity_bytes)
        self.stats = ProxyStats()

    def handle(self, request: Request, now: float) -> Response:
        """Serve from cache when possible, else forward upstream."""
        self.stats.requests += 1
        if request.method == "GET":
            cached = self.cache.get(request.url)
            if cached is not None:
                self.stats.downstream_bytes += cached.content_length
                return cached
        response = self._upstream(request, now)
        self.stats.upstream_requests += 1
        self.stats.upstream_bytes += response.content_length
        self.stats.downstream_bytes += response.content_length
        self.cache.put(request.url, response)
        return response
