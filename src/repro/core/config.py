"""Configuration for the class-based delta-encoding engine.

Defaults follow the paper's own choices where it states them:

* grouping tries ``N`` "less than 10", popularity split ``a`` (Section III);
* randomized base-file selection with ``K`` samples ("values of K around 10
  are enough", Table III uses 8) and sampling probability ``p`` (Table III
  uses 0.2);
* anonymization levels ``(M, N)`` with the rule of thumb "N should be at
  least twice as large as M" (Section V).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.delta.codec import DEFAULT_MAX_TARGET_LENGTH


class EvictionVariant(enum.Enum):
    """Eviction options for the randomized base-file algorithm (Sec. IV fn. 3)."""

    WORST = "worst"  # always evict the max-sum-of-deltas document
    PERIODIC_RANDOM = "periodic_random"  # periodically evict a random non-base
    TWO_SET = "two_set"  # candidate set + independent reference-sample set


#: valid values for :attr:`GroupingConfig.policy`
GROUPING_POLICIES = ("sketch", "scan")


@dataclass(frozen=True, slots=True)
class GroupingConfig:
    """Knobs of the grouping mechanism (paper Section III)."""

    #: A matching occurs when the (estimated) delta is below this fraction
    #: of the document size.
    match_threshold: float = 0.15
    #: Maximum classes probed per request ("never considers more than N").
    max_tries: int = 8
    #: Fraction ``a`` of tries spent on the most popular classes; the rest
    #: are random picks among the remaining eligible classes.
    popular_fraction: float = 0.5
    #: Estimate closeness with the light differ instead of the full one.
    use_light_estimator: bool = True
    #: Stop at the first matching class (the paper's preferred option)
    #: instead of probing all ``max_tries`` and picking the best match.
    first_match: bool = True
    #: Candidate selection: ``"sketch"`` consults the MinHash/LSH index
    #: first and light-estimates only its (small) candidate set;
    #: ``"scan"`` is Section III's literal procedure — every same-server
    #: class is eligible when no same-hint class exists — kept as the
    #: parity baseline (O(classes) per fresh-hint URL).
    policy: str = "sketch"
    #: Byte-shingle window hashed into the MinHash signature.
    sketch_shingle_size: int = 16
    #: Stride between shingle windows (overlap = size - step).
    sketch_shingle_step: int = 8
    #: LSH banding geometry: ``bands`` groups of ``rows`` signature slots.
    #: Candidate recall for Jaccard similarity ``j`` is
    #: ``1 - (1 - j^rows)^bands`` — 8×4 recalls j=0.9 with p~0.9998.
    sketch_bands: int = 8
    sketch_rows: int = 4

    def __post_init__(self) -> None:
        if not 0 < self.match_threshold <= 1:
            raise ValueError(f"match_threshold must be in (0, 1], got {self.match_threshold}")
        if self.max_tries < 1:
            raise ValueError(f"max_tries must be >= 1, got {self.max_tries}")
        if not 0 <= self.popular_fraction <= 1:
            raise ValueError(f"popular_fraction must be in [0, 1], got {self.popular_fraction}")
        if self.policy not in GROUPING_POLICIES:
            raise ValueError(
                f"policy must be one of {GROUPING_POLICIES}, got {self.policy!r}"
            )
        if self.sketch_shingle_size < 1:
            raise ValueError(
                f"sketch_shingle_size must be >= 1, got {self.sketch_shingle_size}"
            )
        if self.sketch_shingle_step < 1:
            raise ValueError(
                f"sketch_shingle_step must be >= 1, got {self.sketch_shingle_step}"
            )
        if self.sketch_bands < 1 or self.sketch_rows < 1:
            raise ValueError(
                "sketch_bands and sketch_rows must be >= 1, got "
                f"{self.sketch_bands}x{self.sketch_rows}"
            )


@dataclass(frozen=True, slots=True)
class BaseFileConfig:
    """Knobs of base-file selection and rebasing (paper Section IV)."""

    #: Sampling probability ``p``: each response becomes a candidate with
    #: this probability.
    sample_probability: float = 0.2
    #: Candidate store capacity ``K``.
    capacity: int = 8
    eviction: EvictionVariant = EvictionVariant.WORST
    #: For PERIODIC_RANDOM: every this many evictions, evict a random
    #: stored document (excluding the current base-file) instead of the worst.
    random_evict_period: int = 4
    #: Minimum simulated seconds between group-rebases.  Rebasing is
    #: expensive for clients (their cached base-file is invalidated) and
    #: restarts anonymization, so the default is deliberately long.
    rebase_timeout: float = 1800.0
    #: A group-rebase requires the challenger to beat the incumbent's mean
    #: delta by this factor (hysteresis; 1.0 rebases on any improvement).
    improvement_factor: float = 1.25
    #: Basic-rebase trigger: smoothed delta/document size ratio above this
    #: means the base-file has drifted badly and is replaced outright.
    basic_rebase_ratio: float = 0.5
    #: EWMA weight for the smoothed delta-size ratio.
    ratio_smoothing: float = 0.25

    def __post_init__(self) -> None:
        if not 0 < self.sample_probability <= 1:
            raise ValueError(
                f"sample_probability must be in (0, 1], got {self.sample_probability}"
            )
        if self.capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {self.capacity}")
        if self.improvement_factor < 1:
            raise ValueError(
                f"improvement_factor must be >= 1, got {self.improvement_factor}"
            )


@dataclass(frozen=True, slots=True)
class AnonymizationConfig:
    """Knobs of base-file anonymization (paper Section V)."""

    enabled: bool = True
    #: ``N``: documents from distinct users compared against the base-file.
    #: The default matches Table IV's (M=2, N=5) row; until N distinct
    #: users have visited a class its base-file cannot be distributed, so
    #: large N delays delta service on unpopular classes.
    documents: int = 5
    #: ``M``: a byte-chunk survives only if common with at least M of them.
    min_count: int = 2

    def __post_init__(self) -> None:
        if self.enabled:
            if self.documents < 1:
                raise ValueError(f"documents must be >= 1, got {self.documents}")
            if not 1 <= self.min_count <= self.documents:
                raise ValueError(
                    f"min_count must be in [1, documents], got {self.min_count}"
                )


#: valid values for :attr:`DeltaServerConfig.engine_mode`
ENGINE_MODES = ("sharded", "serialized")


@dataclass(frozen=True, slots=True)
class DeltaServerConfig:
    """Top-level configuration of a :class:`~repro.core.delta_server.DeltaServer`."""

    grouping: GroupingConfig = field(default_factory=GroupingConfig)
    base_file: BaseFileConfig = field(default_factory=BaseFileConfig)
    anonymization: AnonymizationConfig = field(default_factory=AnonymizationConfig)
    #: zlib level for compressing deltas ("deltas are compressed using gzip").
    compression_level: int = 6
    #: Documents smaller than this are served directly; the delta machinery
    #: is not worth its overhead on tiny responses.
    min_document_bytes: int = 256
    #: Documents larger than this are served directly too — it bounds what
    #: the engine will index/encode, and it is the decode-side
    #: ``max_target_length`` bound clients and proxies enforce against
    #: hostile payloads (see :data:`repro.delta.codec.DEFAULT_MAX_TARGET_LENGTH`).
    max_document_bytes: int = DEFAULT_MAX_TARGET_LENGTH
    #: Hard server-side budget for base-file storage (None = unlimited).
    #: Under pressure, previous-generation bases are dropped first, then
    #: whole base-files of the coldest classes (see repro.core.storage).
    storage_budget_bytes: int | None = None
    #: Deterministic seed for all randomized components.
    seed: int = 2002
    #: Concurrency model: ``"sharded"`` (per-class locks, off-lock origin
    #: fetch, snapshot-encode-commit delta generation) or ``"serialized"``
    #: (one global lock held across the whole pipeline — the paper's
    #: single-CPU delta-server, kept as the benchmark baseline).
    engine_mode: str = "sharded"
    #: How many times a delta commit that lost a rebase race is retried
    #: against the new base version before falling back to a full response.
    commit_retries: int = 1

    def __post_init__(self) -> None:
        if self.engine_mode not in ENGINE_MODES:
            raise ValueError(
                f"engine_mode must be one of {ENGINE_MODES}, got {self.engine_mode!r}"
            )
        if self.commit_retries < 0:
            raise ValueError(
                f"commit_retries must be >= 0, got {self.commit_retries}"
            )
        if self.max_document_bytes < self.min_document_bytes:
            raise ValueError(
                f"max_document_bytes ({self.max_document_bytes}) must be >= "
                f"min_document_bytes ({self.min_document_bytes})"
            )
