"""The grouping mechanism: assigning requests to document classes.

Implements Section III's search procedure with all four heuristics:

1. URLs are partitioned into server-part / hint-part / rest (admin regex
   rules with heuristic fallback, :mod:`repro.url`); a new class is created
   outright when no existing class shares the request's server-part, since
   "it is very unlikely that two documents originating from different
   servers will be close enough".
2. If classes share the request's hint-part, only those are considered.
3. At most ``N`` classes are probed; no match after ``N`` tries creates a
   new class.
4. The first ``a·N`` probes go to the most popular eligible classes, the
   remaining ``(1-a)·N`` to random picks among the rest; the search stops at
   the first match (the paper's preferred variant) unless configured to
   probe all ``N`` and keep the best.
5. Closeness is *estimated* with the light differ, not measured with the
   full one.

A *matching* occurs when the estimated delta is below
``match_threshold × len(document)``.

Candidate selection — the sketch index
--------------------------------------

The paper's procedure considers *every* same-server class when no
same-hint class exists, and even the popular-first ordering is
O(classes) per request — the scaling wall for million-URL corpora.
Under the default ``policy="sketch"`` a MinHash/LSH index
(:mod:`repro.core.sketch`) replaces that scan: the request document is
sketched once (about the cost of one light estimate), the LSH lookup
returns the classes whose *base content* is near-duplicate in O(1), and
only that small candidate set is popularity-ordered and light-estimated
as the confirming stage.  Heuristic 2 is preserved: when same-hint
classes exist they stay the candidate pool (the sketch only narrows it
when the pool exceeds the probe budget).  ``policy="scan"`` keeps the
literal exhaustive procedure as a parity baseline.

Manual grouping — "the administrator has the option to manually group URLs
into classes" — is supported via regex pin rules checked before the
automatic search.

Concurrency: classification is sharded.  The fast path (a URL already
grouped) is lock-free — one dict read against the url → class map.  The
slow path (the actual search) serializes on a *shard lock* keyed by the
request's ``(server, hint)`` pair, so searches for different sites — and
different hints of one site — run in parallel while two racing first
requests for the same key can never fork a class.  Probing a candidate
class's light index takes that class's own lock only for the cached-index
lookup; the estimate itself runs against the immutable index outside it.
Registry maps are guarded by a single brief registry lock.  Each shard
draws its random probes from its own seeded RNG (derived from the
grouper seed and the shard key), so concurrent shards never interleave
one generator's state and runs are reproducible regardless of thread
scheduling.
"""

from __future__ import annotations

import math
import random
import re
import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable
from zlib import crc32

from repro.core.classes import DocumentClass
from repro.core.config import GroupingConfig
from repro.core.sketch import MinHashSketcher, SketchIndex
from repro.delta.light import LightEstimator
from repro.metrics.registry import MetricsRegistry
from repro.url.parts import URLParts
from repro.url.rules import RuleBook

#: signature of the exact-delta probe: measured delta between a candidate
#: class's (cached-index) base and the document, or None if not probeable.
ExactDelta = Callable[[DocumentClass, bytes], "int | None"]


@dataclass(slots=True)
class GroupingStats:
    """Search diagnostics for Section VI-B's grouping evaluation."""

    requests: int = 0
    matched: int = 0
    created: int = 0
    manual: int = 0
    total_tries: int = 0
    #: sketch-index lookups that produced >= 1 candidate / none at all
    sketch_hits: int = 0
    sketch_misses: int = 0
    #: histogram: tries_needed -> count (successful matches only)
    tries_histogram: dict[int, int] = field(default_factory=dict)

    @property
    def mean_tries(self) -> float:
        """Average probes per successful match ("a couple of tries")."""
        if not self.matched:
            return 0.0
        return sum(t * c for t, c in self.tries_histogram.items()) / self.matched


class Grouper:
    """Groups URL-requests into document classes."""

    def __init__(
        self,
        config: GroupingConfig,
        rulebook: RuleBook,
        estimator: LightEstimator,
        class_factory: Callable[[str, str], DocumentClass],
        seed: int = 2002,
        exact_delta: ExactDelta | None = None,
        member_hook: Callable[[str, str], None] | None = None,
        hit_hook: Callable[[str, int], None] | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self._config = config
        self._rulebook = rulebook
        self._estimator = estimator
        self._class_factory = class_factory
        self._seed = seed
        self._exact_delta = exact_delta
        #: persistence hook: fired once per (class_id, url) adoption so the
        #: store can journal membership; never fired during warm restart.
        self._member_hook = member_hook
        #: persistence hook: fired with the absolute per-class hit count on
        #: every increment, so popularity (which orders heuristic-4 probes)
        #: survives a restart; the store side decides how often to journal.
        self._hit_hook = hit_hook
        self._metrics = metrics
        self.stats = GroupingStats()

        if config.policy == "sketch":
            self._sketcher: MinHashSketcher | None = MinHashSketcher(
                shingle_size=config.sketch_shingle_size,
                shingle_step=config.sketch_shingle_step,
                bands=config.sketch_bands,
                rows=config.sketch_rows,
            )
            self._sketch_index: SketchIndex | None = SketchIndex(self._sketcher)
        else:
            self._sketcher = None
            self._sketch_index = None

        self._classes: dict[str, DocumentClass] = {}
        self._by_server: dict[str, list[DocumentClass]] = {}
        self._by_key: dict[tuple[str, str], list[DocumentClass]] = {}
        self._url_to_class: dict[str, str] = {}
        self._manual_rules: list[tuple[re.Pattern[str], str]] = []
        # Registry lock: guards the maps above (brief, never held across a
        # probe or an estimate).  Shard locks serialize the search per
        # (server, hint) key; stats lock keeps search diagnostics exact.
        self._registry_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._shard_locks: dict[tuple[str, str], threading.Lock] = {}
        self._shard_rngs: dict[tuple[str, str], random.Random] = {}

    # -- registry ------------------------------------------------------------

    @property
    def classes(self) -> list[DocumentClass]:
        with self._registry_lock:
            return list(self._classes.values())

    def class_by_id(self, class_id: str) -> DocumentClass:
        return self._classes[class_id]

    def class_for_url(self, url: str) -> DocumentClass | None:
        """The class ``url`` has been grouped into, or None.

        One dict read against the url → class map the grouper maintains on
        every membership change — O(1), replacing the old engine-side
        O(classes × members) scan, and safe without any lock (classes are
        never deleted; dict reads are atomic).
        """
        class_id = self._url_to_class.get(url)
        if class_id is None:
            return None
        return self._classes.get(class_id)

    def class_count(self) -> int:
        with self._registry_lock:
            return len(self._classes)

    def pin_manual(self, url_pattern: str, class_id: str) -> None:
        """Manually route URLs matching ``url_pattern`` to ``class_id``.

        The class must already exist (create it by replaying one request or
        via :meth:`create_class`).  The existence check happens under the
        registry lock, atomically with appending the rule, so a rule can
        never be registered for an id that was concurrently observed as
        absent (and the error is raised before any state changes).
        """
        compiled = re.compile(url_pattern)
        with self._registry_lock:
            if class_id not in self._classes:
                raise KeyError(f"unknown class {class_id!r}")
            self._manual_rules.append((compiled, class_id))

    def create_class(self, parts: URLParts) -> DocumentClass:
        """Create (and register) an empty class for a URL's parts."""
        cls = self._class_factory(parts.server, parts.hint)
        with self._registry_lock:
            self._classes[cls.class_id] = cls
            self._by_server.setdefault(parts.server, []).append(cls)
            self._by_key.setdefault(parts.key, []).append(cls)
        return cls

    def _shard_lock(self, key: tuple[str, str]) -> threading.Lock:
        lock = self._shard_locks.get(key)
        if lock is None:
            with self._registry_lock:
                lock = self._shard_locks.setdefault(key, threading.Lock())
        return lock

    def _shard_rng(self, key: tuple[str, str]) -> random.Random:
        """This shard's private seeded RNG (heuristic-4 random picks).

        Derived from the grouper seed and the shard key, so the draw
        sequence of one shard is a pure function of that shard's own
        search history — concurrent shards cannot interleave generator
        state, and reordering *across* shards cannot change any shard's
        draws.  Only ever advanced under the shard's lock.
        """
        rng = self._shard_rngs.get(key)
        if rng is None:
            with self._registry_lock:
                rng = self._shard_rngs.get(key)
                if rng is None:
                    derived = (self._seed << 32) ^ crc32(
                        f"{key[0]}\x1f{key[1]}".encode()
                    )
                    rng = self._shard_rngs.setdefault(key, random.Random(derived))
        return rng

    # -- the grouping search ------------------------------------------------------

    def classify(
        self,
        url: str,
        document: bytes,
        timings: dict[str, float] | None = None,
    ) -> tuple[DocumentClass, bool]:
        """Assign ``(url, document)`` to a class; returns ``(class, created)``.

        URLs keep their class once grouped — subsequent requests for a known
        URL skip the search entirely (and skip every lock except the hit
        counter's class lock), so search cost is paid once per distinct
        document, not once per request.  Time spent blocked on the shard
        lock is added to ``timings["lock_wait"]`` when a dict is passed.
        """
        with self._stats_lock:
            self.stats.requests += 1
        known = self.class_for_url(url)
        if known is not None:
            self._note_hit(known)
            return known, False

        parts = self._rulebook.partition(url)
        shard = self._shard_lock(parts.key)
        entered = perf_counter()
        shard.acquire()
        if timings is not None:
            timings["lock_wait"] = (
                timings.get("lock_wait", 0.0) + perf_counter() - entered
            )
        try:
            # Double-check under the shard lock: a racing request for the
            # same URL may have grouped it while we waited.
            known = self.class_for_url(url)
            if known is not None:
                self._note_hit(known)
                return known, False

            manual = self._match_manual(url)
            if manual is not None:
                self._adopt(manual, url)
                with self._stats_lock:
                    self.stats.manual += 1
                return manual, False

            # Sketch policy: one signature per searched document.  It
            # drives candidate lookup and, when the search fails, becomes
            # the new class's registered signature for free (the document
            # is adopted as that class's base).
            signature = (
                self._sketcher.signature(document)
                if self._sketcher is not None
                else None
            )

            match = self._search(parts, document, signature)
            if match is not None:
                self._adopt(match, url)
                with self._stats_lock:
                    self.stats.matched += 1
                return match, False

            cls = self.create_class(parts)
            self._adopt(cls, url)
            if signature is not None and self._sketch_index is not None:
                with cls.lock:
                    cls.note_signature(signature, document)
                self._sketch_index.register(cls.class_id, signature)
            with self._stats_lock:
                self.stats.created += 1
            return cls, True
        finally:
            shard.release()

    def _match_manual(self, url: str) -> DocumentClass | None:
        with self._registry_lock:
            rules = list(self._manual_rules)
        for pattern, class_id in rules:
            if pattern.match(url):
                return self._classes[class_id]
        return None

    def _note_hit(self, cls: DocumentClass) -> None:
        """Count one request against a class, feeding the persistence hook."""
        with cls.lock:
            cls.stats.hits += 1
            hits = cls.stats.hits
        if self._hit_hook is not None:
            self._hit_hook(cls.class_id, hits)

    def _adopt(self, cls: DocumentClass, url: str) -> None:
        with cls.lock:
            cls.add_member(url)
            cls.stats.hits += 1
            hits = cls.stats.hits
        with self._registry_lock:
            self._url_to_class[url] = cls.class_id
        if self._member_hook is not None:
            self._member_hook(cls.class_id, url)
        if self._hit_hook is not None:
            self._hit_hook(cls.class_id, hits)

    def restore_class(
        self,
        cls: DocumentClass,
        members: list[str],
        *,
        hits: int = 0,
        signature: "tuple[int, ...] | list[int] | None" = None,
    ) -> None:
        """Register a rehydrated class, membership, popularity and sketch.

        Everything is already on disk, so the member/hit hooks are *not*
        fired — re-journaling on every restart would grow the journal
        unboundedly.  ``hits`` restores the popularity counter that orders
        heuristic-4 probes (it used to reset to 0 on restart, silently
        discarding the popular-first ordering).  ``signature`` is the
        persisted base sketch; when absent (or from a different sketch
        geometry) the restored base is re-sketched so the class is still
        findable through the LSH index.  Called before the engine serves
        traffic — and after the base has been restored — but takes the
        normal locks anyway so it is safe regardless.
        """
        with self._registry_lock:
            self._classes[cls.class_id] = cls
            self._by_server.setdefault(cls.server, []).append(cls)
            self._by_key.setdefault(cls.key, []).append(cls)
        with cls.lock:
            for url in members:
                cls.add_member(url)
            if hits > cls.stats.hits:
                cls.stats.hits = hits
        with self._registry_lock:
            for url in members:
                self._url_to_class[url] = cls.class_id
        if self._sketch_index is None:
            return
        assert self._sketcher is not None
        with cls.lock:
            if signature is not None and len(signature) == self._sketcher.num_perm:
                restored = tuple(int(slot) for slot in signature)
                base = (
                    cls.distributable_base
                    if cls.can_serve_deltas
                    else cls.raw_base
                )
                cls.note_signature(restored, base)
                self._sketch_index.register(cls.class_id, restored)
            else:
                self.refresh_sketch(cls)

    def refresh_sketch(self, cls: DocumentClass) -> "tuple[int, ...] | None":
        """Re-register ``cls`` in the LSH index if its base changed.

        Caller holds ``cls.lock`` (the engine's ingest path) or owns the
        class exclusively (warm restart).  Cheap when nothing changed: the
        cached signature is keyed by base object identity, so the common
        case is two attribute reads.  Returns the current signature (what
        the store should persist alongside the committed base), or None
        under the scan policy / for a base-less class.
        """
        if self._sketch_index is None or self._sketcher is None:
            return None
        base = cls.distributable_base if cls.can_serve_deltas else cls.raw_base
        if base is None:
            # release_base()/quarantine() clear the cached signature before
            # this runs, so unregister unconditionally (it is idempotent) —
            # a base-less class must not linger in the candidate index.
            cls.note_signature(None, None)
            self._sketch_index.unregister(cls.class_id)
            return None
        cached = cls.signature_for(base)
        if cached is not None:
            return cached
        signature = self._sketcher.signature(base)
        cls.note_signature(signature, base)
        self._sketch_index.register(cls.class_id, signature)
        return signature

    def _search(
        self,
        parts: URLParts,
        document: bytes,
        signature: "tuple[int, ...] | None" = None,
    ) -> DocumentClass | None:
        if signature is not None:
            eligible = self._sketch_eligible(parts, signature)
        else:
            eligible = self._eligible(parts)
        if not eligible:
            return None
        threshold = self._config.match_threshold * len(document)
        best: DocumentClass | None = None
        best_estimate = math.inf
        best_tries = 0
        tries = 0
        for cls in self._probe_order(eligible, self._shard_rng(parts.key)):
            if tries >= self._config.max_tries:
                break
            estimate = self._estimate(cls, document)
            if estimate is None:
                continue  # class has no base yet; not probeable
            tries += 1
            with self._stats_lock:
                self.stats.total_tries += 1
            if estimate <= threshold:
                if self._config.first_match:
                    self._record_tries(tries)
                    return cls
                if estimate < best_estimate:
                    # Remember the probe count *at which* the best match
                    # surfaced; recording the loop-final count inflated
                    # the tries histogram in best-match mode.
                    best, best_estimate, best_tries = cls, estimate, tries
        if best is not None:
            self._record_tries(best_tries)
        return best

    def _record_tries(self, tries: int) -> None:
        with self._stats_lock:
            self.stats.tries_histogram[tries] = (
                self.stats.tries_histogram.get(tries, 0) + 1
            )

    def _eligible(self, parts: URLParts) -> list[DocumentClass]:
        """Heuristic 2: restrict to same-hint classes when any exist."""
        with self._registry_lock:
            same_hint = self._by_key.get(parts.key)
            if same_hint:
                return list(same_hint)
            return list(self._by_server.get(parts.server, ()))

    def _sketch_eligible(
        self, parts: URLParts, signature: tuple[int, ...]
    ) -> list[DocumentClass]:
        """Sketch-policy candidate selection (replaces the full scan).

        Same-hint pools no larger than the probe budget are returned
        whole — probing them all is already O(1), and it keeps heuristic
        2's recall even when a hinted class's base drifted away from the
        request's content.  Larger hinted pools are narrowed to the LSH
        candidates inside them (falling back to the whole pool when the
        sketch knows none of them).  With no same-hint class at all, the
        LSH lookup *replaces* the same-server scan: only classes whose
        base content collides with the document in at least one band are
        considered, in O(candidates) instead of O(classes).
        """
        assert self._sketch_index is not None
        with self._registry_lock:
            same_hint = self._by_key.get(parts.key)
            hinted = list(same_hint) if same_hint else None
        if hinted is not None and len(hinted) <= self._config.max_tries:
            return hinted
        candidate_ids = self._sketch_index.candidates(signature)
        if hinted is not None:
            hint_ids = {cls.class_id for cls in hinted}
            eligible = [
                self._classes[cid] for cid in candidate_ids if cid in hint_ids
            ]
            self._note_sketch(len(eligible))
            return eligible or hinted
        server = parts.server
        eligible = []
        for cid in candidate_ids:
            # Lock-free dict read, same contract as class_for_url: classes
            # are never deleted and dict reads are atomic.
            cls = self._classes.get(cid)
            if cls is not None and cls.server == server:
                eligible.append(cls)
        self._note_sketch(len(eligible))
        return eligible

    def _note_sketch(self, candidates: int) -> None:
        """Record one LSH lookup's outcome (stats + metrics families)."""
        with self._stats_lock:
            if candidates:
                self.stats.sketch_hits += 1
            else:
                self.stats.sketch_misses += 1
        if self._metrics is None:
            return
        if candidates:
            self._metrics.inc(
                "grouping_sketch_hits_total",
                help="LSH candidate lookups that produced at least one candidate",
            )
        else:
            self._metrics.inc(
                "grouping_sketch_misses_total",
                help="LSH candidate lookups that produced no candidate",
            )
        self._metrics.observe(
            "grouping_sketch_candidates",
            candidates,
            help="candidate classes returned per LSH sketch lookup",
        )

    def _probe_order(
        self, eligible: list[DocumentClass], rng: random.Random
    ) -> list[DocumentClass]:
        """Heuristic 3: ``a·N`` most popular first, then random others."""
        n = self._config.max_tries
        popular_quota = math.ceil(self._config.popular_fraction * n)
        by_popularity = sorted(eligible, key=lambda c: c.popularity, reverse=True)
        head = by_popularity[:popular_quota]
        rest = by_popularity[popular_quota:]
        if rest:
            sample_size = min(len(rest), n - len(head))
            tail = rng.sample(rest, sample_size) if sample_size > 0 else []
        else:
            tail = []
        return head + tail

    def _estimate(self, cls: DocumentClass, document: bytes) -> int | None:
        """Estimated delta between the class base and ``document``.

        Only the cached-index lookup holds the candidate's class lock;
        the estimate runs against the immutable index outside it, so a
        cross-shard probe never blocks another shard's pipeline for the
        duration of a diff.
        """
        if self._config.use_light_estimator:
            with cls.lock:
                index = cls.light_index()
            if index is None:
                return None
            return self._estimator.estimate_with_index(index, document)
        if self._exact_delta is None:
            return None
        return self._exact_delta(cls, document)
