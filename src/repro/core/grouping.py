"""The grouping mechanism: assigning requests to document classes.

Implements Section III's search procedure with all four heuristics:

1. URLs are partitioned into server-part / hint-part / rest (admin regex
   rules with heuristic fallback, :mod:`repro.url`); a new class is created
   outright when no existing class shares the request's server-part, since
   "it is very unlikely that two documents originating from different
   servers will be close enough".
2. If classes share the request's hint-part, only those are considered.
3. At most ``N`` classes are probed; no match after ``N`` tries creates a
   new class.
4. The first ``a·N`` probes go to the most popular eligible classes, the
   remaining ``(1-a)·N`` to random picks among the rest; the search stops at
   the first match (the paper's preferred variant) unless configured to
   probe all ``N`` and keep the best.
5. Closeness is *estimated* with the light differ, not measured with the
   full one.

A *matching* occurs when the estimated delta is below
``match_threshold × len(document)``.

Manual grouping — "the administrator has the option to manually group URLs
into classes" — is supported via regex pin rules checked before the
automatic search.

Concurrency: classification is sharded.  The fast path (a URL already
grouped) is lock-free — one dict read against the url → class map.  The
slow path (the actual search) serializes on a *shard lock* keyed by the
request's ``(server, hint)`` pair, so searches for different sites — and
different hints of one site — run in parallel while two racing first
requests for the same key can never fork a class.  Probing a candidate
class's light index takes that class's own lock only for the cached-index
lookup; the estimate itself runs against the immutable index outside it.
Registry maps are guarded by a single brief registry lock.
"""

from __future__ import annotations

import math
import random
import re
import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable

from repro.core.classes import DocumentClass
from repro.core.config import GroupingConfig
from repro.delta.light import LightEstimator
from repro.url.parts import URLParts
from repro.url.rules import RuleBook

#: signature of the exact-delta probe: measured delta between a candidate
#: class's (cached-index) base and the document, or None if not probeable.
ExactDelta = Callable[[DocumentClass, bytes], "int | None"]


@dataclass(slots=True)
class GroupingStats:
    """Search diagnostics for Section VI-B's grouping evaluation."""

    requests: int = 0
    matched: int = 0
    created: int = 0
    manual: int = 0
    total_tries: int = 0
    #: histogram: tries_needed -> count (successful matches only)
    tries_histogram: dict[int, int] = field(default_factory=dict)

    @property
    def mean_tries(self) -> float:
        """Average probes per successful match ("a couple of tries")."""
        if not self.matched:
            return 0.0
        return sum(t * c for t, c in self.tries_histogram.items()) / self.matched


class Grouper:
    """Groups URL-requests into document classes."""

    def __init__(
        self,
        config: GroupingConfig,
        rulebook: RuleBook,
        estimator: LightEstimator,
        class_factory: Callable[[str, str], DocumentClass],
        rng: random.Random,
        exact_delta: ExactDelta | None = None,
        member_hook: Callable[[str, str], None] | None = None,
    ) -> None:
        self._config = config
        self._rulebook = rulebook
        self._estimator = estimator
        self._class_factory = class_factory
        self._rng = rng
        self._exact_delta = exact_delta
        #: persistence hook: fired once per (class_id, url) adoption so the
        #: store can journal membership; never fired during warm restart.
        self._member_hook = member_hook
        self.stats = GroupingStats()

        self._classes: dict[str, DocumentClass] = {}
        self._by_server: dict[str, list[DocumentClass]] = {}
        self._by_key: dict[tuple[str, str], list[DocumentClass]] = {}
        self._url_to_class: dict[str, str] = {}
        self._manual_rules: list[tuple[re.Pattern[str], str]] = []
        # Registry lock: guards the maps above (brief, never held across a
        # probe or an estimate).  Shard locks serialize the search per
        # (server, hint) key; stats lock keeps search diagnostics exact.
        self._registry_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._shard_locks: dict[tuple[str, str], threading.Lock] = {}

    # -- registry ------------------------------------------------------------

    @property
    def classes(self) -> list[DocumentClass]:
        with self._registry_lock:
            return list(self._classes.values())

    def class_by_id(self, class_id: str) -> DocumentClass:
        return self._classes[class_id]

    def class_for_url(self, url: str) -> DocumentClass | None:
        """The class ``url`` has been grouped into, or None.

        One dict read against the url → class map the grouper maintains on
        every membership change — O(1), replacing the old engine-side
        O(classes × members) scan, and safe without any lock (classes are
        never deleted; dict reads are atomic).
        """
        class_id = self._url_to_class.get(url)
        if class_id is None:
            return None
        return self._classes.get(class_id)

    def class_count(self) -> int:
        with self._registry_lock:
            return len(self._classes)

    def pin_manual(self, url_pattern: str, class_id: str) -> None:
        """Manually route URLs matching ``url_pattern`` to ``class_id``.

        The class must already exist (create it by replaying one request or
        via :meth:`create_class`).
        """
        if class_id not in self._classes:
            raise KeyError(f"unknown class {class_id!r}")
        with self._registry_lock:
            self._manual_rules.append((re.compile(url_pattern), class_id))

    def create_class(self, parts: URLParts) -> DocumentClass:
        """Create (and register) an empty class for a URL's parts."""
        cls = self._class_factory(parts.server, parts.hint)
        with self._registry_lock:
            self._classes[cls.class_id] = cls
            self._by_server.setdefault(parts.server, []).append(cls)
            self._by_key.setdefault(parts.key, []).append(cls)
        return cls

    def _shard_lock(self, key: tuple[str, str]) -> threading.Lock:
        lock = self._shard_locks.get(key)
        if lock is None:
            with self._registry_lock:
                lock = self._shard_locks.setdefault(key, threading.Lock())
        return lock

    # -- the grouping search ------------------------------------------------------

    def classify(
        self,
        url: str,
        document: bytes,
        timings: dict[str, float] | None = None,
    ) -> tuple[DocumentClass, bool]:
        """Assign ``(url, document)`` to a class; returns ``(class, created)``.

        URLs keep their class once grouped — subsequent requests for a known
        URL skip the search entirely (and skip every lock except the hit
        counter's class lock), so search cost is paid once per distinct
        document, not once per request.  Time spent blocked on the shard
        lock is added to ``timings["lock_wait"]`` when a dict is passed.
        """
        with self._stats_lock:
            self.stats.requests += 1
        known = self.class_for_url(url)
        if known is not None:
            with known.lock:
                known.stats.hits += 1
            return known, False

        parts = self._rulebook.partition(url)
        shard = self._shard_lock(parts.key)
        entered = perf_counter()
        shard.acquire()
        if timings is not None:
            timings["lock_wait"] = (
                timings.get("lock_wait", 0.0) + perf_counter() - entered
            )
        try:
            # Double-check under the shard lock: a racing request for the
            # same URL may have grouped it while we waited.
            known = self.class_for_url(url)
            if known is not None:
                with known.lock:
                    known.stats.hits += 1
                return known, False

            manual = self._match_manual(url)
            if manual is not None:
                self._adopt(manual, url)
                with self._stats_lock:
                    self.stats.manual += 1
                return manual, False

            match = self._search(parts, document)
            if match is not None:
                self._adopt(match, url)
                with self._stats_lock:
                    self.stats.matched += 1
                return match, False

            cls = self.create_class(parts)
            self._adopt(cls, url)
            with self._stats_lock:
                self.stats.created += 1
            return cls, True
        finally:
            shard.release()

    def _match_manual(self, url: str) -> DocumentClass | None:
        with self._registry_lock:
            rules = list(self._manual_rules)
        for pattern, class_id in rules:
            if pattern.match(url):
                return self._classes[class_id]
        return None

    def _adopt(self, cls: DocumentClass, url: str) -> None:
        with cls.lock:
            cls.add_member(url)
            cls.stats.hits += 1
        with self._registry_lock:
            self._url_to_class[url] = cls.class_id
        if self._member_hook is not None:
            self._member_hook(cls.class_id, url)

    def restore_class(self, cls: DocumentClass, members: list[str]) -> None:
        """Register a rehydrated class and its membership (warm restart).

        Everything is already on disk, so the member hook is *not* fired —
        re-journaling the membership on every restart would grow the
        journal unboundedly.  Called before the engine serves traffic, but
        takes the normal locks anyway so it is safe regardless.
        """
        with self._registry_lock:
            self._classes[cls.class_id] = cls
            self._by_server.setdefault(cls.server, []).append(cls)
            self._by_key.setdefault(cls.key, []).append(cls)
        with cls.lock:
            for url in members:
                cls.add_member(url)
        with self._registry_lock:
            for url in members:
                self._url_to_class[url] = cls.class_id

    def _search(self, parts: URLParts, document: bytes) -> DocumentClass | None:
        eligible = self._eligible(parts)
        if not eligible:
            return None
        threshold = self._config.match_threshold * len(document)
        best: DocumentClass | None = None
        best_estimate = math.inf
        tries = 0
        for cls in self._probe_order(eligible):
            if tries >= self._config.max_tries:
                break
            estimate = self._estimate(cls, document)
            if estimate is None:
                continue  # class has no base yet; not probeable
            tries += 1
            with self._stats_lock:
                self.stats.total_tries += 1
            if estimate <= threshold:
                if self._config.first_match:
                    self._record_tries(tries)
                    return cls
                if estimate < best_estimate:
                    best, best_estimate = cls, estimate
        if best is not None:
            self._record_tries(tries)
        return best

    def _record_tries(self, tries: int) -> None:
        with self._stats_lock:
            self.stats.tries_histogram[tries] = (
                self.stats.tries_histogram.get(tries, 0) + 1
            )

    def _eligible(self, parts: URLParts) -> list[DocumentClass]:
        """Heuristic 2: restrict to same-hint classes when any exist."""
        with self._registry_lock:
            same_hint = self._by_key.get(parts.key)
            if same_hint:
                return list(same_hint)
            return list(self._by_server.get(parts.server, ()))

    def _probe_order(self, eligible: list[DocumentClass]) -> list[DocumentClass]:
        """Heuristic 3: ``a·N`` most popular first, then random others."""
        n = self._config.max_tries
        popular_quota = math.ceil(self._config.popular_fraction * n)
        by_popularity = sorted(eligible, key=lambda c: c.popularity, reverse=True)
        head = by_popularity[:popular_quota]
        rest = by_popularity[popular_quota:]
        if rest:
            sample_size = min(len(rest), n - len(head))
            tail = self._rng.sample(rest, sample_size) if sample_size > 0 else []
        else:
            tail = []
        return head + tail

    def _estimate(self, cls: DocumentClass, document: bytes) -> int | None:
        """Estimated delta between the class base and ``document``.

        Only the cached-index lookup holds the candidate's class lock;
        the estimate runs against the immutable index outside it, so a
        cross-shard probe never blocks another shard's pipeline for the
        duration of a diff.
        """
        if self._config.use_light_estimator:
            with cls.lock:
                index = cls.light_index()
            if index is None:
                return None
            return self._estimator.estimate_with_index(index, document)
        if self._exact_delta is None:
            return None
        return self._exact_delta(cls, document)
