"""Striped counters: exact accounting without a shared hot lock.

The sharded delta-engine increments a dozen counters on every request
from many worker threads at once.  A plain ``stats.requests += 1`` is a
read-modify-write race in CPython (the GIL serializes bytecodes, not the
load/add/store triplet), and funnelling every increment through one
mutex would re-create the very convoy the sharding removed.

:class:`StripedCounters` gives each thread its own private cell (a plain
dict only that thread ever writes), registered once in a stripe list.
Increments are therefore uncontended single-thread dict updates; reads
sum across stripes.  Totals are *exact* — no increment is ever lost —
and reads taken while writers are running are weakly consistent
monotone snapshots, which is all accounting and metrics need.  Stripes
of finished threads are kept (their counts must survive the thread), so
memory is bounded by the peak number of distinct worker threads.
"""

from __future__ import annotations

import threading
from typing import Iterable

__all__ = ["StripedCounters"]


class StripedCounters:
    """Exact-under-contention named integer counters."""

    __slots__ = ("_fields", "_lock", "_local", "_stripes")

    def __init__(self, fields: Iterable[str]) -> None:
        self._fields = tuple(fields)
        if not self._fields:
            raise ValueError("StripedCounters needs at least one field")
        # Guards only the stripe registry (one append per new thread) and
        # cross-stripe reads — never the increment hot path.
        self._lock = threading.Lock()
        self._local = threading.local()
        self._stripes: list[dict[str, int]] = []

    def _cell(self) -> dict[str, int]:
        cell = getattr(self._local, "cell", None)
        if cell is None:
            cell = dict.fromkeys(self._fields, 0)
            with self._lock:
                self._stripes.append(cell)
            self._local.cell = cell
        return cell

    def inc(self, field: str, amount: int = 1) -> None:
        """Add ``amount`` to ``field`` (uncontended: touches only the
        calling thread's stripe)."""
        self._cell()[field] += amount

    def get(self, field: str) -> int:
        """Current total for ``field`` across all stripes."""
        if field not in self._fields:
            raise KeyError(field)
        with self._lock:
            stripes = list(self._stripes)
        return sum(stripe[field] for stripe in stripes)

    def snapshot(self) -> dict[str, int]:
        """One weakly-consistent pass over every field.

        Exact once writer threads have quiesced (joined); monotone and
        never under the true value seen by any single completed request
        while they run.
        """
        with self._lock:
            stripes = list(self._stripes)
        totals = dict.fromkeys(self._fields, 0)
        for stripe in stripes:
            for field in self._fields:
                totals[field] += stripe[field]
        return totals
