"""The delta-server: the engine that makes dynamic traffic cachable.

"Call a *delta-server* an engine that implements class-based delta-encoding
and services the contents of some web-servers.  All requests are processed
by the delta-server before they are forwarded to the web-servers."
(Section III.)  Deployment-wise it sits next to the origin (Fig. 2) and is
transparent to clients, proxies, and the web-server.

Per request the engine:

1. fetches the current document snapshot from the origin;
2. groups the request into a document class (:mod:`repro.core.grouping`);
3. feeds the document to the class's base-file selection policy and to any
   pending anonymization;
4. applies rebase policy (group-rebase on timeout + better candidate,
   basic-rebase on persistently large deltas);
5. answers with a compressed delta when the client holds the class's
   current distributable base-file, and with the full document otherwise
   (tagging the response with the class reference so the client can fetch
   the — cachable — base-file for next time).

Base-files are served at synthetic URLs
``<server>/__delta_base__/<class_id>/<version>`` and marked cachable, so
ordinary proxy-caches absorb base-file distribution (Section VI-B's point
that "anonymized base files are cachable ... the gain from cachable
base-files is expected to be larger than the loss from slightly larger
deltas").
"""

from __future__ import annotations

import itertools
import random
import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable

from repro.core.classes import DocumentClass
from repro.core.config import DeltaServerConfig
from repro.core.base_file import RandomizedPolicy
from repro.core.grouping import Grouper
from repro.core.rebase import RebaseController
from repro.core.storage import StorageManager
from repro.delta.codec import checksum, encode_delta, encoded_size
from repro.delta.compress import compress
from repro.delta.light import LightEstimator
from repro.delta.vdelta import VdeltaEncoder
from repro.http.messages import (
    HEADER_CONTENT_ENCODING,
    HEADER_DEGRADED,
    HEADER_DELTA,
    HEADER_DELTA_BASE,
    HEADER_STAGE_TIMES,
    Request,
    Response,
    base_ref,
)
from repro.metrics.registry import MetricsRegistry
from repro.resilience.policy import OriginUnavailable
from repro.url.rules import RuleBook

BASE_FILE_SEGMENT = "__delta_base__"

OriginFetch = Callable[[Request, float], Response]


def format_stage_times(timings: dict[str, float]) -> str:
    """Render per-stage durations for the ``X-Stage-Times`` header."""
    return ";".join(f"{stage}={seconds:.6f}" for stage, seconds in timings.items())


def parse_stage_times(value: str | None) -> dict[str, float]:
    """Inverse of :func:`format_stage_times`; tolerant of malformed tokens."""
    timings: dict[str, float] = {}
    if not value:
        return timings
    for token in value.split(";"):
        stage, sep, seconds = token.partition("=")
        if not sep:
            continue
        try:
            timings[stage.strip()] = float(seconds)
        except ValueError:
            continue
    return timings


@dataclass(slots=True)
class ServerStats:
    """Aggregate delta-server accounting (drives Table II)."""

    requests: int = 0
    #: bytes the origin produced — what a direct (no delta-server) deployment
    #: would have sent.
    direct_bytes: int = 0
    #: bytes actually sent to clients for document responses.
    sent_bytes: int = 0
    deltas_served: int = 0
    full_served: int = 0
    passthrough: int = 0
    base_files_served: int = 0
    base_file_bytes: int = 0
    group_rebases: int = 0
    basic_rebases: int = 0
    #: degraded answers while the origin was unavailable (stale base / 502)
    stale_served: int = 0
    origin_unavailable: int = 0
    #: self-healing: classes taken out of delta service, split by cause
    quarantines: int = 0
    integrity_failures: int = 0
    encode_failures: int = 0
    quarantine_recoveries: int = 0

    @property
    def savings(self) -> float:
        """Fractional bandwidth savings on document traffic (Table II)."""
        if not self.direct_bytes:
            return 0.0
        return 1.0 - self.sent_bytes / self.direct_bytes


class DeltaServer:
    """Class-based delta-encoding engine in front of an origin server."""

    def __init__(
        self,
        origin_fetch: OriginFetch,
        config: DeltaServerConfig | None = None,
        rulebook: RuleBook | None = None,
        *,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or DeltaServerConfig()
        self._origin_fetch = origin_fetch
        #: observability sink: per-stage pipeline timings land here as
        #: ``engine_stage_seconds{stage=...}`` histograms (shared with the
        #: serving layer when wired through ``build_server``).
        self.metrics = metrics or MetricsRegistry()
        # One engine instance may be driven from many threads (the live
        # asyncio server offloads `handle` to a worker pool).  The class
        # map, base-file stores, and counters are mutated per request, so
        # requests serialize on this lock — the single-writer discipline
        # the paper's single-CPU delta-server implies.  Concurrency above
        # the engine (connection handling, I/O) stays parallel; see
        # repro.serve for the layering.
        self._lock = threading.Lock()
        # Quarantine membership has its own tiny lock so health probes
        # never wait behind the engine lock (which is held across origin
        # fetches, including their retry backoff).
        self._health_lock = threading.Lock()
        self._quarantined: set[str] = set()
        self._rng = random.Random(self.config.seed)
        self._encoder = VdeltaEncoder()
        self._estimator = LightEstimator()
        self._class_ids = itertools.count(1)
        self._controllers: dict[str, RebaseController] = {}
        self.stats = ServerStats()
        self.storage = StorageManager(self.config.storage_budget_bytes)
        self.grouper = Grouper(
            config=self.config.grouping,
            rulebook=rulebook or RuleBook(),
            estimator=self._estimator,
            class_factory=self._new_class,
            rng=self._rng,
            exact_delta=self._delta_size,
        )

    # -- wiring ----------------------------------------------------------------

    def _new_class(self, server: str, hint: str) -> DocumentClass:
        class_id = f"cls{next(self._class_ids)}"
        policy = RandomizedPolicy(
            self.config.base_file, self._light_size, self._rng
        )
        cls = DocumentClass(
            class_id=class_id,
            server=server,
            hint=hint,
            anonymization=self.config.anonymization,
            policy=policy,
            encoder=self._encoder,
            estimator=self._estimator,
        )
        self._controllers[class_id] = RebaseController(self.config.base_file)
        return cls

    def _delta_size(self, base: bytes, target: bytes) -> int:
        return encoded_size(self._encoder.encode(base, target).instructions, len(base))

    def _light_size(self, base: bytes, target: bytes) -> int:
        return self._estimator.estimate(base, target)

    # -- request handling ----------------------------------------------------------

    def handle(self, request: Request, now: float) -> Response:
        """Process one client (or proxy-forwarded) request.

        Thread-safe: concurrent callers serialize on the engine lock (the
        whole request pipeline mutates shared class state).

        Each request's pipeline stages (lock wait, class lookup, origin
        fetch, encode, compress) are timed into the engine's metrics
        registry and attached to the response as ``X-Stage-Times`` so a
        slow request can be correlated (via ``X-Trace-Id``) with the
        stage that cost it.
        """
        timings: dict[str, float] = {}
        entered = perf_counter()
        with self._lock:
            acquired = perf_counter()
            response = self._handle_locked(request, now, timings)
        timings["lock_wait"] = acquired - entered
        if timings:
            response.headers.set(HEADER_STAGE_TIMES, format_stage_times(timings))
            for stage, seconds in timings.items():
                self.metrics.observe(
                    "engine_stage_seconds",
                    seconds,
                    {"stage": stage},
                    help="per-request delta-server pipeline stage durations",
                )
        return response

    def _handle_locked(
        self, request: Request, now: float, timings: dict[str, float]
    ) -> Response:
        base_file = self._parse_base_file_url(request.url)
        if base_file is not None:
            started = perf_counter()
            response = self._serve_base_file(*base_file)
            timings["base_file"] = perf_counter() - started
            return response

        started = perf_counter()
        try:
            origin_response = self._origin_fetch(request, now)
        except OriginUnavailable:
            # The resilience policy gave up (circuit open, retries or
            # deadline spent): degrade gracefully instead of failing.
            timings["origin_fetch"] = perf_counter() - started
            return self._degraded_response(request)
        timings["origin_fetch"] = perf_counter() - started
        self.stats.requests += 1
        if (
            origin_response.status != 200
            or len(origin_response.body) < self.config.min_document_bytes
        ):
            self.stats.passthrough += 1
            return origin_response

        document = origin_response.body
        self.stats.direct_bytes += len(document)

        started = perf_counter()
        cls, created = self.grouper.classify(request.url, document)
        cls.policy.observe(document, request.user_id)
        if created or cls.raw_base is None:
            # The class is born with this response as its base-file (the
            # simplest scheme); a storage-released or quarantined class
            # re-adopts the same way.  The policy may replace the base
            # later.
            was_quarantined = cls.quarantined
            cls.adopt_base(document, owner_user=request.user_id, now=now)
            if was_quarantined:
                self.stats.quarantine_recoveries += 1
                with self._health_lock:
                    self._quarantined.discard(cls.class_id)
        else:
            cls.feed(document, request.user_id)
            self._maybe_rebase(cls, document, request.user_id, now)
        if self.storage.stats.enforced:
            self.storage.enforce(self.grouper.classes, protect=cls)
        timings["classify"] = perf_counter() - started

        return self._respond(cls, request, document, timings)

    def class_of(self, url: str) -> DocumentClass | None:
        """The class a URL has been grouped into, if any (diagnostics)."""
        with self._lock:
            return self._find_class(url)

    def _find_class(self, url: str) -> DocumentClass | None:
        for cls in self.grouper.classes:
            if url in cls.members:
                return cls
        return None

    def health_snapshot(self) -> dict:
        """Self-healing and degradation state for the health endpoint.

        Deliberately avoids the engine lock (held across origin fetches,
        including retry backoff) so a health probe never blocks behind a
        struggling origin; counter reads are single machine words.
        """
        with self._health_lock:
            quarantined = sorted(self._quarantined)
        stats = self.stats
        return {
            "classes": len(self.grouper.classes),
            "quarantined": quarantined,
            "quarantines": stats.quarantines,
            "quarantine_recoveries": stats.quarantine_recoveries,
            "integrity_failures": stats.integrity_failures,
            "encode_failures": stats.encode_failures,
            "stale_served": stats.stale_served,
            "origin_unavailable": stats.origin_unavailable,
        }

    # -- internals ---------------------------------------------------------------

    def _degraded_response(self, request: Request) -> Response:
        """Answer without the origin: marked-stale base-file, else 502.

        The class's distributable base is a complete, recently-accurate
        document for every member URL — far better than an error page
        while the origin recovers.  The response is explicitly marked so
        clients and freshness checks know it is not a fresh render.
        """
        cls = self._find_class(request.url)
        if (
            cls is not None
            and cls.can_serve_deltas
            and cls.integrity_ok(cls.version)
        ):
            assert cls.distributable_base is not None
            response = Response(status=200, body=cls.distributable_base)
            response.headers.set(HEADER_DEGRADED, "stale-base")
            response.headers.set("Warning", '110 - "response is stale"')
            self.stats.stale_served += 1
            return response
        self.stats.origin_unavailable += 1
        response = Response(status=502, body=b"origin unavailable")
        response.headers.set(HEADER_DEGRADED, "origin-unavailable")
        return response

    def _quarantine(self, cls: DocumentClass, *, cause: str) -> None:
        """Pull a class out of delta service after an engine fault."""
        cls.quarantine()
        self.stats.quarantines += 1
        if cause == "integrity":
            self.stats.integrity_failures += 1
        else:
            self.stats.encode_failures += 1
        with self._health_lock:
            self._quarantined.add(cls.class_id)

    def _maybe_rebase(
        self, cls: DocumentClass, document: bytes, user_id: str | None, now: float
    ) -> None:
        if cls.anonymization_pending:
            # A rebase is already in flight (its base is being anonymized);
            # re-triggering would restart the user-collection window forever
            # and the class would never finish a transition.
            return
        controller = self._controllers[cls.class_id]
        decision = controller.check(
            cls.policy, cls.raw_base, document, now, cls.last_rebase_at
        )
        if decision is None:
            return
        if decision.kind == "basic":
            # "When a basic-rebase takes place, all K stored documents are
            # flushed."
            cls.policy.flush()
            cls.adopt_base(decision.new_base, owner_user=user_id, now=now)
            cls.stats.basic_rebases += 1
            self.stats.basic_rebases += 1
        else:
            owner = cls.policy.current_owner()
            cls.adopt_base(decision.new_base, owner_user=owner, now=now)
            cls.stats.group_rebases += 1
            self.stats.group_rebases += 1
        controller.reset()

    def _respond(
        self,
        cls: DocumentClass,
        request: Request,
        document: bytes,
        timings: dict[str, float] | None = None,
    ) -> Response:
        if not cls.can_serve_deltas:
            return self._full_response(cls, None, document)
        current_ref = base_ref(cls.class_id, cls.version)
        accepted = request.accepts_delta()
        if current_ref in accepted:
            delta_response = self._delta_response(
                cls, cls.version, document, timings
            )
            if delta_response is not None:
                return delta_response
        elif cls.previous_version is not None and (
            base_ref(cls.class_id, cls.previous_version) in accepted
        ):
            # The client still holds the pre-rebase base: serve a delta
            # against it and advertise the new base so the client upgrades
            # without ever taking a full response.
            delta_response = self._delta_response(
                cls, cls.previous_version, document, timings
            )
            if delta_response is not None:
                delta_response.headers.set(HEADER_DELTA_BASE, current_ref)
                return delta_response
        # A delta attempt may have just quarantined the class (corrupted
        # base or encoder fault): then current_ref points at a released
        # base and must not be advertised.
        ref = None if cls.quarantined else current_ref
        return self._full_response(cls, ref, document)

    def _delta_response(
        self,
        cls: DocumentClass,
        version: int,
        document: bytes,
        timings: dict[str, float] | None = None,
    ) -> Response | None:
        index = cls.full_index_for(version)
        if index is None:
            return None
        if not cls.integrity_ok(version):
            # The stored base no longer matches its promotion checksum:
            # storage corruption.  Quarantine before a delta against
            # rotten bytes reaches any client.
            self._quarantine(cls, cause="integrity")
            return None
        ref = base_ref(cls.class_id, version)
        started = perf_counter()
        try:
            result = self._encoder.encode_with_index(index, document)
            wire = encode_delta(
                result.instructions, len(index.base), checksum(document)
            )
            encoded_at = perf_counter()
            payload = compress(wire, self.config.compression_level)
            if timings is not None:
                timings["encode"] = encoded_at - started
                timings["compress"] = perf_counter() - encoded_at
        except Exception:
            # An encoder/codec fault costs this class its delta service
            # (one full response now, fresh base on the next good fetch),
            # never the request.
            self._quarantine(cls, cause="encode")
            return None
        controller = self._controllers[cls.class_id]
        controller.note_delta(len(wire), len(document))
        if len(payload) >= len(document):
            # Degenerate delta (base drifted badly); the full document is
            # cheaper.  The controller already saw the bad ratio, so a
            # basic-rebase will follow shortly.
            return None
        response = Response(status=200, body=payload)
        response.headers.set(HEADER_DELTA, ref)
        response.headers.set(HEADER_CONTENT_ENCODING, "deflate")
        self.stats.deltas_served += 1
        self.stats.sent_bytes += len(payload)
        cls.stats.deltas_served += 1
        return response

    def _full_response(
        self, cls: DocumentClass, ref: str | None, document: bytes
    ) -> Response:
        response = Response(status=200, body=document)
        if ref is not None:
            # Advertise the class's base-file so the client can pick it up
            # (via any proxy-cache on the way) and use deltas next time.
            response.headers.set(HEADER_DELTA_BASE, ref)
        self.stats.full_served += 1
        self.stats.sent_bytes += len(document)
        cls.stats.full_served += 1
        return response

    # -- base-file distribution -------------------------------------------------------

    @staticmethod
    def _parse_base_file_url(url: str) -> tuple[str, int] | None:
        """Recognize ``<server>/__delta_base__/<class_id>/<version>`` URLs.

        Malformed shapes (missing version, non-integer or negative version,
        empty class id) return ``None`` — the URL then flows down the
        ordinary document path instead of crashing the request.  The live
        server feeds this attacker-controlled bytes, so it must be total.
        """
        parts = url.split("/")
        if BASE_FILE_SEGMENT not in parts:
            return None
        i = parts.index(BASE_FILE_SEGMENT)
        if i + 2 >= len(parts):
            return None  # missing class id and/or version
        class_id, version = parts[i + 1], parts[i + 2]
        if not class_id:
            return None
        # isascii + isdigit rejects "", "-1", "1.5", "1e3", and unicode
        # digit lookalikes that int() would reject or misread.
        if not version.isascii() or not version.isdigit():
            return None
        return class_id, int(version)

    def _serve_base_file(self, class_id: str, version: int) -> Response:
        try:
            cls = self.grouper.class_by_id(class_id)
        except KeyError:
            return Response(status=404, body=b"unknown class")
        body = cls.base_for_version(version)
        if body is None:
            return Response(status=404, body=b"stale base-file version")
        if not cls.integrity_ok(version):
            # Never distribute corrupted bytes; the class heals itself on
            # its next document fetch.
            self._quarantine(cls, cause="integrity")
            return Response(status=404, body=b"base-file quarantined")
        response = Response(status=200, body=body)
        response.headers.set(HEADER_DELTA_BASE, base_ref(class_id, version))
        response.mark_cachable()
        self.stats.base_files_served += 1
        self.stats.base_file_bytes += len(body)
        return response

    @staticmethod
    def base_file_url(server: str, class_id: str, version: int) -> str:
        """URL at which a class's base-file is served (proxy-cachable)."""
        return f"{server}/{BASE_FILE_SEGMENT}/{class_id}/{version}"
