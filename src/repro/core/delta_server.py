"""The delta-server: the engine that makes dynamic traffic cachable.

"Call a *delta-server* an engine that implements class-based delta-encoding
and services the contents of some web-servers.  All requests are processed
by the delta-server before they are forwarded to the web-servers."
(Section III.)  Deployment-wise it sits next to the origin (Fig. 2) and is
transparent to clients, proxies, and the web-server.

Per request the engine:

1. fetches the current document snapshot from the origin;
2. groups the request into a document class (:mod:`repro.core.grouping`);
3. feeds the document to the class's base-file selection policy and to any
   pending anonymization;
4. applies rebase policy (group-rebase on timeout + better candidate,
   basic-rebase on persistently large deltas);
5. answers with a compressed delta when the client holds the class's
   current distributable base-file, and with the full document otherwise
   (tagging the response with the class reference so the client can fetch
   the — cachable — base-file for next time).

Base-files are served at synthetic URLs
``<server>/__delta_base__/<class_id>/<version>`` and marked cachable, so
ordinary proxy-caches absorb base-file distribution (Section VI-B's point
that "anonymized base files are cachable ... the gain from cachable
base-files is expected to be larger than the loss from slightly larger
deltas").

Concurrency — the sharded engine
--------------------------------

The paper models a single-CPU delta-server; this engine is sharded for
per-class concurrency instead (``engine_mode="serialized"`` restores the
single-global-lock pipeline as a benchmark baseline):

* **The origin fetch runs under no engine lock.**  A slow (or retrying,
  backing-off) origin stalls only its own request, never other classes.
* **Classification serializes per ``(server, hint)`` shard** inside the
  grouper — light-estimate probes for different sites run in parallel;
  racing first-requests for one URL cannot fork a class.
* **Class state is guarded by per-class locks**: membership, base-file
  lifecycle, policy samples, and rebase decisions for one class never
  block requests of another class.
* **Delta generation is lock-free via snapshot-encode-commit**: the
  ``(version, BaseIndex)`` pair is snapshotted under the class lock, the
  Vdelta encode and deflate compress run outside every lock (both are
  byte-level work), and the commit step revalidates the version.  If a
  rebase or a storage release won the race, the commit is abandoned — one
  retry against the new base, then a full response.  A delta against a
  retired base version is never served.
* **Counters are striped per thread** (:mod:`repro.core.counters`), so
  accounting stays exact under contention without a shared hot lock;
  ``stats`` materializes a :class:`ServerStats` snapshot on read.

Lock ordering (to stay deadlock-free): shard lock → class lock →
health lock; storage-manager lock → class lock.  No path acquires two
class locks at once, and nothing takes a shard or storage lock while
holding a class lock.
"""

from __future__ import annotations

import itertools
import random
import re
import threading
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, fields as dataclass_fields
from time import perf_counter
from typing import Callable, Iterator

from repro.core.classes import DocumentClass
from repro.core.config import DeltaServerConfig
from repro.core.base_file import RandomizedPolicy
from repro.core.counters import StripedCounters
from repro.core.grouping import Grouper
from repro.core.rebase import RebaseController
from repro.core.storage import StorageManager
from repro.delta.codec import checksum
from repro.delta.light import LightEstimator
from repro.delta.vdelta import BaseIndex, VdeltaEncoder
from repro.http.messages import (
    HEADER_CONTENT_ENCODING,
    HEADER_DEGRADED,
    HEADER_DELTA,
    HEADER_DELTA_BASE,
    HEADER_STAGE_TIMES,
    Request,
    Response,
    base_ref,
)
from repro.metrics.registry import MetricsRegistry
from repro.resilience.policy import OriginUnavailable
from repro.store.hooks import StoreHooks
from repro.url.rules import RuleBook

BASE_FILE_SEGMENT = "__delta_base__"

OriginFetch = Callable[[Request, float], Response]


def format_stage_times(timings: dict[str, float]) -> str:
    """Render per-stage durations for the ``X-Stage-Times`` header."""
    return ";".join(f"{stage}={seconds:.6f}" for stage, seconds in timings.items())


def parse_stage_times(value: str | None) -> dict[str, float]:
    """Inverse of :func:`format_stage_times`; tolerant of malformed tokens."""
    timings: dict[str, float] = {}
    if not value:
        return timings
    for token in value.split(";"):
        stage, sep, seconds = token.partition("=")
        if not sep:
            continue
        try:
            timings[stage.strip()] = float(seconds)
        except ValueError:
            continue
    return timings


@dataclass(slots=True)
class ServerStats:
    """Aggregate delta-server accounting (drives Table II).

    This is the *snapshot* type: the engine keeps striped per-thread
    counters internally and materializes one of these on every
    ``server.stats`` read, so totals are exact once worker threads have
    quiesced and never lose increments while they run.
    """

    requests: int = 0
    #: bytes the origin produced — what a direct (no delta-server) deployment
    #: would have sent.
    direct_bytes: int = 0
    #: bytes actually sent to clients for document responses.
    sent_bytes: int = 0
    deltas_served: int = 0
    full_served: int = 0
    passthrough: int = 0
    base_files_served: int = 0
    base_file_bytes: int = 0
    group_rebases: int = 0
    basic_rebases: int = 0
    #: degraded answers while the origin was unavailable (stale base / 502)
    stale_served: int = 0
    origin_unavailable: int = 0
    #: self-healing: classes taken out of delta service, split by cause
    quarantines: int = 0
    integrity_failures: int = 0
    encode_failures: int = 0
    quarantine_recoveries: int = 0
    #: snapshot-encode-commit: encodes abandoned because a rebase or
    #: storage release retired the snapshotted base version mid-encode …
    commit_conflicts: int = 0
    #: … and requests that ended in a full response because of it.
    commit_fallbacks: int = 0

    @property
    def savings(self) -> float:
        """Fractional bandwidth savings on document traffic (Table II)."""
        if not self.direct_bytes:
            return 0.0
        return 1.0 - self.sent_bytes / self.direct_bytes


#: counter names backing a ServerStats snapshot
STAT_FIELDS = tuple(f.name for f in dataclass_fields(ServerStats))


@dataclass(slots=True)
class _DeltaPlan:
    """Snapshot taken under the class lock for one off-lock encode."""

    version: int
    index: BaseIndex
    #: True when the snapshot was the class's current version (False: the
    #: client holds the still-servable previous generation).
    served_current: bool


class DeltaServer:
    """Class-based delta-encoding engine in front of an origin server."""

    def __init__(
        self,
        origin_fetch: OriginFetch,
        config: DeltaServerConfig | None = None,
        rulebook: RuleBook | None = None,
        *,
        metrics: MetricsRegistry | None = None,
        store_hooks: StoreHooks | None = None,
        class_id_prefix: str = "",
    ) -> None:
        self.config = config or DeltaServerConfig()
        self._origin_fetch = origin_fetch
        #: observability sink: per-stage pipeline timings land here as
        #: ``engine_stage_seconds{stage=...}`` histograms (shared with the
        #: serving layer when wired through ``build_server``).
        self.metrics = metrics or MetricsRegistry()
        #: persistence glue: lifecycle events flow through these hooks to
        #: the pack/journal store; the default hooks are no-ops, so the
        #: engine is unchanged when persistence is off.
        self.store_hooks = store_hooks or StoreHooks()
        # ``serialized`` restores the seed engine's single-writer
        # discipline: one global lock held across the whole pipeline,
        # origin fetch included.  The sharded mode (default) never takes
        # it; see the module docstring for the sharded locking model.
        self._serialized = self.config.engine_mode == "serialized"
        self._global_lock = threading.Lock()
        # Quarantine membership has its own tiny lock so health probes
        # never wait behind a class lock mid-encode or a struggling
        # origin fetch.
        self._health_lock = threading.Lock()
        self._quarantined: set[str] = set()
        self._rng = random.Random(self.config.seed)
        self._encoder = VdeltaEncoder()
        self._estimator = LightEstimator()
        # One reusable wire buffer per thread: the streaming kernel clears
        # and refills it, so steady-state encodes allocate nothing for
        # wire bytes.  Thread-local because encodes run off-lock.
        self._encode_buffers = threading.local()
        #: fleet workers mint ids under a ``w<k>-`` prefix so base-file
        #: URLs can be routed to the owning worker without a directory
        self._class_id_prefix = class_id_prefix
        self._class_ids = itertools.count(1)
        self._closed = False
        self._controllers: dict[str, RebaseController] = {}
        self._counters = StripedCounters(STAT_FIELDS)
        self.storage = StorageManager(
            self.config.storage_budget_bytes, store_hooks=self.store_hooks
        )
        self.grouper = Grouper(
            config=self.config.grouping,
            rulebook=rulebook or RuleBook(),
            estimator=self._estimator,
            class_factory=self._new_class,
            seed=self.config.seed,
            exact_delta=self._delta_size,
            member_hook=self.store_hooks.member_added,
            hit_hook=self.store_hooks.class_hit,
            metrics=self.metrics,
        )
        # Warm restart: rebuild classes, memberships, and latest base-file
        # versions from the persistent store (no-op for the default hooks).
        self.rehydrated_classes = self.store_hooks.rehydrate(self)

    # -- wiring ----------------------------------------------------------------

    @property
    def stats(self) -> ServerStats:
        """A :class:`ServerStats` snapshot of the striped counters."""
        return ServerStats(**self._counters.snapshot())

    def _new_class(self, server: str, hint: str) -> DocumentClass:
        class_id = f"{self._class_id_prefix}cls{next(self._class_ids)}"
        cls = self._build_class(class_id, server, hint)
        self.store_hooks.class_created(class_id, server, hint)
        return cls

    def _build_class(self, class_id: str, server: str, hint: str) -> DocumentClass:
        policy = RandomizedPolicy(
            self.config.base_file, self._light_size, self._rng
        )
        cls = DocumentClass(
            class_id=class_id,
            server=server,
            hint=hint,
            anonymization=self.config.anonymization,
            policy=policy,
            encoder=self._encoder,
            estimator=self._estimator,
        )
        self._controllers[class_id] = RebaseController(self.config.base_file)
        return cls

    # -- warm restart -----------------------------------------------------------

    def restore_class(
        self, class_id: str, server: str, hint: str
    ) -> DocumentClass | None:
        """Recreate a persisted class under its original id (warm restart).

        Builds the class and its rebase controller without consuming a
        fresh id or re-journaling its creation; the caller (the store's
        rehydration path) registers it with the grouper and restores the
        base.  Returns ``None`` if the id is already taken — a duplicate
        journal record, not a reason to fail the whole restart.
        """
        if class_id in self._controllers:
            return None
        return self._build_class(class_id, server, hint)

    def seed_class_counter(self, class_ids: "Iterator[str] | list[str]") -> None:
        """Advance the class-id counter past every restored id, so new
        classes created after a warm restart never collide with persisted
        ones (``cls<N>`` ids are assigned from a monotone counter)."""
        highest = 0
        for class_id in class_ids:
            # Only the trailing run of digits is the counter value: a
            # fleet-prefixed id like ``w3-cls12`` must seed 12, not 312.
            match = re.search(r"(\d+)$", class_id)
            if match:
                highest = max(highest, int(match.group(1)))
        if highest:
            self._class_ids = itertools.count(highest + 1)

    def _delta_size(self, cls: DocumentClass, document: bytes) -> int | None:
        """Exact-differ probe for the grouper, against the cached index."""
        with cls.lock:
            index = cls.exact_match_index()
        if index is None:
            return None
        return len(
            self._encoder.encode_wire_with_index(
                index, document, out=self._encode_buffer()
            )
        )

    def _light_size(self, base: bytes, target: bytes) -> int:
        return self._estimator.estimate(base, target)

    @contextmanager
    def _class_locked(
        self, cls: DocumentClass, timings: dict[str, float]
    ) -> Iterator[None]:
        """Acquire ``cls.lock``, charging the wait to the lock_wait stage."""
        entered = perf_counter()
        cls.lock.acquire()
        timings["lock_wait"] += perf_counter() - entered
        try:
            yield
        finally:
            cls.lock.release()

    # -- request handling ----------------------------------------------------------

    def handle(self, request: Request, now: float) -> Response:
        """Process one client (or proxy-forwarded) request.

        Thread-safe.  In the default ``sharded`` mode concurrent callers
        for different classes proceed in parallel (see the module
        docstring for the locking model); ``serialized`` mode funnels
        every caller through one global lock, origin fetch included.

        Each request's pipeline stages (lock wait, class lookup, origin
        fetch, encode, compress) are timed into the engine's metrics
        registry and attached to the response as ``X-Stage-Times`` so a
        slow request can be correlated (via ``X-Trace-Id``) with the
        stage that cost it.  ``lock_wait`` aggregates every wait of the
        request — global lock in serialized mode; shard, class, and
        commit lock acquisitions in sharded mode.
        """
        timings: dict[str, float] = {"lock_wait": 0.0}
        if self._serialized:
            entered = perf_counter()
            with self._global_lock:
                timings["lock_wait"] += perf_counter() - entered
                response = self._process(request, now, timings)
        else:
            response = self._process(request, now, timings)
        response.headers.set(HEADER_STAGE_TIMES, format_stage_times(timings))
        for stage, seconds in timings.items():
            self.metrics.observe(
                "engine_stage_seconds",
                seconds,
                {"stage": stage},
                help="per-request delta-server pipeline stage durations",
            )
        return response

    def _process(
        self, request: Request, now: float, timings: dict[str, float]
    ) -> Response:
        base_file = self._parse_base_file_url(request.url)
        if base_file is not None:
            started = perf_counter()
            response = self._serve_base_file(*base_file, timings=timings)
            timings["base_file"] = perf_counter() - started
            return response

        started = perf_counter()
        try:
            origin_response = self._origin_fetch(request, now)
        except OriginUnavailable:
            # The resilience policy gave up (circuit open, retries or
            # deadline spent): degrade gracefully instead of failing.
            timings["origin_fetch"] = perf_counter() - started
            return self._degraded_response(request, timings)
        timings["origin_fetch"] = perf_counter() - started
        self._counters.inc("requests")
        if (
            origin_response.status != 200
            or len(origin_response.body) < self.config.min_document_bytes
            or len(origin_response.body) > self.config.max_document_bytes
        ):
            # Out-of-bounds sizes pass straight through: tiny documents are
            # not worth the delta machinery, oversized ones must not be
            # indexed/encoded (and could never be decoded by clients, which
            # enforce the same bound against hostile payloads).
            self._counters.inc("passthrough")
            return origin_response

        document = origin_response.body
        self._counters.inc("direct_bytes", len(document))

        started = perf_counter()
        waited_before = timings["lock_wait"]
        cls, _created = self.grouper.classify(request.url, document, timings)
        self._ingest(cls, request, document, now, timings)
        if self.storage.stats.enforced:
            # Never called holding a class lock (the manager takes them
            # one at a time); a release racing an in-flight encode is
            # caught by that request's commit revalidation.
            self.storage.enforce(self.grouper.classes, protect=cls)
        timings["classify"] = (perf_counter() - started) - (
            timings["lock_wait"] - waited_before
        )

        return self._respond(cls, request, document, timings)

    def _ingest(
        self,
        cls: DocumentClass,
        request: Request,
        document: bytes,
        now: float,
        timings: dict[str, float],
    ) -> None:
        """Feed one fresh origin document into the class, under its lock."""
        with self._class_locked(cls, timings):
            version_before = cls.version
            cls.policy.observe(document, request.user_id)
            if cls.raw_base is None:
                # The class is born with this response as its base-file
                # (the simplest scheme); a storage-released or quarantined
                # class re-adopts the same way.  The policy may replace
                # the base later.
                was_quarantined = cls.quarantined
                cls.adopt_base(document, owner_user=request.user_id, now=now)
                if was_quarantined:
                    self._counters.inc("quarantine_recoveries")
                    with self._health_lock:
                        self._quarantined.discard(cls.class_id)
            else:
                cls.feed(document, request.user_id)
                self._maybe_rebase(cls, document, request.user_id, now)
            # Keep the LSH candidate index in step with the base the
            # grouper probes: a no-op (two attribute reads) unless the
            # base object changed (adoption, promotion, rebase, release).
            # Still under the class lock — class lock → sketch-index lock
            # is the sanctioned ordering.
            signature = self.grouper.refresh_sketch(cls)
            if cls.version != version_before and cls.can_serve_deltas:
                # A promotion happened (adoption, anonymization completion,
                # or rebase): durably commit the new distributable version.
                # Still under the class lock, so the committed bytes are
                # exactly the version being published (class lock → store
                # lock is the sanctioned ordering).  The signature rides
                # along so a warm restart does not re-sketch the base.
                persistent = self.store_hooks.store is not None
                started = perf_counter()
                assert cls.distributable_base is not None
                assert cls.distributable_checksum is not None
                self.store_hooks.base_committed(
                    cls.class_id,
                    cls.version,
                    cls.distributable_base,
                    cls.distributable_checksum,
                    signature=signature,
                )
                if persistent:
                    timings["store_commit"] = (
                        timings.get("store_commit", 0.0)
                        + perf_counter()
                        - started
                    )

    def class_of(self, url: str) -> DocumentClass | None:
        """The class a URL has been grouped into, if any (diagnostics).

        O(1) against the grouper's url → class map — no lock, no scan.
        """
        return self.grouper.class_for_url(url)

    def health_snapshot(self) -> dict:
        """Self-healing and degradation state for the health endpoint.

        Deliberately avoids every engine lock (a class lock may be held
        across an encode, and serialized mode holds the global lock
        across origin fetches) so a health probe never blocks behind a
        struggling origin; counters are weakly-consistent striped reads.
        """
        with self._health_lock:
            quarantined = sorted(self._quarantined)
        stats = self.stats
        return {
            "classes": self.grouper.class_count(),
            "warm_start": self.rehydrated_classes > 0,
            "rehydrated_classes": self.rehydrated_classes,
            "store": self.store_hooks.snapshot(),
            "quarantined": quarantined,
            "quarantines": stats.quarantines,
            "quarantine_recoveries": stats.quarantine_recoveries,
            "integrity_failures": stats.integrity_failures,
            "encode_failures": stats.encode_failures,
            "stale_served": stats.stale_served,
            "origin_unavailable": stats.origin_unavailable,
            "commit_conflicts": stats.commit_conflicts,
            "commit_fallbacks": stats.commit_fallbacks,
        }

    def close(self) -> None:
        """Flush and close the persistent store (no-op without one).

        Idempotent: the serve layer's drain path and process-exit cleanup
        can both reach this — the second and later calls do nothing.
        """
        if self._closed:
            return
        self._closed = True
        self.store_hooks.close()

    # -- internals ---------------------------------------------------------------

    def _degraded_response(
        self, request: Request, timings: dict[str, float]
    ) -> Response:
        """Answer without the origin: marked-stale base-file, else 502.

        The class's distributable base is a complete, recently-accurate
        document for every member URL — far better than an error page
        while the origin recovers.  The response is explicitly marked so
        clients and freshness checks know it is not a fresh render.
        """
        cls = self.grouper.class_for_url(request.url)
        if cls is not None:
            with self._class_locked(cls, timings):
                if cls.can_serve_deltas and cls.integrity_ok(cls.version):
                    assert cls.distributable_base is not None
                    response = Response(status=200, body=cls.distributable_base)
                    response.headers.set(HEADER_DEGRADED, "stale-base")
                    response.headers.set("Warning", '110 - "response is stale"')
                    self._counters.inc("stale_served")
                    return response
        self._counters.inc("origin_unavailable")
        response = Response(status=502, body=b"origin unavailable")
        response.headers.set(HEADER_DEGRADED, "origin-unavailable")
        return response

    def _quarantine(self, cls: DocumentClass, *, cause: str) -> None:
        """Pull a class out of delta service after an engine fault.

        Caller must hold ``cls.lock``.
        """
        cls.quarantine()
        self._counters.inc("quarantines")
        if cause == "integrity":
            self._counters.inc("integrity_failures")
        else:
            self._counters.inc("encode_failures")
        with self._health_lock:
            self._quarantined.add(cls.class_id)
        # Class lock → store lock: the persisted chain becomes garbage so
        # a restart cannot rehydrate the suspect bytes.
        self.store_hooks.class_quarantined(cls.class_id, cause)

    def _maybe_rebase(
        self, cls: DocumentClass, document: bytes, user_id: str | None, now: float
    ) -> None:
        """Apply rebase policy for one class.  Caller holds ``cls.lock``."""
        if cls.anonymization_pending:
            # A rebase is already in flight (its base is being anonymized);
            # re-triggering would restart the user-collection window forever
            # and the class would never finish a transition.
            return
        controller = self._controllers[cls.class_id]
        decision = controller.check(
            cls.policy, cls.raw_base, document, now, cls.last_rebase_at
        )
        if decision is None:
            return
        if decision.kind == "basic":
            # "When a basic-rebase takes place, all K stored documents are
            # flushed."
            cls.policy.flush()
            cls.adopt_base(decision.new_base, owner_user=user_id, now=now)
            cls.stats.basic_rebases += 1
            self._counters.inc("basic_rebases")
        else:
            owner = cls.policy.current_owner()
            cls.adopt_base(decision.new_base, owner_user=owner, now=now)
            cls.stats.group_rebases += 1
            self._counters.inc("group_rebases")
        controller.reset()

    # -- snapshot / encode / commit ------------------------------------------------

    def _respond(
        self,
        cls: DocumentClass,
        request: Request,
        document: bytes,
        timings: dict[str, float],
    ) -> Response:
        """Answer with a delta when possible, else the full document.

        Delta generation follows snapshot-encode-commit: the base version
        and its index are snapshotted under the class lock, the encode and
        compress run under *no* lock, and the commit revalidates the
        version.  A commit that lost a rebase/release race is retried
        (``config.commit_retries`` times) against the fresh state; when
        retries run out — or the fresh state no longer admits a delta —
        the full document is served.  The loop can therefore never emit a
        delta referencing a base version that has been retired.
        """
        accepted = request.accepts_delta()
        conflicts = 0
        for _attempt in range(1 + self.config.commit_retries):
            plan = self._plan_delta(cls, accepted, timings)
            if plan is None:
                break
            encoded = self._encode_delta(cls, plan, document, timings)
            if encoded is None:
                break  # encoder fault — class just quarantined
            outcome, response = self._commit_delta(
                cls, plan, encoded, document, timings
            )
            if outcome == "served":
                assert response is not None
                return response
            if outcome == "full":
                break  # degenerate delta: full document is cheaper
            conflicts += 1
            self._counters.inc("commit_conflicts")
        if conflicts:
            self._counters.inc("commit_fallbacks")
        return self._full_response(cls, document, timings)

    def _plan_delta(
        self,
        cls: DocumentClass,
        accepted: list[str],
        timings: dict[str, float],
    ) -> _DeltaPlan | None:
        """Snapshot the servable base version for an off-lock encode."""
        with self._class_locked(cls, timings):
            if not cls.can_serve_deltas:
                return None
            if base_ref(cls.class_id, cls.version) in accepted:
                version = cls.version
            elif cls.previous_version is not None and (
                base_ref(cls.class_id, cls.previous_version) in accepted
            ):
                # The client still holds the pre-rebase base: serve a
                # delta against it (the commit will advertise the new
                # base so the client upgrades without a full response).
                version = cls.previous_version
            else:
                return None
            index = cls.full_index_for(version)
            if index is None:
                return None
            if not cls.integrity_ok(version):
                # The stored base no longer matches its promotion
                # checksum: storage corruption.  Quarantine before a delta
                # against rotten bytes reaches any client.
                self._quarantine(cls, cause="integrity")
                return None
            return _DeltaPlan(
                version=version,
                index=index,
                served_current=version == cls.version,
            )

    def _encode_buffer(self) -> bytearray:
        """This thread's reusable wire buffer (created on first use)."""
        buffer = getattr(self._encode_buffers, "buffer", None)
        if buffer is None:
            buffer = self._encode_buffers.buffer = bytearray()
            self.metrics.inc(
                "delta_encode_buffer_allocs_total",
                help="reusable wire-encode buffers allocated (one per thread)",
            )
        else:
            self.metrics.inc(
                "delta_encode_buffer_reuses_total",
                help="wire encodes that reused a thread-local buffer",
            )
        return buffer

    def _encode_delta(
        self,
        cls: DocumentClass,
        plan: _DeltaPlan,
        document: bytes,
        timings: dict[str, float],
    ) -> tuple[int, bytes] | None:
        """Encode + compress against the snapshot, under no lock.

        Returns ``(wire_size, compressed_payload)``.  The streaming kernel
        feeds wire bytes straight into a ``zlib`` compressor in ~64 KiB
        chunks, so the uncompressed wire image is never materialized; the
        finished artifact is memoized in the class's
        :class:`~repro.core.classes.EncodeCache` keyed by (base version,
        target checksum) — repeat requests for the same snapshot skip the
        whole encode.
        """
        started = perf_counter()
        doc_checksum = checksum(document)
        cached = cls.encode_cache.get(plan.version, doc_checksum)
        if cached is not None:
            self.metrics.inc(
                "delta_encode_cache_hits_total",
                help="delta encodes served from the per-class encode cache",
            )
            timings["encode"] = timings.get("encode", 0.0) + (
                perf_counter() - started
            )
            return cached
        self.metrics.inc(
            "delta_encode_cache_misses_total",
            help="delta encodes that ran the streaming kernel",
        )
        compress_seconds = 0.0
        try:
            compressor = zlib.compressobj(self.config.compression_level)
            parts: list[bytes] = []

            def sink(chunk: bytearray) -> None:
                nonlocal compress_seconds
                entered = perf_counter()
                parts.append(compressor.compress(chunk))
                compress_seconds += perf_counter() - entered

            wire_size = self._encoder.encode_stream_with_index(
                plan.index,
                document,
                sink,
                doc_checksum,
                buffer=self._encode_buffer(),
            )
            entered = perf_counter()
            parts.append(compressor.flush())
            payload = b"".join(parts)
            compress_seconds += perf_counter() - entered
        except Exception:
            # An encoder/codec fault costs this class its delta service
            # (one full response now, fresh base on the next good fetch),
            # never the request.
            with self._class_locked(cls, timings):
                self._quarantine(cls, cause="encode")
            return None
        total = perf_counter() - started
        timings["encode"] = timings.get("encode", 0.0) + (total - compress_seconds)
        timings["compress"] = timings.get("compress", 0.0) + compress_seconds
        cls.encode_cache.put(plan.version, doc_checksum, wire_size, payload)
        return wire_size, payload

    def _commit_delta(
        self,
        cls: DocumentClass,
        plan: _DeltaPlan,
        encoded: tuple[int, bytes],
        document: bytes,
        timings: dict[str, float],
    ) -> tuple[str, Response | None]:
        """Revalidate the snapshot and publish the delta.

        Returns ``("served", response)``, ``("full", None)`` for a
        degenerate delta, or ``("conflict", None)`` when a rebase,
        quarantine, or storage release retired the snapshotted version
        while the encode ran off-lock.
        """
        wire_size, payload = encoded
        with self._class_locked(cls, timings):
            if plan.served_current:
                valid = cls.version == plan.version and cls.can_serve_deltas
            else:
                valid = (
                    not cls.quarantined
                    and cls.previous_version == plan.version
                    and cls.base_for_version(plan.version) is not None
                )
            if not valid:
                return "conflict", None
            controller = self._controllers[cls.class_id]
            controller.note_delta(wire_size, len(document))
            if len(payload) >= len(document):
                # Degenerate delta (base drifted badly); the full document
                # is cheaper.  The controller already saw the bad ratio,
                # so a basic-rebase will follow shortly.
                return "full", None
            response = Response(status=200, body=payload)
            response.headers.set(HEADER_DELTA, base_ref(cls.class_id, plan.version))
            response.headers.set(HEADER_CONTENT_ENCODING, "deflate")
            if not plan.served_current:
                response.headers.set(
                    HEADER_DELTA_BASE, base_ref(cls.class_id, cls.version)
                )
            cls.stats.deltas_served += 1
        self._counters.inc("deltas_served")
        self._counters.inc("sent_bytes", len(payload))
        return "served", response

    def _full_response(
        self, cls: DocumentClass, document: bytes, timings: dict[str, float]
    ) -> Response:
        response = Response(status=200, body=document)
        with self._class_locked(cls, timings):
            # A delta attempt may have just quarantined the class
            # (corrupted base or encoder fault): then the current ref
            # points at a released base and must not be advertised.
            ref = (
                base_ref(cls.class_id, cls.version)
                if cls.can_serve_deltas
                else None
            )
            cls.stats.full_served += 1
        if ref is not None:
            # Advertise the class's base-file so the client can pick it up
            # (via any proxy-cache on the way) and use deltas next time.
            response.headers.set(HEADER_DELTA_BASE, ref)
        self._counters.inc("full_served")
        self._counters.inc("sent_bytes", len(document))
        return response

    # -- base-file distribution -------------------------------------------------------

    @staticmethod
    def _parse_base_file_url(url: str) -> tuple[str, int] | None:
        """Recognize ``<server>/__delta_base__/<class_id>/<version>`` URLs.

        Malformed shapes (missing version, non-integer or negative version,
        empty class id) return ``None`` — the URL then flows down the
        ordinary document path instead of crashing the request.  The live
        server feeds this attacker-controlled bytes, so it must be total.
        """
        parts = url.split("/")
        if BASE_FILE_SEGMENT not in parts:
            return None
        i = parts.index(BASE_FILE_SEGMENT)
        if i + 2 >= len(parts):
            return None  # missing class id and/or version
        class_id, version = parts[i + 1], parts[i + 2]
        if not class_id:
            return None
        # isascii + isdigit rejects "", "-1", "1.5", "1e3", and unicode
        # digit lookalikes that int() would reject or misread.
        if not version.isascii() or not version.isdigit():
            return None
        return class_id, int(version)

    @staticmethod
    def parse_base_file_url(url: str) -> tuple[str, int] | None:
        """Public base-file URL recognizer: ``(class_id, version)`` or None.

        The fleet router uses this to route a base-file request to the
        worker that minted the class id.
        """
        return DeltaServer._parse_base_file_url(url)

    def _serve_base_file(
        self, class_id: str, version: int, *, timings: dict[str, float]
    ) -> Response:
        try:
            cls = self.grouper.class_by_id(class_id)
        except KeyError:
            return Response(status=404, body=b"unknown class")
        with self._class_locked(cls, timings):
            body = cls.base_for_version(version)
            if body is None:
                return Response(status=404, body=b"stale base-file version")
            if not cls.integrity_ok(version):
                # Never distribute corrupted bytes; the class heals itself
                # on its next document fetch.
                self._quarantine(cls, cause="integrity")
                return Response(status=404, body=b"base-file quarantined")
            response = Response(status=200, body=body)
            response.headers.set(HEADER_DELTA_BASE, base_ref(class_id, version))
            response.mark_cachable()
        self._counters.inc("base_files_served")
        self._counters.inc("base_file_bytes", len(body))
        return response

    @staticmethod
    def base_file_url(server: str, class_id: str, version: int) -> str:
        """URL at which a class's base-file is served (proxy-cachable)."""
        return f"{server}/{BASE_FILE_SEGMENT}/{class_id}/{version}"
