"""Document classes: the unit of base-file sharing.

Under class-based delta-encoding "dynamic documents are grouped into
classes, and a single base-file is stored at the server per class"
(Section II).  A :class:`DocumentClass` owns:

* its membership (URLs grouped into it) and popularity counter, which the
  grouping search uses to order candidate classes;
* the *raw* base-file (chosen by the selection policy) and the
  *distributable* base-file (the anonymized version clients may hold),
  with a version number bumped on every promotion so stale client copies
  are detectable;
* cached differ indexes for both, since one base-file is diffed against
  every in-class request.

The two-stage base lifecycle implements Section V's rule that a base-file
"should not be distributed to clients" until anonymized, while "if there is
already an anonymized base-file and a rebase is triggered, the previous
base-file can be used until the new one is properly anonymized".
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.core.anonymize import AnonymizationState, Anonymizer
from repro.core.base_file import BaseFilePolicy
from repro.core.config import AnonymizationConfig
from repro.delta.codec import checksum
from repro.delta.light import LightEstimator
from repro.delta.vdelta import BaseIndex, VdeltaEncoder


@dataclass(slots=True)
class ClassStats:
    """Per-class accounting."""

    hits: int = 0
    deltas_served: int = 0
    full_served: int = 0
    group_rebases: int = 0
    basic_rebases: int = 0


class EncodeCache:
    """Per-class LRU of encoded deltas keyed by (base version, target checksum).

    Popular classes see the same (base, document) pair repeatedly — every
    member URL rendering the same snapshot, every concurrent client holding
    the current base — and the encode+compress is by far the most expensive
    stage of such a request.  One entry memoizes the finished artifact:
    ``(wire_size, compressed_payload)``.

    Safety: a hit can never serve a stale delta.  Entries are keyed by the
    base *version*, the engine's snapshot-encode-commit protocol revalidates
    that exact version at commit time, and versions are never reused while
    a class lives (the counter is monotonic; :meth:`DocumentClass.release_base`
    keeps it, :meth:`DocumentClass.restore_base` — which may set an arbitrary
    version — clears the cache).  The target checksum pins the document
    bytes; base bytes for a version are pinned by the promotion-time
    integrity checksum (corruption quarantines, which also clears).

    The cache has its own lock so the engine's off-lock encode path can
    consult it without touching the class lock.
    """

    __slots__ = ("capacity", "_entries", "_lock")

    def __init__(self, capacity: int = 8) -> None:
        self.capacity = capacity
        self._entries: OrderedDict[tuple[int, int], tuple[int, bytes]] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, version: int, target_checksum: int) -> tuple[int, bytes] | None:
        """Cached ``(wire_size, payload)`` for the pair, refreshing recency."""
        key = (version, target_checksum)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def put(
        self, version: int, target_checksum: int, wire_size: int, payload: bytes
    ) -> None:
        key = (version, target_checksum)
        with self._lock:
            self._entries[key] = (wire_size, payload)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class DocumentClass:
    """One class of similar documents sharing a single base-file."""

    def __init__(
        self,
        class_id: str,
        server: str,
        hint: str,
        anonymization: AnonymizationConfig,
        policy: BaseFilePolicy,
        encoder: VdeltaEncoder,
        estimator: LightEstimator,
        created_at: float = 0.0,
    ) -> None:
        self.class_id = class_id
        self.server = server
        self.hint = hint
        self.created_at = created_at
        self.policy = policy
        self.stats = ClassStats()
        self.members: set[str] = set()
        self.last_rebase_at = created_at

        # The sharded engine's unit of mutual exclusion: every mutation of
        # class state (membership, base lifecycle, policy samples, index
        # caches) happens under this lock, taken by the engine/grouper —
        # the methods below do not take it themselves, so lock-holding
        # callers can compose them freely.  Reentrant because composite
        # operations (ingest → rebase → adopt) nest helper calls.
        self.lock = threading.RLock()

        self._anon_config = anonymization
        self._encoder = encoder
        self._estimator = estimator

        self._raw_base: bytes | None = None
        self._distributable: bytes | None = None
        self.version = 0
        self._pending: Anonymizer | None = None

        # Self-healing: every distributable base is checksummed on
        # promotion so storage corruption is detected before a delta is
        # computed against rotten bytes; a quarantined class serves fulls
        # until it re-adopts a fresh base from the next good fetch.
        self.quarantined = False
        self._checksum: int | None = None
        self._previous_checksum: int | None = None

        # One previous distributable generation is kept live so clients
        # holding it keep receiving deltas across a rebase instead of
        # falling back to full responses while they re-fetch the new base.
        self._previous: bytes | None = None
        self._previous_version: int | None = None
        self._previous_index: BaseIndex | None = None

        self._full_index: BaseIndex | None = None
        self._light_index: BaseIndex | None = None
        self._raw_full_index: BaseIndex | None = None

        # The MinHash sketch of the current base (see repro.core.sketch):
        # the grouper registers it in the LSH candidate index and the
        # store persists it next to the committed base, so a warm restart
        # does not re-sketch every base.  Keyed by base object identity
        # (like the differ index caches) so promote/rebase/restore
        # invalidate it without extra bookkeeping.
        self.base_signature: tuple[int, ...] | None = None
        self._sketch_base: bytes | None = None

        # Finished (wire_size, compressed payload) artifacts per
        # (base version, target checksum); see EncodeCache for why hits
        # are safe across the engine's snapshot-encode-commit races.
        self.encode_cache = EncodeCache()

    # -- membership ----------------------------------------------------------

    @property
    def key(self) -> tuple[str, str]:
        """(server-part, hint-part) search key."""
        return (self.server, self.hint)

    @property
    def popularity(self) -> int:
        """Request count; the grouping search probes popular classes first."""
        return self.stats.hits

    def add_member(self, url: str) -> None:
        self.members.add(url)

    # -- content sketch --------------------------------------------------------

    def note_signature(
        self, signature: "tuple[int, ...] | None", base: bytes | None
    ) -> None:
        """Record the MinHash signature computed from exactly ``base``."""
        self.base_signature = signature
        self._sketch_base = base

    def signature_for(self, base: bytes | None) -> "tuple[int, ...] | None":
        """The cached signature iff it was computed from this ``base``
        object (identity check, same invalidation rule as the differ
        index caches)."""
        if base is not None and base is self._sketch_base:
            return self.base_signature
        return None

    # -- base-file lifecycle ---------------------------------------------------

    @property
    def raw_base(self) -> bytes | None:
        """The currently adopted (possibly not yet distributable) base-file."""
        return self._raw_base

    @property
    def distributable_base(self) -> bytes | None:
        """The anonymized base-file clients may cache, or ``None``."""
        return self._distributable

    @property
    def can_serve_deltas(self) -> bool:
        return (
            not self.quarantined
            and self._distributable is not None
            and len(self._distributable) > 0
        )

    @property
    def anonymization_pending(self) -> bool:
        return (
            self._pending is not None
            and self._pending.state is AnonymizationState.COLLECTING
        )

    def adopt_base(self, document: bytes, owner_user: str | None, now: float) -> None:
        """Adopt a new raw base-file and start (re-)anonymizing it.

        The previous distributable base, if any, stays in service until the
        new one is ready.  Adopting also lifts any quarantine: a fresh
        base from a good fetch is exactly the recovery path.
        """
        self.quarantined = False
        self._raw_base = document
        self.last_rebase_at = now
        self._pending = Anonymizer(
            document, self._anon_config, encoder=self._encoder, owner_user=owner_user
        )
        if self._pending.state is AnonymizationState.DISABLED:
            self._promote(self._pending)

    def feed(self, document: bytes, user_id: str | None) -> None:
        """Feed one in-class document to the pending anonymization, if any."""
        if self._pending is None:
            return
        self._pending.observe(document, user_id)
        if self._pending.state is AnonymizationState.READY:
            self._promote(self._pending)

    def _promote(self, anonymizer: Anonymizer) -> None:
        assert anonymizer.anonymized is not None
        if self._distributable is not None:
            self._previous = self._distributable
            self._previous_version = self.version
            self._previous_index = self._full_index
            self._previous_checksum = self._checksum
        self._distributable = anonymizer.anonymized
        self._checksum = checksum(self._distributable)
        self.version += 1
        self._pending = None
        self._full_index = None
        self._light_index = None

    @property
    def previous_version(self) -> int | None:
        """Version number of the still-servable previous base, if any."""
        return self._previous_version

    def base_for_version(self, version: int) -> bytes | None:
        """The distributable base matching ``version`` (current or previous)."""
        if version == self.version and self._distributable is not None:
            return self._distributable
        if version == self._previous_version:
            return self._previous
        return None

    def integrity_ok(self, version: int) -> bool:
        """Whether the stored base for ``version`` still matches its
        promotion-time checksum (False = corrupted or absent)."""
        body = self.base_for_version(version)
        if body is None:
            return False
        expected = (
            self._checksum if version == self.version else self._previous_checksum
        )
        return expected is not None and checksum(body) == expected

    def quarantine(self) -> int:
        """Take every stored base out of service; returns bytes freed.

        Used when corruption or an encode failure is detected: the class
        stops serving deltas immediately, serves fulls, and re-adopts a
        fresh base (clearing the quarantine) on its next good fetch — so
        an engine fault costs one degraded response, never a 500.
        """
        self.quarantined = True
        return self.release_base()

    # -- index caching -----------------------------------------------------------

    def drop_previous(self) -> int:
        """Release the previous-generation base; returns bytes freed.

        Clients still holding the old version will get a full response on
        their next request and pick up the current base — the pre-graceful
        rebase behaviour, acceptable under storage pressure.
        """
        freed = len(self._previous or b"")
        self._previous = None
        self._previous_version = None
        self._previous_index = None
        self._previous_checksum = None
        return freed

    def release_base(self) -> int:
        """Release every base-file this class holds; returns bytes freed.

        The class survives (members, policy state, version counter) and
        re-adopts a base from the next request it serves — the storage-
        pressure escape hatch.  The version counter is NOT reset, so
        clients holding released generations are correctly detected as
        stale when the class comes back.
        """
        freed = self.drop_previous()
        freed += len(self._raw_base or b"")
        if self._distributable is not None and self._distributable is not self._raw_base:
            freed += len(self._distributable)
        self._raw_base = None
        self._distributable = None
        self._pending = None
        self._full_index = None
        self._light_index = None
        self._raw_full_index = None
        self._checksum = None
        self.base_signature = None
        self._sketch_base = None
        self.encode_cache.clear()
        return freed

    def restore_base(self, document: bytes, version: int, doc_checksum: int) -> None:
        """Rehydrate this class's base-file from the persistent store.

        The stored document is the *distributable* base (anonymization ran
        before it was ever committed), so it doubles as the raw base — no
        anonymization window reopens on restart.  The version counter
        resumes where the previous process stopped, so clients holding
        pre-restart base-files keep getting deltas.  The previous
        generation is not persisted; clients holding it get one full
        response and re-fetch.  Caller holds ``self.lock`` (or owns the
        class exclusively, as during warm restart).
        """
        self._raw_base = document
        self._distributable = document
        self.version = version
        self._checksum = doc_checksum
        self._pending = None
        self.quarantined = False
        self._previous = None
        self._previous_version = None
        self._previous_index = None
        self._previous_checksum = None
        self._full_index = None
        self._light_index = None
        self._raw_full_index = None
        self.base_signature = None
        self._sketch_base = None
        # The restored version number may collide with pre-restart cache
        # entries for different base bytes; never let them be confused.
        self.encode_cache.clear()

    @property
    def distributable_checksum(self) -> int | None:
        """Promotion-time adler32 of the current distributable base."""
        return self._checksum

    def full_index(self) -> BaseIndex:
        """Cached full-differ index over the distributable base."""
        if not self.can_serve_deltas:
            raise RuntimeError(f"class {self.class_id} has no distributable base")
        if self._full_index is None:
            assert self._distributable is not None
            self._full_index = self._encoder.index(self._distributable)
        return self._full_index

    def full_index_for(self, version: int) -> BaseIndex | None:
        """Cached index for a served base version (current or previous)."""
        if version == self.version:
            return self.full_index() if self.can_serve_deltas else None
        if version == self._previous_version and self._previous is not None:
            if self._previous_index is None:
                self._previous_index = self._encoder.index(self._previous)
            return self._previous_index
        return None

    def exact_match_index(self) -> BaseIndex | None:
        """Cached *full*-differ index over the best base for exact matching.

        The grouper's ``exact_delta`` probe path compares a document
        against this class's base with the full differ; rebuilding a
        fresh index per probe made joining a class O(probes × base size).
        The distributable base reuses :meth:`full_index` (the same index
        delta generation uses); during the anonymization window the raw
        base gets its own cached index, invalidated by identity when the
        base changes.
        """
        if self.can_serve_deltas:
            return self.full_index()
        base = self._raw_base
        if not base:
            return None
        if self._raw_full_index is None or self._raw_full_index.base is not base:
            self._raw_full_index = self._encoder.index(base)
        return self._raw_full_index

    def light_index(self) -> BaseIndex | None:
        """Cached light-estimator index over the best base for matching.

        Grouping compares documents against the distributable base when one
        exists (that is what deltas will be computed against) and falls back
        to the raw base during the initial anonymization window.
        """
        base = self._distributable if self.can_serve_deltas else self._raw_base
        if not base:
            return None
        if self._light_index is None or self._light_index.base is not base:
            self._light_index = self._estimator.index(base)
        return self._light_index

    def __repr__(self) -> str:
        return (
            f"DocumentClass(id={self.class_id!r}, key={self.key!r}, "
            f"members={len(self.members)}, version={self.version})"
        )
