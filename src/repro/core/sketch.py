"""Content sketches: MinHash signatures and the LSH candidate index.

The grouping search's scaling wall is candidate *selection*: with no
same-hint class to narrow the field, Section III's procedure falls back
to considering every same-server class, and even the probe-order sort is
O(classes) per request.  On a million-URL corpus that linear factor —
not the light estimator — dominates.  Related systems (Vcache's content
fingerprints, admission-by-similarity schemes) make selection cheap and
content-aware instead of exhaustive; this module is that front stage.

Two pieces:

* :class:`MinHashSketcher` — a per-document signature of ``bands × rows``
  32-bit slots, computed by *one-permutation hashing*: the document is
  shingled (overlapping byte windows), each shingle is hashed **once**
  with ``zlib.crc32``, the hash picks a slot, and the slot keeps the
  minimum hash it has seen.  Empty slots are densified by borrowing from
  the next non-empty slot (rotation), so short documents still produce a
  full signature.  One hash per shingle is what makes this affordable in
  pure Python — a classic k-permutation MinHash would cost ``num_perm``
  multiplies per shingle.  The expected fraction of equal slots between
  two signatures estimates the Jaccard similarity of the shingle sets.

* :class:`SketchIndex` — the LSH banding dictionary.  A signature is cut
  into ``bands`` groups of ``rows`` slots; each band hashes to a bucket
  key, and a class is registered under its current base's band keys.
  Two documents with shingle-set similarity ``j`` collide in at least
  one band with probability ``1 - (1 - j^rows)^bands`` — with the
  default 8×4 geometry a ``j = 0.9`` near-duplicate is recalled with
  probability ~0.9998 while a ``j = 0.3`` stranger slips through ~6% of
  the time, and every false positive is rejected by the light-estimate
  confirmation stage anyway.

Signatures are plain tuples of ints so they serialize into the store's
JSON journal unchanged; band keys are recomputed from the signature with
:func:`zlib.crc32` over packed bytes, which keeps them stable across
processes (no reliance on Python's randomized hashing).
"""

from __future__ import annotations

import struct
import threading
from zlib import crc32

__all__ = ["MinHashSketcher", "SketchIndex", "signature_similarity"]

#: sentinel above any 32-bit hash value (slot "empty" marker)
_EMPTY = 1 << 32


class MinHashSketcher:
    """One-permutation MinHash over byte shingles.

    ``shingle_size``/``shingle_step`` control the byte windows hashed
    (overlap = size - step); ``bands × rows`` fixes the signature width.
    A sketcher is immutable and thread-safe — :meth:`signature` touches
    only locals.
    """

    __slots__ = ("shingle_size", "shingle_step", "bands", "rows", "num_perm")

    def __init__(
        self,
        shingle_size: int = 16,
        shingle_step: int = 8,
        bands: int = 8,
        rows: int = 4,
    ) -> None:
        if shingle_size < 1:
            raise ValueError(f"shingle_size must be >= 1, got {shingle_size}")
        if shingle_step < 1:
            raise ValueError(f"shingle_step must be >= 1, got {shingle_step}")
        if bands < 1 or rows < 1:
            raise ValueError(f"bands and rows must be >= 1, got {bands}x{rows}")
        self.shingle_size = shingle_size
        self.shingle_step = shingle_step
        self.bands = bands
        self.rows = rows
        self.num_perm = bands * rows

    def signature(self, document: bytes) -> tuple[int, ...]:
        """The document's MinHash signature (``num_perm`` 32-bit ints).

        Deterministic for given bytes and sketcher geometry; the empty
        document gets the all-zero signature.
        """
        n = self.num_perm
        if not document:
            return (0,) * n
        mins = [_EMPTY] * n
        view = memoryview(document)
        size = self.shingle_size
        last = len(document) - size
        if last < 0:
            # Shorter than one shingle: hash the whole document.
            h = crc32(document)
            mins[h % n] = h
        else:
            for i in range(0, last + 1, self.shingle_step):
                h = crc32(view[i : i + size])
                slot = h % n
                if h < mins[slot]:
                    mins[slot] = h
        if _EMPTY in mins:
            self._densify(mins)
        return tuple(mins)

    @staticmethod
    def _densify(mins: list[int]) -> None:
        """Fill empty slots by rotation (borrow the next non-empty slot).

        Standard densification for one-permutation hashing: both
        documents borrow the same way, so borrowed slots still agree
        exactly when the underlying shingle sets do.
        """
        n = len(mins)
        # At least one slot is filled (callers hash >= 1 shingle).
        for i in range(n):
            if mins[i] != _EMPTY:
                continue
            for j in range(1, n):
                value = mins[(i + j) % n]
                if value != _EMPTY:
                    mins[i] = value
                    break

    def band_keys(self, signature: tuple[int, ...]) -> list[int]:
        """Stable bucket keys, one per band, derived from the signature."""
        rows = self.rows
        keys: list[int] = []
        for b in range(self.bands):
            chunk = signature[b * rows : (b + 1) * rows]
            # Salt with the band number so identical row values in
            # different bands never alias to one bucket.
            keys.append(crc32(struct.pack(f">{rows + 1}I", b, *chunk)))
        return keys


def signature_similarity(a: tuple[int, ...], b: tuple[int, ...]) -> float:
    """Estimated Jaccard similarity: the fraction of agreeing slots."""
    if len(a) != len(b) or not a:
        return 0.0
    return sum(1 for x, y in zip(a, b) if x == y) / len(a)


class SketchIndex:
    """LSH banding index: band bucket → ids of classes registered there.

    Thread-safe behind one internal lock; every operation is a handful
    of dict hits, so the lock is never held across I/O or hashing work
    (callers compute signatures *before* calling in).  Lock ordering:
    callers may hold a shard or class lock when calling in — the index
    never calls out, so no cycle is possible.
    """

    __slots__ = ("_sketcher", "_lock", "_buckets", "_registered")

    def __init__(self, sketcher: MinHashSketcher) -> None:
        self._sketcher = sketcher
        self._lock = threading.Lock()
        #: (band, key) → set of class ids
        self._buckets: dict[tuple[int, int], set[str]] = {}
        #: class id → the band keys it is currently registered under
        self._registered: dict[str, list[int]] = {}

    def register(self, class_id: str, signature: tuple[int, ...]) -> None:
        """(Re-)register a class under its base's signature bands.

        Idempotent; a class whose base changed is moved to its new
        buckets atomically with respect to lookups.
        """
        keys = self._sketcher.band_keys(signature)
        with self._lock:
            old = self._registered.get(class_id)
            if old == keys:
                return
            if old is not None:
                self._discard_locked(class_id, old)
            self._registered[class_id] = keys
            for band, key in enumerate(keys):
                self._buckets.setdefault((band, key), set()).add(class_id)

    def unregister(self, class_id: str) -> None:
        with self._lock:
            keys = self._registered.pop(class_id, None)
            if keys is not None:
                self._discard_locked(class_id, keys)

    def _discard_locked(self, class_id: str, keys: list[int]) -> None:
        for band, key in enumerate(keys):
            bucket = self._buckets.get((band, key))
            if bucket is None:
                continue
            bucket.discard(class_id)
            if not bucket:
                del self._buckets[(band, key)]

    def candidates(self, signature: tuple[int, ...]) -> list[str]:
        """Ids of classes sharing at least one band with ``signature``,
        ordered by the number of matching bands (best first) so the
        probe budget is spent on the most similar candidates."""
        keys = self._sketcher.band_keys(signature)
        matches: dict[str, int] = {}
        with self._lock:
            for band, key in enumerate(keys):
                for class_id in self._buckets.get((band, key), ()):
                    matches[class_id] = matches.get(class_id, 0) + 1
        if len(matches) <= 1:
            return list(matches)
        return sorted(matches, key=matches.__getitem__, reverse=True)

    def __len__(self) -> int:
        with self._lock:
            return len(self._registered)

    def bucket_count(self) -> int:
        with self._lock:
            return len(self._buckets)
