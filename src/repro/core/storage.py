"""Server-side base-file storage accounting and budget enforcement.

The paper's whole motivation is that classic delta-encoding "suffers from
enormous storage requirements on the server-side".  Class-based encoding
shrinks the requirement by orders of magnitude, but a production
delta-server still wants a hard budget: this module tracks what each
class pins — the *live* in-memory base-files (raw + distributable +
previous generation) **and**, when the persistent store is wired in, the
*history* each class keeps on disk as bounded delta chains — and, when a
budget is set, reclaims space in stages, cheapest consequence first:

0. evict cold classes' on-disk *history* (all chain entries behind the
   latest version; the latest is re-rooted as a full snapshot so warm
   restart still works — only point-in-time recovery of old versions is
   lost);
1. drop *previous-generation* bases (they only smooth rebase transitions;
   clients holding them fall back to a full response + re-fetch);
2. release the base-files of the least popular classes entirely — the
   class survives (membership, policy samples) and re-adopts a base from
   the next request it sees, paying one anonymization warm-up.  The
   release is journaled so a crash-restart does not resurrect the bytes.

After a pass that evicted history, the pack is compacted when its
garbage fraction crosses ``compact_garbage_ratio`` — evicted bytes only
become free disk space at compaction.

Concurrency: at most one enforcement pass runs at a time (an internal
manager lock — also what keeps the reclaim counters exact), and every
per-class read or release happens under that class's own lock, one class
at a time.  The manager never holds two class locks at once and callers
must not hold *any* class lock while invoking :meth:`StorageManager.enforce`,
which together rule out lock-ordering deadlocks with the sharded engine's
request pipeline.  Store calls take the store's own lock *after* the
class lock — same direction the engine's commit hook uses, so the
ordering stays acyclic.  A class released mid-flight is caught by the
engine's delta-commit revalidation (the snapshot version is gone → full
response).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.classes import DocumentClass

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.hooks import StoreHooks

#: compact the pack once this fraction of its payload bytes is garbage
DEFAULT_COMPACT_GARBAGE_RATIO = 0.5


@dataclass(slots=True)
class StorageStats:
    """Budget-manager accounting.

    ``live_bytes`` / ``history_bytes`` are the split measured by the most
    recent :meth:`StorageManager.usage` call (enforcement refreshes them):
    live is what classes pin in memory, history is what their on-disk
    delta chains pin in the pack.
    """

    budget_bytes: int | None = None
    previous_drops: int = 0
    base_releases: int = 0
    history_evictions: int = 0
    compactions: int = 0
    live_bytes: int = 0
    history_bytes: int = 0

    @property
    def enforced(self) -> bool:
        return self.budget_bytes is not None

    @property
    def used_bytes(self) -> int:
        return self.live_bytes + self.history_bytes


def class_storage_bytes(cls: DocumentClass) -> int:
    """Bytes this class pins on the server (raw + distributable + previous).

    Callers that may race class mutation must hold ``cls.lock``.
    """
    total = len(cls.raw_base or b"")
    distributable = cls.distributable_base
    if distributable is not None and distributable is not cls.raw_base:
        total += len(distributable)
    if cls.previous_version is not None:
        previous = cls.base_for_version(cls.previous_version)
        total += len(previous or b"")
    return total


class StorageManager:
    """Enforces a base-file storage budget across a set of classes."""

    def __init__(
        self,
        budget_bytes: int | None = None,
        *,
        store_hooks: "StoreHooks | None" = None,
        compact_garbage_ratio: float = DEFAULT_COMPACT_GARBAGE_RATIO,
    ) -> None:
        if budget_bytes is not None and budget_bytes <= 0:
            raise ValueError(f"budget_bytes must be > 0, got {budget_bytes}")
        self.stats = StorageStats(budget_bytes=budget_bytes)
        self._hooks = store_hooks
        self._compact_garbage_ratio = compact_garbage_ratio
        self._lock = threading.Lock()

    @property
    def _store(self):
        return self._hooks.store if self._hooks is not None else None

    def total_bytes(self, classes: list[DocumentClass]) -> int:
        """Current storage across ``classes`` — in-memory *and* on-disk."""
        live, history = self.usage(classes)
        return live + history

    def usage(self, classes: list[DocumentClass]) -> tuple[int, int]:
        """Measure (and record) the live / history storage split."""
        live = 0
        for cls in classes:
            with cls.lock:
                live += class_storage_bytes(cls)
        store = self._store
        history = store.live_pack_bytes if store is not None else 0
        self.stats.live_bytes = live
        self.stats.history_bytes = history
        return live, history

    def enforce(
        self, classes: list[DocumentClass], protect: DocumentClass | None = None
    ) -> int:
        """Reclaim space until within budget; returns bytes reclaimed.

        ``protect`` (typically the class serving the current request) is
        never released, though its history and previous generation may
        still be reclaimed.  Do not call while holding any class lock.
        """
        budget = self.stats.budget_bytes
        if budget is None:
            return 0
        with self._lock:
            used = self.total_bytes(classes)
            if used <= budget:
                return 0
            reclaimed = 0
            by_coldness = sorted(classes, key=lambda c: c.popularity)
            store = self._store

            # Stage 0: on-disk history of the coldest classes.  Cheapest
            # loss — the latest version survives (re-rooted full), only
            # older chain entries go.
            if store is not None:
                evicted_any = False
                for cls in by_coldness:
                    if used - reclaimed <= budget:
                        break
                    freed = store.evict_history(cls.class_id)
                    if freed:
                        reclaimed += freed
                        self.stats.history_evictions += 1
                        evicted_any = True
                if (
                    evicted_any
                    and store.garbage_ratio() >= self._compact_garbage_ratio
                ):
                    store.compact()
                    self.stats.compactions += 1
                if used - reclaimed <= budget:
                    self.usage(classes)
                    return reclaimed

            # Stage 1: previous generations, coldest classes first.
            for cls in by_coldness:
                if used - reclaimed <= budget:
                    self.usage(classes)
                    return reclaimed
                with cls.lock:
                    freed = cls.drop_previous()
                if freed:
                    reclaimed += freed
                    self.stats.previous_drops += 1

            # Stage 2: whole base-files of the least popular classes.
            for cls in by_coldness:
                if used - reclaimed <= budget:
                    break
                if cls is protect:
                    continue
                with cls.lock:
                    freed = cls.release_base()
                    if freed and self._hooks is not None:
                        # Journal the release so a crash-restart does not
                        # resurrect bytes the budget just reclaimed (the
                        # store's chain for this class becomes garbage,
                        # which also counts as reclaimed space).
                        if store is not None:
                            freed += store.class_disk_bytes(cls.class_id)
                        self._hooks.base_released(cls.class_id)
                if freed:
                    reclaimed += freed
                    self.stats.base_releases += 1
            self.usage(classes)
            return reclaimed
