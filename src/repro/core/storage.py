"""Server-side base-file storage accounting and budget enforcement.

The paper's whole motivation is that classic delta-encoding "suffers from
enormous storage requirements on the server-side".  Class-based encoding
shrinks the requirement by orders of magnitude, but a production
delta-server still wants a hard budget: this module tracks per-class
base-file bytes and, when a budget is set, reclaims space in two stages:

1. drop *previous-generation* bases (they only smooth rebase transitions;
   clients holding them fall back to a full response + re-fetch);
2. release the base-files of the least popular classes entirely — the
   class survives (membership, policy samples) and re-adopts a base from
   the next request it sees, paying one anonymization warm-up.

Concurrency: at most one enforcement pass runs at a time (an internal
manager lock — also what keeps the reclaim counters exact), and every
per-class read or release happens under that class's own lock, one class
at a time.  The manager never holds two class locks at once and callers
must not hold *any* class lock while invoking :meth:`StorageManager.enforce`,
which together rule out lock-ordering deadlocks with the sharded engine's
request pipeline.  A class released mid-flight is caught by the engine's
delta-commit revalidation (the snapshot version is gone → full response).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.core.classes import DocumentClass


@dataclass(slots=True)
class StorageStats:
    """Budget-manager accounting."""

    budget_bytes: int | None = None
    previous_drops: int = 0
    base_releases: int = 0

    @property
    def enforced(self) -> bool:
        return self.budget_bytes is not None


def class_storage_bytes(cls: DocumentClass) -> int:
    """Bytes this class pins on the server (raw + distributable + previous).

    Callers that may race class mutation must hold ``cls.lock``.
    """
    total = len(cls.raw_base or b"")
    distributable = cls.distributable_base
    if distributable is not None and distributable is not cls.raw_base:
        total += len(distributable)
    if cls.previous_version is not None:
        previous = cls.base_for_version(cls.previous_version)
        total += len(previous or b"")
    return total


class StorageManager:
    """Enforces a base-file storage budget across a set of classes."""

    def __init__(self, budget_bytes: int | None = None) -> None:
        if budget_bytes is not None and budget_bytes <= 0:
            raise ValueError(f"budget_bytes must be > 0, got {budget_bytes}")
        self.stats = StorageStats(budget_bytes=budget_bytes)
        self._lock = threading.Lock()

    def total_bytes(self, classes: list[DocumentClass]) -> int:
        """Current base-file storage across ``classes``."""
        total = 0
        for cls in classes:
            with cls.lock:
                total += class_storage_bytes(cls)
        return total

    def enforce(
        self, classes: list[DocumentClass], protect: DocumentClass | None = None
    ) -> int:
        """Reclaim space until within budget; returns bytes reclaimed.

        ``protect`` (typically the class serving the current request) is
        never released, though its previous generation may be dropped.
        Do not call while holding any class lock.
        """
        budget = self.stats.budget_bytes
        if budget is None:
            return 0
        with self._lock:
            used = self.total_bytes(classes)
            if used <= budget:
                return 0
            reclaimed = 0

            # Stage 1: previous generations, coldest classes first.
            for cls in sorted(classes, key=lambda c: c.popularity):
                if used - reclaimed <= budget:
                    return reclaimed
                with cls.lock:
                    freed = cls.drop_previous()
                if freed:
                    reclaimed += freed
                    self.stats.previous_drops += 1

            # Stage 2: whole base-files of the least popular classes.
            for cls in sorted(classes, key=lambda c: c.popularity):
                if used - reclaimed <= budget:
                    break
                if cls is protect:
                    continue
                with cls.lock:
                    freed = cls.release_base()
                if freed:
                    reclaimed += freed
                    self.stats.base_releases += 1
            return reclaimed
