"""Base-file selection algorithms (paper Section IV).

A class needs one good base-file: the document that minimizes the expected
delta to the class members.  The paper compares three online schemes
(Table III) and we add the offline optimum as a reference:

* :class:`FirstResponsePolicy` — use whatever document created the class;
* :class:`RandomizedPolicy` — the paper's algorithm: sample responses with
  probability ``p``, keep at most ``K`` of them, serve the stored document
  minimizing the sum of deltas to the other stored documents, evict the one
  maximizing it (with the footnote-3 variants);
* :class:`OnlineOptimalPolicy` — keep *every* document seen so far and use
  the one minimizing the average delta so far ("online optimal" in
  Table III; memory-unbounded, baseline only);
* :func:`offline_best` — full-knowledge optimum over a finished sequence.

Policies operate on raw document bytes and a pluggable ``delta_size``
function, so Table III can measure them with the full differ while the
delta-server runs them with the cheap light estimator.
"""

from __future__ import annotations

import itertools
import random
from typing import Callable, Protocol, Sequence

from repro.core.config import BaseFileConfig, EvictionVariant

DeltaSizeFn = Callable[[bytes, bytes], int]

_candidate_ids = itertools.count()


class BaseFilePolicy(Protocol):
    """Interface every base-file selection scheme implements."""

    name: str

    def observe(self, document: bytes, user_id: str | None = None) -> None:
        """Feed one response body (and its requesting user) from the stream."""

    def current(self) -> bytes | None:
        """The document the policy would use as base-file right now."""

    def current_owner(self) -> str | None:
        """User whose request produced :meth:`current` (anonymization must
        exclude the base-file's own user, paper footnote 5)."""

    def flush(self) -> None:
        """Drop accumulated candidates (basic-rebase, paper Section IV)."""


class FirstResponsePolicy:
    """Use the first response ever seen as the base-file, forever.

    The paper's strawman: "depending on the web-site and the request
    sequence, the performance ... can be very bad".
    """

    name = "first-response"

    def __init__(self) -> None:
        self._first: bytes | None = None
        self._owner: str | None = None

    def observe(self, document: bytes, user_id: str | None = None) -> None:
        if self._first is None:
            self._first = document
            self._owner = user_id

    def current(self) -> bytes | None:
        return self._first

    def current_owner(self) -> str | None:
        return self._owner

    def flush(self) -> None:
        self._first = None
        self._owner = None


class _Candidate:
    """A stored document plus its deltas to the measurement set."""

    __slots__ = ("doc", "deltas", "id", "owner")

    def __init__(self, doc: bytes, owner: str | None = None) -> None:
        self.doc = doc
        self.id = next(_candidate_ids)
        self.owner = owner
        # delta sizes keyed by the *other* document's candidate id
        self.deltas: dict[int, int] = {}

    def utility(self) -> int:
        """Sum of deltas: lower is a better base-file (paper's local utility)."""
        return sum(self.deltas.values())


class RandomizedPolicy:
    """The paper's randomized online base-file algorithm.

    1. Sample each request with probability ``p`` and store the document.
    2. Use as base-file the stored document minimizing the sum of deltas to
       the other stored documents.
    3. Keep at most ``K``; on overflow evict the document maximizing the
       sum of deltas — or one of the footnote-3 variants:

       * ``PERIODIC_RANDOM``: every ``random_evict_period``-th eviction,
         evict a random stored document (never the current best) to avoid
         the store clustering around near-duplicates;
       * ``TWO_SET``: keep a second, independent set of ``K`` random
         samples and measure candidates against *it*, so the measurement
         set cannot collapse onto the candidate set.
    """

    name = "randomized"

    def __init__(
        self,
        config: BaseFileConfig,
        delta_size: DeltaSizeFn,
        rng: random.Random,
    ) -> None:
        self._config = config
        self._delta_size = delta_size
        self._rng = rng
        self._candidates: list[_Candidate] = []
        self._references: list[_Candidate] = []  # TWO_SET only
        self._evictions = 0

    # -- policy interface --------------------------------------------------

    def observe(self, document: bytes, user_id: str | None = None) -> None:
        if self._rng.random() >= self._config.sample_probability:
            return
        self._admit(_Candidate(document, owner=user_id))

    def current(self) -> bytes | None:
        if not self._candidates:
            return None
        return min(self._candidates, key=_Candidate.utility).doc

    def current_owner(self) -> str | None:
        if not self._candidates:
            return None
        return min(self._candidates, key=_Candidate.utility).owner

    def flush(self) -> None:
        self._candidates.clear()
        self._references.clear()

    def utility_of(self, document: bytes) -> float | None:
        """Mean delta from ``document`` to the measurement set.

        Lets the rebase controller compare an arbitrary incumbent base-file
        against the policy's preferred candidate on equal footing.  One
        occurrence of ``document`` itself is excluded from the measurement
        set (a stored candidate must not get a free zero-delta against
        itself).  ``None`` when there is nothing to measure against.
        """
        references = self._measurement_set()
        skipped_self = False
        total = 0
        count = 0
        for ref in references:
            if not skipped_self and ref.doc == document:
                skipped_self = True
                continue
            total += self._delta_size(document, ref.doc)
            count += 1
        if count == 0:
            return None
        return total / count

    # -- internals -----------------------------------------------------------

    @property
    def stored_documents(self) -> list[bytes]:
        """Candidate documents currently stored (diagnostics/tests)."""
        return [c.doc for c in self._candidates]

    def _measurement_set(self) -> list[_Candidate]:
        if self._config.eviction is EvictionVariant.TWO_SET:
            return self._references
        return self._candidates

    def _admit(self, candidate: _Candidate) -> None:
        if self._config.eviction is EvictionVariant.TWO_SET:
            self._admit_two_set(candidate)
            return
        # Measure the newcomer against current residents and vice versa.
        for other in self._candidates:
            candidate.deltas[other.id] = self._delta_size(candidate.doc, other.doc)
            other.deltas[candidate.id] = self._delta_size(other.doc, candidate.doc)
        self._candidates.append(candidate)
        if len(self._candidates) > self._config.capacity:
            self._evict()

    def _admit_two_set(self, candidate: _Candidate) -> None:
        reference = _Candidate(candidate.doc)
        # New candidate measured against the reference set.
        for ref in self._references:
            candidate.deltas[ref.id] = self._delta_size(candidate.doc, ref.doc)
        # Existing candidates gain a measurement against the new reference.
        for existing in self._candidates:
            existing.deltas[reference.id] = self._delta_size(
                existing.doc, reference.doc
            )
        self._candidates.append(candidate)
        self._references.append(reference)
        if len(self._candidates) > self._config.capacity:
            worst = max(self._candidates, key=_Candidate.utility)
            self._remove_candidate(worst)
        if len(self._references) > self._config.capacity:
            victim = self._rng.choice(self._references)
            self._references.remove(victim)
            for existing in self._candidates:
                existing.deltas.pop(victim.id, None)

    def _evict(self) -> None:
        self._evictions += 1
        period = self._config.random_evict_period
        if (
            self._config.eviction is EvictionVariant.PERIODIC_RANDOM
            and period > 0
            and self._evictions % period == 0
        ):
            best = min(self._candidates, key=_Candidate.utility)
            pool = [c for c in self._candidates if c is not best]
            victim = self._rng.choice(pool)
        else:
            victim = max(self._candidates, key=_Candidate.utility)
        self._remove_candidate(victim)

    def _remove_candidate(self, victim: _Candidate) -> None:
        self._candidates.remove(victim)
        for other in self._candidates:
            other.deltas.pop(victim.id, None)


class OnlineOptimalPolicy:
    """Keep everything; use the document minimizing the average delta so far.

    Table III's "Online Optimal" column.  Cost grows linearly per request in
    both memory and delta computations — exactly the impracticality the
    randomized algorithm exists to avoid — so it is a baseline, not a
    deployable policy.  ``max_documents`` caps the store as a safety net.
    """

    name = "online-optimal"

    def __init__(
        self, delta_size: DeltaSizeFn, max_documents: int | None = None
    ) -> None:
        self._delta_size = delta_size
        self._max_documents = max_documents
        self._docs: list[bytes] = []
        self._sums: list[int] = []
        self._owners: list[str | None] = []

    def observe(self, document: bytes, user_id: str | None = None) -> None:
        if self._max_documents is not None and len(self._docs) >= self._max_documents:
            return
        new_sum = 0
        for i, existing in enumerate(self._docs):
            self._sums[i] += self._delta_size(existing, document)
            new_sum += self._delta_size(document, existing)
        self._docs.append(document)
        self._sums.append(new_sum)
        self._owners.append(user_id)

    def _best_index(self) -> int | None:
        if not self._docs:
            return None
        return min(range(len(self._docs)), key=self._sums.__getitem__)

    def current(self) -> bytes | None:
        best = self._best_index()
        return None if best is None else self._docs[best]

    def current_owner(self) -> str | None:
        best = self._best_index()
        return None if best is None else self._owners[best]

    def flush(self) -> None:
        self._docs.clear()
        self._sums.clear()
        self._owners.clear()


def offline_best(
    documents: Sequence[bytes], delta_size: DeltaSizeFn
) -> tuple[int, bytes]:
    """Full-knowledge optimum: the document minimizing the sum of deltas.

    The "ideal ... offline algorithm" the paper defines but cannot run
    online.  O(n²) delta computations; reference for tests and ablations.
    """
    if not documents:
        raise ValueError("offline_best needs at least one document")
    best_index = 0
    best_sum: int | None = None
    for i, base in enumerate(documents):
        total = sum(
            delta_size(base, other) for j, other in enumerate(documents) if j != i
        )
        if best_sum is None or total < best_sum:
            best_sum = total
            best_index = i
    return best_index, documents[best_index]


def make_policy(
    name: str,
    config: BaseFileConfig,
    delta_size: DeltaSizeFn,
    rng: random.Random,
    max_documents: int | None = None,
) -> BaseFilePolicy:
    """Factory keyed by policy name (used by benches and config files)."""
    if name == FirstResponsePolicy.name:
        return FirstResponsePolicy()
    if name == RandomizedPolicy.name:
        return RandomizedPolicy(config, delta_size, rng)
    if name == OnlineOptimalPolicy.name:
        return OnlineOptimalPolicy(delta_size, max_documents)
    raise ValueError(f"unknown base-file policy {name!r}")
