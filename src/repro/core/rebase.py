"""Rebase policies: when a class replaces its base-file (paper Section IV).

Two orthogonal triggers:

* **group-rebase** — the randomized selection algorithm has found a better
  base-file candidate *and* a rebase-timeout since the previous rebase has
  expired.  Timeouts exist because "after a rebase, the new base-file should
  be distributed to all clients before they can benefit from
  delta-encoding" — rebasing too often churns client caches.
* **basic-rebase** — "triggered when the generated deltas are relatively
  large": the base has drifted from the class content.  On basic-rebase all
  stored candidates are flushed and the current document becomes the base.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.base_file import BaseFilePolicy
from repro.core.config import BaseFileConfig


@dataclass(slots=True)
class RebaseDecision:
    """What the controller wants done for the current request, if anything."""

    kind: str  # "group" or "basic"
    new_base: bytes


class RebaseController:
    """Tracks delta quality and timeout state for one class."""

    def __init__(self, config: BaseFileConfig) -> None:
        self._config = config
        self._ratio_ewma: float | None = None

    @property
    def smoothed_ratio(self) -> float | None:
        """EWMA of delta-size / document-size for served deltas."""
        return self._ratio_ewma

    def note_delta(self, delta_bytes: int, document_bytes: int) -> None:
        """Record the quality of one served delta."""
        if document_bytes <= 0:
            return
        ratio = delta_bytes / document_bytes
        alpha = self._config.ratio_smoothing
        if self._ratio_ewma is None:
            self._ratio_ewma = ratio
        else:
            self._ratio_ewma = alpha * ratio + (1 - alpha) * self._ratio_ewma

    def reset(self) -> None:
        """Forget delta-quality history (called after any rebase)."""
        self._ratio_ewma = None

    def check(
        self,
        policy: BaseFilePolicy,
        incumbent: bytes | None,
        current_document: bytes,
        now: float,
        last_rebase_at: float,
    ) -> RebaseDecision | None:
        """Decide whether to rebase, and to what.

        Basic-rebase has priority: persistently bad deltas mean the class
        content has drifted and waiting for the sampler is pointless.
        """
        if incumbent is None:
            return RebaseDecision(kind="basic", new_base=current_document)
        if (
            self._ratio_ewma is not None
            and self._ratio_ewma > self._config.basic_rebase_ratio
        ):
            return RebaseDecision(kind="basic", new_base=current_document)
        if now - last_rebase_at < self._config.rebase_timeout:
            return None
        challenger = policy.current()
        if challenger is None or challenger == incumbent:
            return None
        if not self._improves_enough(policy, challenger, incumbent):
            return None
        return RebaseDecision(kind="group", new_base=challenger)

    def _improves_enough(
        self, policy: BaseFilePolicy, challenger: bytes, incumbent: bytes
    ) -> bool:
        """Hysteresis: require the challenger to clearly beat the incumbent.

        Only the randomized policy can measure an arbitrary document against
        its stored samples; other policies rebase on any change.
        """
        utility_of = getattr(policy, "utility_of", None)
        if utility_of is None:
            return True
        challenger_utility = utility_of(challenger)
        incumbent_utility = utility_of(incumbent)
        if challenger_utility is None or incumbent_utility is None:
            return True
        return challenger_utility * self._config.improvement_factor <= incumbent_utility
