"""The paper's contribution: class-based delta-encoding.

Public surface:

* :class:`DeltaServer` — the engine (grouping + base-file selection +
  anonymization + rebases + delta responses);
* configuration dataclasses (:class:`DeltaServerConfig` and friends);
* the base-file selection policies of Table III;
* :class:`Anonymizer` for standalone use of the Section V mechanism.
"""

from __future__ import annotations

from repro.core.anonymize import AnonymizationState, Anonymizer
from repro.core.base_file import (
    BaseFilePolicy,
    FirstResponsePolicy,
    OnlineOptimalPolicy,
    RandomizedPolicy,
    make_policy,
    offline_best,
)
from repro.core.classes import ClassStats, DocumentClass
from repro.core.config import (
    ENGINE_MODES,
    AnonymizationConfig,
    BaseFileConfig,
    DeltaServerConfig,
    EvictionVariant,
    GroupingConfig,
)
from repro.core.counters import StripedCounters
from repro.core.delta_server import BASE_FILE_SEGMENT, DeltaServer, ServerStats
from repro.core.grouping import Grouper, GroupingStats
from repro.core.rebase import RebaseController, RebaseDecision
from repro.core.storage import StorageManager, StorageStats, class_storage_bytes

__all__ = [
    "AnonymizationConfig",
    "AnonymizationState",
    "Anonymizer",
    "BASE_FILE_SEGMENT",
    "BaseFileConfig",
    "BaseFilePolicy",
    "ClassStats",
    "DeltaServer",
    "DeltaServerConfig",
    "DocumentClass",
    "ENGINE_MODES",
    "EvictionVariant",
    "FirstResponsePolicy",
    "Grouper",
    "GroupingConfig",
    "GroupingStats",
    "OnlineOptimalPolicy",
    "RandomizedPolicy",
    "RebaseController",
    "RebaseDecision",
    "ServerStats",
    "StorageManager",
    "StorageStats",
    "StripedCounters",
    "class_storage_bytes",
    "make_policy",
    "offline_best",
]
