"""Base-file anonymization (paper Section V).

A class's base-file is stored by many clients, so private information
(credit-card numbers, account details) must be scrubbed before the file is
distributed.  The paper's mechanism, implemented here verbatim:

1. Choose a base-file.
2. Associate a counter with each byte-chunk of the base-file.
3. For the next ``N`` requests in the class **from distinct users** (and
   from users other than the base-file's own), delta-encode the base-file
   against the requested document and increment the counters of the chunks
   that were *common* between the two.
4. Remove all chunks whose counter is below ``M``.

``M = 1`` is the basic scheme; larger ``M`` guards against private data
shared by a few users (corporate cards) at the cost of a smaller base-file
and slightly larger deltas (paper Table IV).

Until anonymization completes the base-file **must not** be distributed;
the :class:`~repro.core.delta_server.DeltaServer` keeps serving the
previous anonymized base (if any) during re-anonymization, as the paper
prescribes, so the penalty is only a warm-up delay.
"""

from __future__ import annotations

import enum

from repro.core.config import AnonymizationConfig
from repro.delta.instructions import base_coverage
from repro.delta.vdelta import BaseIndex, VdeltaEncoder


class AnonymizationState(enum.Enum):
    """Lifecycle of one base-file's anonymization."""

    DISABLED = "disabled"  # anonymization turned off; base distributable as-is
    COLLECTING = "collecting"  # waiting for N distinct-user documents
    READY = "ready"  # anonymized base-file available


class Anonymizer:
    """Chunk-counter anonymization of one base-file."""

    def __init__(
        self,
        base: bytes,
        config: AnonymizationConfig,
        encoder: VdeltaEncoder | None = None,
        owner_user: str | None = None,
    ) -> None:
        self._base = base
        self._config = config
        self._encoder = encoder or VdeltaEncoder()
        self._owner = owner_user
        self._index: BaseIndex | None = None
        self._users: set[str] = set()
        # Difference array: counters[i] accumulates range increments;
        # prefix-summed at finalize time.  O(ranges) per document instead of
        # O(bytes).
        self._increments = [0] * (len(base) + 1)
        self._counts: list[int] | None = None
        self._anonymized: bytes | None = None
        if not config.enabled:
            self._anonymized = base
            self._state = AnonymizationState.DISABLED
        else:
            self._state = AnonymizationState.COLLECTING

    @property
    def state(self) -> AnonymizationState:
        return self._state

    @property
    def base(self) -> bytes:
        """The raw (non-anonymized) base-file."""
        return self._base

    @property
    def anonymized(self) -> bytes | None:
        """The distributable base-file, or ``None`` while still collecting."""
        return self._anonymized

    @property
    def users_observed(self) -> int:
        return len(self._users)

    @property
    def users_needed(self) -> int:
        """Distinct users still required before finalization."""
        if self._state is not AnonymizationState.COLLECTING:
            return 0
        return self._config.documents - len(self._users)

    def observe(self, document: bytes, user_id: str | None) -> bool:
        """Feed one in-class document; returns ``True`` if it was counted.

        Documents are counted only while collecting, only for identified
        users, only once per user, and never for the base-file's own user
        (paper footnote 5).
        """
        if self._state is not AnonymizationState.COLLECTING:
            return False
        if user_id is None or user_id == self._owner or user_id in self._users:
            return False
        self._users.add(user_id)
        if self._index is None:
            self._index = self._encoder.index(self._base)
        result = self._encoder.encode_with_index(self._index, document)
        for start, end in base_coverage(result.instructions, len(self._base)):
            self._increments[start] += 1
            self._increments[end] -= 1
        if len(self._users) >= self._config.documents:
            self._finalize()
        return True

    def chunk_counts(self) -> list[int]:
        """Per-byte commonality counters (prefix sums of the increments)."""
        counts: list[int] = []
        running = 0
        for inc in self._increments[:-1]:
            running += inc
            counts.append(running)
        return counts

    def _finalize(self) -> None:
        counts = self.chunk_counts()
        threshold = self._config.min_count
        kept = bytes(
            byte for byte, count in zip(self._base, counts) if count >= threshold
        )
        self._counts = counts
        self._anonymized = kept
        self._state = AnonymizationState.READY
        self._index = None  # release the hash index; no longer needed

    def kept_fraction(self) -> float:
        """Fraction of base-file bytes surviving anonymization (1.0 before)."""
        if self._anonymized is None or not self._base:
            return 1.0
        return len(self._anonymized) / len(self._base)
