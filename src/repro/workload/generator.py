"""Synthetic trace generation.

Generates access-log traces against :class:`~repro.origin.site.SyntheticSite`
instances with the statistical properties delta-encoding lives off:

* **Zipf page popularity** — a few hot documents take most requests;
* **per-user temporal locality** — users revisit pages they have seen
  (``revisit_bias``), producing the same-document-later-snapshot pattern
  that basic delta-encoding exploits;
* **many users per document** — personalized renders of the same logical
  page, the my.yahoo.com pattern that motivates *class-based* sharing;
* **Poisson-ish arrivals** over a configurable duration, so snapshots
  actually evolve between revisits.

These are synthetic stand-ins for the paper's three commercial-site logs;
the request counts in Table II's reproduction match the paper's exactly
(16407 / 1476 / 7460).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.origin.site import SyntheticSite
from repro.workload.trace import Trace, TraceRecord
from repro.workload.zipf import ZipfSampler


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """Shape of one synthetic trace."""

    name: str
    requests: int
    users: int = 50
    duration: float = 3600.0
    zipf_alpha: float = 0.8
    #: probability a request revisits a URL the same user already fetched
    revisit_bias: float = 0.5
    #: fraction of users who browse logged-in (personalized pages)
    logged_in_fraction: float = 0.9
    #: fraction of logged-in users who share a corporate card group
    shared_card_fraction: float = 0.1
    #: append a per-user session token to logged-in URLs
    #: (``...&sid=user0003``).  This is the 2002-era personalization style
    #: that makes class-based grouping *necessary*: every (user, page) pair
    #: becomes a distinct URL-request — a distinct "dynamic document" in
    #: the paper's counting — and only the content-similarity search can
    #: discover that they belong together.
    session_urls: bool = False
    seed: int = 1

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if self.users < 1:
            raise ValueError(f"users must be >= 1, got {self.users}")
        if self.duration <= 0:
            raise ValueError(f"duration must be > 0, got {self.duration}")
        for name in ("revisit_bias", "logged_in_fraction", "shared_card_fraction"):
            value = getattr(self, name)
            if not 0 <= value <= 1:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass(slots=True)
class GeneratedWorkload:
    """A trace plus the user roster needed to replay it faithfully."""

    trace: Trace
    #: users who browse logged-in (have a uid cookie)
    logged_in_users: set[str]
    #: user -> corporate card group name
    shared_card_groups: dict[str, str] = field(default_factory=dict)


def generate_workload(
    sites: list[SyntheticSite], spec: WorkloadSpec
) -> GeneratedWorkload:
    """Generate a reproducible trace over ``sites`` per ``spec``."""
    if not sites:
        raise ValueError("need at least one site")
    rng = random.Random(spec.seed)

    users = [f"user{u:04d}" for u in range(spec.users)]
    logged_in = {u for u in users if rng.random() < spec.logged_in_fraction}
    shared_groups: dict[str, str] = {}
    for user in sorted(logged_in):
        if rng.random() < spec.shared_card_fraction:
            shared_groups[user] = f"corp{rng.randrange(3)}"

    # One Zipf sampler over the global page list; pages of all sites compete
    # for popularity like documents in a shared log.
    pages = [(site, page) for site in sites for page in site.all_pages()]
    rng.shuffle(pages)  # decouple popularity rank from generation order
    sampler = ZipfSampler(len(pages), spec.zipf_alpha, rng)

    history: dict[str, list[str]] = {u: [] for u in users}
    records: list[TraceRecord] = []
    # Poisson process: exponential inter-arrivals normalized to duration.
    gaps = [rng.expovariate(1.0) for _ in range(spec.requests)]
    scale = spec.duration / sum(gaps)
    now = 0.0
    for gap in gaps:
        now += gap * scale
        user = rng.choice(users)
        seen = history[user]
        if seen and rng.random() < spec.revisit_bias:
            # Prefer recent URLs: draw from the tail of the user's history.
            url = seen[-1 - min(int(rng.expovariate(1.0) * 3), len(seen) - 1)]
        else:
            site, page = pages[sampler.sample()]
            url = site.url_for(page)
            if spec.session_urls and user in logged_in:
                separator = "&" if "?" in url else "?"
                url = f"{url}{separator}sid={user}"
            seen.append(url)
        records.append(TraceRecord(timestamp=now, user=user, url=url))

    return GeneratedWorkload(
        trace=Trace(name=spec.name, records=records),
        logged_in_users=logged_in,
        shared_card_groups=shared_groups,
    )
