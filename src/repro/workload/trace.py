"""Access-log trace model and on-disk format.

The paper's evaluation replays "access-logs of web-sites", which "represent
HTTP requests after any proxy-caches, and thus correspond to traditionally
uncachable traffic".  A trace here is a time-ordered list of
:class:`TraceRecord` — who requested which URL when — serialized to a
simple tab-separated log so traces can be saved, inspected, and replayed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One logged request."""

    timestamp: float
    user: str
    url: str

    def to_line(self) -> str:
        return f"{self.timestamp:.3f}\t{self.user}\t{self.url}"

    @classmethod
    def from_line(cls, line: str) -> "TraceRecord":
        parts = line.rstrip("\n").split("\t")
        if len(parts) != 3:
            raise ValueError(f"malformed trace line: {line!r}")
        return cls(timestamp=float(parts[0]), user=parts[1], url=parts[2])


@dataclass(slots=True)
class Trace:
    """A named, time-ordered request log."""

    name: str
    records: list[TraceRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    @property
    def duration(self) -> float:
        if not self.records:
            return 0.0
        return self.records[-1].timestamp - self.records[0].timestamp

    @property
    def users(self) -> set[str]:
        return {r.user for r in self.records}

    @property
    def urls(self) -> set[str]:
        return {r.url for r in self.records}

    def sorted(self) -> "Trace":
        """Copy with records in timestamp order (stable)."""
        return Trace(self.name, sorted(self.records, key=lambda r: r.timestamp))

    def extend(self, records: Iterable[TraceRecord]) -> None:
        self.records.extend(records)

    def save(self, path: str | Path) -> None:
        """Write the trace as a tab-separated log with a header comment."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as fh:
            fh.write(f"# trace {self.name} records={len(self.records)}\n")
            for record in self.records:
                fh.write(record.to_line() + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        """Read a trace written by :meth:`save`."""
        path = Path(path)
        records: list[TraceRecord] = []
        name = path.stem
        with path.open("r", encoding="utf-8") as fh:
            for line in fh:
                if line.startswith("#"):
                    if line.startswith("# trace "):
                        name = line.split()[2]
                    continue
                if line.strip():
                    records.append(TraceRecord.from_line(line))
        return cls(name=name, records=records)
