"""Workload substrate: Zipf sampling, traces, and synthetic generation."""

from __future__ import annotations

from repro.workload.generator import GeneratedWorkload, WorkloadSpec, generate_workload
from repro.workload.stats import TraceStats, analyze_trace, fit_zipf_alpha
from repro.workload.trace import Trace, TraceRecord
from repro.workload.zipf import ZipfSampler

__all__ = [
    "GeneratedWorkload",
    "Trace",
    "TraceRecord",
    "TraceStats",
    "WorkloadSpec",
    "ZipfSampler",
    "analyze_trace",
    "fit_zipf_alpha",
    "generate_workload",
]
