"""Zipf-like popularity sampling.

Web request popularity is Zipf-like (Breslau et al., the paper's [3]):
the i-th most popular document is requested with probability proportional
to ``1 / i**alpha``, with alpha typically 0.6–0.9 for proxy traces.  The
sampler is used by the trace generator to pick which page each synthetic
request targets.
"""

from __future__ import annotations

import bisect
import itertools
import random


class ZipfSampler:
    """Draws ranks 0..n-1 with P(rank i) ∝ 1/(i+1)**alpha."""

    def __init__(self, n: int, alpha: float = 0.8, rng: random.Random | None = None):
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        self.n = n
        self.alpha = alpha
        self._rng = rng or random.Random()
        weights = [1.0 / (i + 1) ** alpha for i in range(n)]
        total = sum(weights)
        self._cdf = list(itertools.accumulate(w / total for w in weights))
        # Guard against float drift so random() == 0.999999... always lands.
        self._cdf[-1] = 1.0

    def probability(self, rank: int) -> float:
        """Exact probability of drawing ``rank``."""
        if not 0 <= rank < self.n:
            raise IndexError(f"rank {rank} out of range [0, {self.n})")
        low = self._cdf[rank - 1] if rank else 0.0
        return self._cdf[rank] - low

    def sample(self) -> int:
        """One rank draw.

        Rank ``i`` owns the half-open interval ``[cdf[i-1], cdf[i])``,
        so a draw exactly on a CDF boundary belongs to the *upper* rank:
        ``bisect_right`` (``bisect_left`` would hand boundary draws to
        the lower rank, inflating popular ranks by the boundary mass).
        ``random()`` is in ``[0, 1)`` so the result is always ``< n``.
        """
        return bisect.bisect_right(self._cdf, self._rng.random())

    def sample_many(self, count: int) -> list[int]:
        """``count`` independent rank draws."""
        return [self.sample() for _ in range(count)]
