"""Trace statistics: the numbers you compute before replaying a log.

The paper's evaluation starts from access-log shapes (request counts,
document popularity, users); this module extracts them from a
:class:`~repro.workload.trace.Trace`, including a Zipf-exponent estimate
(web popularity is Zipf-like — Breslau et al., the paper's [3]), so
synthetic and real traces can be compared on the same footing.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

from repro.workload.trace import Trace


@dataclass(frozen=True, slots=True)
class TraceStats:
    """Shape summary of one trace."""

    name: str
    requests: int
    distinct_urls: int
    distinct_users: int
    duration: float
    #: fraction of requests going to the most popular URL
    top_url_share: float
    #: fraction of requests going to the top 10 % of URLs
    head_share: float
    #: least-squares Zipf exponent fit over the rank-frequency curve
    zipf_alpha: float
    #: mean requests per (user, url) pair — the revisit depth that decides
    #: how much warm-up cost the delta scheme amortizes
    requests_per_pair: float

    @property
    def requests_per_second(self) -> float:
        return self.requests / self.duration if self.duration else 0.0


def fit_zipf_alpha(frequencies: list[int]) -> float:
    """Least-squares slope of log(frequency) vs log(rank).

    ``frequencies`` must be sorted descending.  Returns 0.0 when there are
    fewer than two distinct ranks to fit.
    """
    points = [
        (math.log(rank + 1), math.log(freq))
        for rank, freq in enumerate(frequencies)
        if freq > 0
    ]
    if len(points) < 2:
        return 0.0
    n = len(points)
    sum_x = sum(x for x, _ in points)
    sum_y = sum(y for _, y in points)
    sum_xx = sum(x * x for x, _ in points)
    sum_xy = sum(x * y for x, y in points)
    denominator = n * sum_xx - sum_x * sum_x
    if denominator == 0:
        return 0.0
    slope = (n * sum_xy - sum_x * sum_y) / denominator
    return max(-slope, 0.0)


def analyze_trace(trace: Trace) -> TraceStats:
    """Compute :class:`TraceStats` for a trace."""
    if not len(trace):
        return TraceStats(
            name=trace.name,
            requests=0,
            distinct_urls=0,
            distinct_users=0,
            duration=0.0,
            top_url_share=0.0,
            head_share=0.0,
            zipf_alpha=0.0,
            requests_per_pair=0.0,
        )
    url_counts = Counter(record.url for record in trace)
    frequencies = sorted(url_counts.values(), reverse=True)
    total = len(trace)
    head_size = max(len(frequencies) // 10, 1)
    pairs = len({(record.user, record.url) for record in trace})
    return TraceStats(
        name=trace.name,
        requests=total,
        distinct_urls=len(url_counts),
        distinct_users=len(trace.users),
        duration=trace.duration,
        top_url_share=frequencies[0] / total,
        head_share=sum(frequencies[:head_size]) / total,
        zipf_alpha=fit_zipf_alpha(frequencies),
        requests_per_pair=total / pairs if pairs else 0.0,
    )
