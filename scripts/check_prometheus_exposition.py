#!/usr/bin/env python3
"""Validate Prometheus text-exposition output (the CI /__metrics__ gate).

Reads exposition text from stdin (or a file argument) and exits non-zero,
printing each offending line, if anything is malformed:

* every non-blank line must be a ``# HELP``/``# TYPE`` comment or a
  ``name{label="v",...} value [timestamp]`` sample;
* ``# TYPE`` values must be one of the known metric kinds;
* histogram families must be internally consistent — cumulative
  ``_bucket`` counts monotone in ``le`` order, ending at an ``+Inf``
  bucket that equals ``_count``.

Usage::

    curl -s http://127.0.0.1:$PORT/__metrics__ | python scripts/check_prometheus_exposition.py
    python scripts/check_prometheus_exposition.py metrics.txt
"""

from __future__ import annotations

import math
import re
import sys

COMMENT_RE = re.compile(r"^# (HELP|TYPE) ([a-zA-Z_:][a-zA-Z0-9_:]*) (.+)$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[+-]?Inf|NaN|[+-]?(?:[0-9]*\.)?[0-9]+(?:[eE][+-]?[0-9]+)?)"
    r"(?: [0-9]+)?$"
)
LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\["\\n])*"$')
KNOWN_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def _split_labels(raw: str) -> list[str] | None:
    """Split a label body on commas outside quotes; None if unbalanced."""
    parts, current, in_quotes, escaped = [], [], False, False
    for char in raw:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
            continue
        if char == "," and not in_quotes:
            parts.append("".join(current))
            current = []
            continue
        current.append(char)
    if in_quotes or escaped:
        return None
    if current:
        parts.append("".join(current))
    return parts


def check(text: str) -> list[str]:
    """Return a list of human-readable problems (empty = valid)."""
    problems: list[str] = []
    declared_types: dict[str, str] = {}
    # histogram family state: base name -> {"buckets": [(le, value)], "count": float}
    histograms: dict[str, dict] = {}

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            match = COMMENT_RE.match(line)
            if not match:
                problems.append(f"line {lineno}: malformed comment: {line!r}")
                continue
            kind, name, payload = match.groups()
            if kind == "TYPE":
                if payload not in KNOWN_TYPES:
                    problems.append(
                        f"line {lineno}: unknown TYPE {payload!r} for {name}"
                    )
                declared_types[name] = payload
            continue
        match = SAMPLE_RE.match(line)
        if not match:
            problems.append(f"line {lineno}: malformed sample: {line!r}")
            continue
        name = match.group("name")
        raw_labels = match.group("labels")
        labels: dict[str, str] = {}
        if raw_labels is not None:
            parts = _split_labels(raw_labels)
            if parts is None:
                problems.append(f"line {lineno}: unbalanced labels: {line!r}")
                continue
            for part in parts:
                if not LABEL_RE.match(part):
                    problems.append(
                        f"line {lineno}: malformed label {part!r}: {line!r}"
                    )
                    break
                key, value = part.split("=", 1)
                labels[key] = value[1:-1]
        raw_value = match.group("value")
        if raw_value in ("+Inf", "-Inf"):
            value = math.inf if raw_value == "+Inf" else -math.inf
        elif raw_value == "NaN":
            value = math.nan
        else:
            value = float(raw_value)
        for suffix, field in (("_bucket", "buckets"), ("_count", "count")):
            if not name.endswith(suffix):
                continue
            base = name[: -len(suffix)]
            if declared_types.get(base) != "histogram":
                continue
            series = tuple(
                sorted((k, v) for k, v in labels.items() if k != "le")
            )
            family = histograms.setdefault((base, series), {"buckets": [], "count": None})
            if field == "buckets":
                le_raw = labels.get("le")
                if le_raw is None:
                    problems.append(f"line {lineno}: bucket without le: {line!r}")
                    continue
                le = math.inf if le_raw == "+Inf" else float(le_raw)
                family["buckets"].append((le, value, lineno))
            else:
                family["count"] = (value, lineno)

    for (base, series), family in histograms.items():
        where = f"{base}{{{','.join(f'{k}={v}' for k, v in series)}}}"
        buckets = sorted(family["buckets"])
        if not buckets:
            problems.append(f"{where}: histogram has no buckets")
            continue
        counts = [value for _, value, _ in buckets]
        if counts != sorted(counts):
            problems.append(f"{where}: bucket counts are not cumulative")
        last_le, last_value, last_line = buckets[-1]
        if last_le != math.inf:
            problems.append(f"{where}: missing +Inf bucket")
        if family["count"] is not None and family["count"][0] != last_value:
            problems.append(
                f"{where}: _count {family['count'][0]} != +Inf bucket {last_value}"
            )
    return problems


def main(argv: list[str]) -> int:
    if len(argv) > 1:
        with open(argv[1], encoding="utf-8") as handle:
            text = handle.read()
    else:
        text = sys.stdin.read()
    if not text.strip():
        print("check_prometheus_exposition: empty input", file=sys.stderr)
        return 1
    problems = check(text)
    for problem in problems:
        print(f"check_prometheus_exposition: {problem}", file=sys.stderr)
    if problems:
        return 1
    samples = sum(
        1 for line in text.splitlines() if line.strip() and not line.startswith("#")
    )
    print(f"check_prometheus_exposition: OK ({samples} samples)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
