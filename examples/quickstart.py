#!/usr/bin/env python3
"""Quickstart: the delta-encoding flow of paper Figure 1, end to end.

Builds a synthetic dynamic site, puts a delta-server in front of it, and
walks one client through the lifecycle:

1. first request  -> full response (class created, base-file anonymizing)
2. more users     -> anonymization completes, base-file becomes cachable
3. repeat request -> tiny compressed delta instead of the full document

Run:  python examples/quickstart.py
"""

from repro.client import DeltaClient
from repro.core import AnonymizationConfig, DeltaServer, DeltaServerConfig
from repro.origin import OriginServer, SiteSpec, SyntheticSite
from repro.url import RuleBook


def main() -> None:
    # -- a dynamic web-site (the origin) ------------------------------------
    site = SyntheticSite(SiteSpec(name="www.shop.example"))
    origin = OriginServer([site])

    # -- the delta-server in front of it (Fig. 2) ---------------------------
    rulebook = RuleBook()
    rulebook.add_rule(site.spec.name, site.hint_rule_pattern())
    config = DeltaServerConfig(
        anonymization=AnonymizationConfig(enabled=True, documents=3, min_count=1)
    )
    server = DeltaServer(origin.handle, config, rulebook)

    url = site.url_for(site.all_pages()[0])
    print(f"document URL: {url}\n")

    # -- one browser, plus a few other users to warm the class --------------
    alice = DeltaClient(server.handle)
    others = [DeltaClient(server.handle) for _ in range(3)]

    print("t=0    alice's first visit (class is created)")
    body = alice.get(url, now=0.0)
    print(f"       received {len(body):,} bytes (full document)\n")

    print("t=10   three other users visit; anonymization completes")
    for i, other in enumerate(others):
        other.get(url, now=10.0 + i)
    cls = server.class_of(url)
    print(f"       class {cls.class_id}: version {cls.version}, "
          f"base-file {len(cls.distributable_base):,} bytes (anonymized)\n")

    print("t=120  alice revisits: full response again, but now tagged with")
    print("       the class reference, so she picks up the shared base-file")
    alice.get(url, now=120.0)
    print(f"       base-files cached by alice: {alice.held_base_refs()}\n")

    print("t=180  alice revisits once more (content changed meanwhile)")
    body = alice.get(url, now=180.0)
    sent = alice.stats.transfer_sizes[-1]
    print(f"       reconstructed {len(body):,} bytes from a {sent:,}-byte "
          f"compressed delta ({len(body) / sent:.0f}x smaller)\n")

    stats = server.stats
    print("server totals:")
    print(f"  requests        {stats.requests}")
    print(f"  direct bytes    {stats.direct_bytes:,} (what a plain server sends)")
    print(f"  sent bytes      {stats.sent_bytes:,}")
    print(f"  deltas served   {stats.deltas_served}")
    print(f"  savings         {stats.savings:.1%} on document traffic")


if __name__ == "__main__":
    main()
