#!/usr/bin/env python3
"""Personalized-portal scenario: the my.yahoo.com problem from the paper.

Every user sees a personalized version of the same logical pages, so a
classic delta-encoding server would store one base-file **per user per
page** — the scalability problem that motivates class-based delta-encoding.
Here one class per logical page serves every user's variants, and the
anonymization process scrubs private data (credit-card numbers, including
a shared corporate card) out of the shared base-files.

Run:  python examples/personalized_portal.py
"""

from repro.core import AnonymizationConfig, DeltaServerConfig
from repro.metrics import fmt_factor, fmt_pct, render_table
from repro.origin import SiteSpec, SyntheticSite, find_card_numbers
from repro.simulation import Simulation, SimulationConfig
from repro.workload import WorkloadSpec, generate_workload


def main() -> None:
    site = SyntheticSite(
        SiteSpec(
            name="my.portal.example",
            categories=("news", "finance", "sports"),
            products_per_category=3,  # 9 logical pages
            personal_bytes=2500,  # heavier personalization than a shop
            private_page_fraction=0.8,
        )
    )
    workload = generate_workload(
        [site],
        WorkloadSpec(
            name="portal",
            requests=1500,
            users=40,
            duration=2 * 3600.0,
            revisit_bias=0.75,  # people reload their portal pages
            logged_in_fraction=1.0,
            shared_card_fraction=0.15,  # some corporate-card users
        ),
    )
    config = SimulationConfig(
        delta=DeltaServerConfig(
            anonymization=AnonymizationConfig(enabled=True, documents=6, min_count=2)
        ),
        verify=False,
    )
    print(
        f"replaying {len(workload.trace)} personalized requests from "
        f"{len(workload.trace.users)} users over {len(workload.trace.urls)} pages ..."
    )
    simulation = Simulation([site], config)
    report = simulation.run(workload)

    print()
    print(
        render_table(
            ["metric", "value"],
            [
                ["logical pages", report.distinct_documents],
                ["classes formed", report.classes],
                ["per-(page,user) base storage (classless)",
                 f"{report.classless_storage_bytes / 1024:.0f} KB"],
                ["per-class base storage (class-based)",
                 f"{report.class_storage_bytes / 1024:.0f} KB"],
                ["server-side storage reduction",
                 fmt_factor(report.storage_reduction_factor)],
                ["bandwidth savings", fmt_pct(report.bandwidth.savings)],
                ["deltas served", report.bandwidth.deltas_served],
            ],
            title="personalized portal: the scalability story",
        )
    )

    # -- the privacy check ---------------------------------------------------
    print("\nprivacy audit of every distributable base-file:")
    leaks = 0
    for cls in simulation.server.grouper.classes:
        for version in {cls.version, cls.previous_version} - {None}:
            base = cls.base_for_version(version)
            if not base:
                continue
            cards = find_card_numbers(base)
            leaks += len(cards)
            status = "LEAK: " + str(cards) if cards else "clean"
            print(f"  {cls.class_id} v{version} ({len(base):,} bytes): {status}")
    print(f"\ntotal private tokens leaked: {leaks}")
    assert leaks == 0, "anonymization failed!"


if __name__ == "__main__":
    main()
