#!/usr/bin/env python3
"""Capacity planning with the Section VI-C model.

Answers the question an operator deploying a delta-server would ask: how
much CPU capacity do I give up, and how much connection-level headroom do I
gain?  Combines the paper-calibrated cost model with a *measured* cost of
this library's own differ on paper-sized documents (50–60 KB base-files).

Run:  python examples/capacity_planning.py
"""

from repro.metrics import render_table
from repro.network import HIGH_BANDWIDTH, MODEM_56K
from repro.origin import SiteSpec, SyntheticSite
from repro.simulation import CostModel, compare_plain_vs_delta, measure_delta_cost


def main() -> None:
    # -- measure our own delta generation cost, as the paper measures its ----
    site = SyntheticSite(
        SiteSpec(name="www.bench.example", skeleton_bytes=30_000, detail_bytes=15_000)
    )
    page = site.all_pages()[0]
    base = site.render(page, now=0.0)
    document = site.render(page, now=300.0)  # later snapshot of the same page
    measured = measure_delta_cost(base, document, repetitions=10)
    print("measured delta generation (this machine, pure Python):")
    print(f"  base-file        {measured.base_bytes:,} bytes")
    print(f"  delta            {measured.delta_bytes:,} bytes "
          f"({measured.compressed_bytes:,} compressed)")
    print(f"  encode time      {measured.encode_ms:.1f} ms")
    print(f"  compress time    {measured.compress_ms:.1f} ms")
    print(f"  (paper: 6-8 ms on a Pentium III for a 50-60 KB base-file)\n")

    # -- the paper-calibrated capacity comparison ----------------------------
    for link in (MODEM_56K, HIGH_BANDWIDTH):
        plain, delta = compare_plain_vs_delta(CostModel(), client_link=link)
        rows = []
        for estimate in (plain, delta):
            rows.append(
                [
                    estimate.name,
                    f"{estimate.cpu_capacity_rps:.0f}",
                    f"{estimate.connection_capacity_rps:.0f}",
                    f"{estimate.mean_hold_seconds * 1000:.0f} ms",
                    f"{estimate.capacity_rps:.0f}",
                    f"{estimate.sustainable_concurrency:.0f}",
                ]
            )
        print(
            render_table(
                [
                    "configuration",
                    "cpu rps",
                    "conn rps (255 slots)",
                    "conn hold",
                    "capacity rps",
                    "concurrency @ cpu cap",
                ],
                rows,
                title=f"clients on {link.name}",
            )
        )
        print()

    print("paper's measured figures: plain Apache 175-180 req/s, 255 conns;")
    print("with delta-server ~130 req/s but 500+ sustainable connections.")


if __name__ == "__main__":
    main()
