#!/usr/bin/env python3
"""Trace workflow: generate → save → analyze → replay, like an operator.

Demonstrates the on-disk trace format and the analysis/replay loop an
operator would use to evaluate a delta-server against their own access
logs.  The same flow is scriptable from the shell:

    python -m repro.cli trace-gen --requests 1500 --session-urls --out t.log
    python -m repro.cli trace-stats t.log
    python -m repro.cli replay t.log --verify

Run:  python examples/trace_workflow.py
"""

import tempfile
from pathlib import Path

from repro.metrics import fmt_factor, fmt_pct, render_table
from repro.origin import SiteSpec, SyntheticSite
from repro.simulation import Simulation, SimulationConfig
from repro.workload import Trace, WorkloadSpec, analyze_trace, generate_workload


def main() -> None:
    site = SyntheticSite(
        SiteSpec(name="www.flow.example", products_per_category=4)
    )

    # 1. generate and persist an access log
    workload = generate_workload(
        [site],
        WorkloadSpec(
            name="flow",
            requests=1200,
            users=15,
            duration=2 * 3600.0,
            revisit_bias=0.7,
            session_urls=True,  # per-user session tokens in URLs
            logged_in_fraction=1.0,
        ),
    )
    path = Path(tempfile.mkdtemp()) / "flow.log"
    workload.trace.save(path)
    print(f"1. saved {len(workload.trace)} requests to {path}")

    # 2. reload and analyze its shape
    trace = Trace.load(path)
    stats = analyze_trace(trace)
    print("\n2. trace shape:")
    print(
        render_table(
            ["metric", "value"],
            [
                ["requests", stats.requests],
                ["distinct URLs (dynamic documents)", stats.distinct_urls],
                ["users", stats.distinct_users],
                ["Zipf alpha (fit)", f"{stats.zipf_alpha:.2f}"],
                ["requests per (user, URL) pair", f"{stats.requests_per_pair:.1f}"],
            ],
        )
    )

    # 3. replay it through the full architecture
    print("\n3. replaying through client -> proxy -> delta-server -> origin ...")
    report = Simulation([site], SimulationConfig(verify=False)).run(trace)
    bw = report.bandwidth
    print(
        render_table(
            ["metric", "value"],
            [
                ["direct KB", bw.direct_kb],
                ["sent KB", bw.delta_kb],
                ["savings", fmt_pct(bw.savings)],
                ["reduction factor", fmt_factor(bw.reduction_factor)],
                ["classes (vs documents)", f"{report.classes} (vs {stats.distinct_urls})"],
            ],
        )
    )


if __name__ == "__main__":
    main()
