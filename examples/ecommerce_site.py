#!/usr/bin/env python3
"""Replay a synthetic commercial-site trace through the full architecture.

This is the scenario behind the paper's Table II: an access log of
traditionally uncachable dynamic traffic replayed through
client -> proxy-cache -> delta-server -> origin, measuring how much of the
outbound traffic the class-based scheme eliminates.

Run:  python examples/ecommerce_site.py  [--requests N]
"""

import argparse

from repro.core import AnonymizationConfig, DeltaServerConfig
from repro.metrics import fmt_factor, fmt_pct, render_table
from repro.origin import SiteSpec, SyntheticSite
from repro.simulation import Simulation, SimulationConfig
from repro.workload import WorkloadSpec, generate_workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=2000)
    parser.add_argument("--users", type=int, default=20)
    args = parser.parse_args()

    site = SyntheticSite(
        SiteSpec(
            name="www.megashop.example",
            categories=("laptops", "desktops", "tablets"),
            products_per_category=4,
            dynamic_bytes=2200,
        )
    )
    workload = generate_workload(
        [site],
        WorkloadSpec(
            name="ecommerce",
            requests=args.requests,
            users=args.users,
            duration=4 * 3600.0,
            revisit_bias=0.7,
            zipf_alpha=1.0,
        ),
    )
    print(
        f"replaying {len(workload.trace)} requests from "
        f"{len(workload.trace.users)} users over "
        f"{len(workload.trace.urls)} dynamic documents ..."
    )
    config = SimulationConfig(
        verify=False,
        delta=DeltaServerConfig(
            # basic M=1 anonymization with a short warm-up, as in Table II
            anonymization=AnonymizationConfig(documents=3, min_count=1)
        ),
    )
    simulation = Simulation([site], config)
    report = simulation.run(workload)
    bw = report.bandwidth

    print()
    print(
        render_table(
            ["metric", "value"],
            [
                ["requests", bw.requests],
                ["direct KB (no delta-server)", bw.direct_kb],
                ["delta KB (with delta-server)", bw.delta_kb],
                ["bandwidth savings", fmt_pct(bw.savings)],
                ["reduction factor", fmt_factor(bw.reduction_factor)],
                ["deltas / full responses", f"{bw.deltas_served} / {bw.full_served}"],
                ["classes formed", report.classes],
                ["group / basic rebases", f"{report.group_rebases} / {report.basic_rebases}"],
                ["proxy hit rate (base-files)", fmt_pct(report.proxy_hit_rate)],
                ["mean latency, direct", f"{report.latency_direct.mean:.2f}s"],
                ["mean latency, delta", f"{report.latency_delta.mean:.2f}s"],
                ["median latency improvement",
                 fmt_factor(report.latency_direct.percentile(50)
                            / max(report.latency_delta.percentile(50), 1e-9))],
            ],
            title="e-commerce replay (56k modem clients)",
        )
    )

    print("\nper-class inventory (top 5 by popularity):")
    classes = sorted(
        simulation.server.grouper.classes, key=lambda c: c.popularity, reverse=True
    )
    rows = [
        [
            cls.class_id,
            cls.hint,
            len(cls.members),
            cls.popularity,
            cls.stats.deltas_served,
            len(cls.distributable_base or b""),
        ]
        for cls in classes[:5]
    ]
    print(
        render_table(
            ["class", "hint", "members", "hits", "deltas", "base bytes"], rows
        )
    )


if __name__ == "__main__":
    main()
