#!/usr/bin/env python3
"""Content drift and rebases: the base-file lifecycle under change.

A catalog site revises its product pages every hour.  Deltas against the
original base-file degrade after each revision; the delta-server's rebase
machinery (Section IV) notices and adopts a fresh base, restoring small
deltas — while clients holding the previous base keep getting deltas
through the transition (the graceful-rebase path).

Run:  python examples/drifting_content.py
"""

from repro.client import DeltaClient
from repro.core import (
    AnonymizationConfig,
    BaseFileConfig,
    DeltaServer,
    DeltaServerConfig,
)
from repro.origin import OriginServer, SiteSpec, SyntheticSite
from repro.url import RuleBook


def main() -> None:
    site = SyntheticSite(
        SiteSpec(
            name="www.drift.example",
            categories=("catalog",),
            products_per_category=1,
            detail_revision_seconds=3600.0,  # hourly catalog edits
        )
    )
    origin = OriginServer([site])
    rulebook = RuleBook()
    rulebook.add_rule(site.spec.name, site.hint_rule_pattern())
    # Tuned for a fast-drifting site: sample aggressively so the candidate
    # store tracks the current content generation, and treat deltas above
    # 20 % of the document as "relatively large" (the basic-rebase trigger
    # of Section IV) so each catalog revision is recovered from quickly.
    config = DeltaServerConfig(
        anonymization=AnonymizationConfig(documents=2, min_count=1),
        base_file=BaseFileConfig(
            rebase_timeout=1200.0,
            sample_probability=0.4,
            basic_rebase_ratio=0.2,
        ),
    )
    server = DeltaServer(origin.handle, config, rulebook)

    url = site.url_for(site.all_pages()[0])
    clients = [DeltaClient(server.handle) for _ in range(4)]

    print(f"{'time':>6}  {'delta bytes':>11}  {'version':>7}  rebases (grp/basic)")
    for minute in range(0, 181, 15):
        now = minute * 60.0
        sizes = []
        for client in clients:
            before = client.stats.document_bytes
            client.get(url, now)
            sizes.append(client.stats.document_bytes - before)
        cls = server.class_of(url)
        mean = sum(sizes) / len(sizes)
        marker = " <- catalog revision" if minute and minute % 60 == 0 else ""
        print(
            f"{minute:>4}m   {mean:>11,.0f}  {cls.version:>7}  "
            f"{server.stats.group_rebases}/{server.stats.basic_rebases}{marker}"
        )

    stats = server.stats
    print(
        f"\ntotals: {stats.deltas_served} deltas, {stats.full_served} fulls, "
        f"savings {stats.savings:.1%} despite {stats.group_rebases} group + "
        f"{stats.basic_rebases} basic rebases"
    )
    failures = sum(c.stats.delta_failures for c in clients)
    print(f"client delta failures: {failures} (graceful transitions)")


if __name__ == "__main__":
    main()
