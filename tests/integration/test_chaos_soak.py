"""Chaos soak: the live stack survives a full fault scenario end to end.

The acceptance scenario for the resilience work: a live delta-server under
a structured fault plan (10% origin 500s plus latency spikes) with one
base-file corrupted mid-run, driven by the resilient load generator.
Required outcomes:

* every request completes with zero byte-mismatches;
* no client ever sees a raw 500;
* the circuit breaker demonstrably opens under a full outage and recovers
  to closed;
* the quarantined class heals itself (fresh base re-adopted);
* the server drains cleanly.
"""

import asyncio

from repro.core.config import AnonymizationConfig, DeltaServerConfig
from repro.http.messages import Request
from repro.origin.server import OriginServer
from repro.origin.site import SiteSpec, SyntheticSite
from repro.resilience.breaker import CLOSED, OPEN
from repro.resilience.faults import FaultPlan, FaultRule
from repro.resilience.policy import ResilienceConfig
from repro.serve import LoadGenConfig, LoadGenerator, build_server
from repro.workload.generator import WorkloadSpec, generate_workload

SITE = "www.chaos.example"


def make_spec() -> SiteSpec:
    return SiteSpec(name=SITE, products_per_category=3)


def make_workload(requests: int, seed: int):
    return generate_workload(
        [SyntheticSite(make_spec())],
        WorkloadSpec(
            name="chaos",
            requests=requests,
            users=5,
            duration=30.0,
            revisit_bias=0.7,
            seed=seed,
        ),
    )


def make_verify_render():
    twin = OriginServer([SyntheticSite(make_spec())])

    def verify(url: str, user: str, served_at: float) -> bytes:
        request = Request(url=url, cookies={"uid": user}, client_id=user)
        return twin.handle(request, served_at).body

    return verify


def test_chaos_soak():
    plan = FaultPlan(
        [
            FaultRule(kind="error", rate=0.10, status=500, name="burst"),
            FaultRule(kind="latency", rate=0.05, delay=0.02, jitter=0.02),
        ],
        seed=23,
        enabled=False,
    )
    resilience = ResilienceConfig(
        retries=3,
        backoff_base=0.01,
        backoff_cap=0.1,
        deadline=8.0,
        breaker_window=16,
        breaker_min_calls=5,
        breaker_failure_threshold=0.6,
        breaker_cooldown=0.3,
        breaker_probes=2,
    )

    async def main():
        server = build_server(
            [SyntheticSite(make_spec())],
            config=DeltaServerConfig(
                anonymization=AnonymizationConfig(
                    enabled=True, documents=2, min_count=1
                )
            ),
            fault_plan=plan,
            resilience=resilience,
        )
        await server.start()
        host, port = server.address
        engine = server.engine
        breaker = server.resilience.breaker
        try:
            # Phase 1 — warm up clean: classes form, bases distribute.
            warm = await LoadGenerator(
                LoadGenConfig(host=host, port=port, concurrency=4),
                verify_render=make_verify_render(),
            ).run(make_workload(60, seed=9).trace)
            assert warm.completed == 60
            assert warm.verify_failures == 0
            assert warm.deltas > 0

            # Phase 2 — storage bit-rot: corrupt one class's distributable
            # base in place.  The next delta attempt must quarantine the
            # class instead of shipping a rotten delta.
            servable = [c for c in engine.grouper.classes if c.can_serve_deltas]
            assert servable, "warm-up produced no delta-servable class"
            victim = servable[0]
            body = bytearray(victim.distributable_base)
            body[len(body) // 2] ^= 0xFF
            victim._distributable = bytes(body)

            # Phase 3 — chaos: 10% origin errors + latency spikes, clients
            # retrying.  Everything must still complete and verify.
            plan.enable()
            chaos = await LoadGenerator(
                LoadGenConfig(
                    host=host, port=port, concurrency=4,
                    retries=4, retry_backoff=0.02, retry_backoff_cap=0.2,
                ),
                verify_render=make_verify_render(),
            ).run(make_workload(120, seed=31).trace)
            plan.disable()
            assert chaos.completed == 120
            assert chaos.verify_failures == 0
            assert chaos.delta_failures == 0
            assert chaos.errors == 0
            # No request — client- or server-side — was answered 500.
            assert chaos.status_counts.get(500, 0) == 0
            assert server.stats.status_counts.get(500, 0) == 0
            # The corrupted base was caught, quarantined, and healed.
            assert engine.stats.quarantines >= 1
            assert engine.stats.integrity_failures >= 1
            assert engine.stats.quarantine_recoveries >= 1
            assert engine.health_snapshot()["quarantined"] == []
            assert not victim.quarantined

            # Phase 4 — full outage: 100% errors open the breaker; clients
            # get marked-stale base-files, never raw errors.
            outage = FaultRule(kind="error", rate=1.0, status=500, name="outage")
            plan.rules.append(outage)
            plan.enable()
            degraded = await LoadGenerator(
                LoadGenConfig(host=host, port=port, concurrency=2),
            ).run(make_workload(30, seed=47).trace)
            assert breaker.stats.opened >= 1
            assert server.stats.degraded_stale > 0
            assert degraded.status_counts.get(500, 0) == 0
            assert server.stats.status_counts.get(500, 0) == 0

            # Phase 5 — recovery: faults off, cooldown passes, probe
            # traffic recloses the breaker.
            plan.disable()
            await asyncio.sleep(0.35)
            recovery = await LoadGenerator(
                LoadGenConfig(host=host, port=port, concurrency=2),
                verify_render=make_verify_render(),
            ).run(make_workload(30, seed=53).trace)
            assert recovery.completed == 30
            assert recovery.verify_failures == 0
            assert breaker.state == CLOSED
            assert breaker.stats.reclosed >= 1
        finally:
            # Phase 6 — clean drain.
            await server.close()
        assert server.stats.active_connections == 0

    asyncio.run(main())
