"""Fleet chaos soak: SIGKILL workers under live load, clients barely notice.

The acceptance scenario for the worker-fleet robustness work: a
3-worker fleet under continuous verified load while a killer repeatedly
SIGKILLs workers mid-flight.  Required outcomes:

* client-visible error rate (errors + timeouts over requests) ≤ 1% —
  transport resets and fleet 503s are retried, not surfaced;
* zero byte-verification mismatches, including requests served right
  after a crashed worker warm-restarts from its store shard;
* the supervisor restarted every killed worker (restarts ≥ kills);
* the fleet reports healthy after the storm;
* the drain completes gracefully with every worker exiting 0.
"""

import asyncio
import os
import signal

from repro.fleet import FleetConfig, FleetSupervisor, http_get
from repro.http.messages import Request
from repro.origin.server import OriginServer
from repro.origin.site import SiteSpec, SyntheticSite
from repro.serve import LoadGenConfig, LoadGenerator
from repro.serve.loadgen import RETRY_TRANSPORT
from repro.workload.generator import WorkloadSpec, generate_workload

SITE = "www.fleetchaos.example"

WORKER_ARGS = (
    "--site", SITE,
    "--categories", "laptops,desktops",
    "--products", "3",
    "--anon-n", "2",
    "--anon-m", "1",
    "--drain-timeout", "5.0",
)

KILLS = 2


def make_spec() -> SiteSpec:
    return SiteSpec(
        name=SITE, categories=("laptops", "desktops"), products_per_category=3
    )


def make_workload(requests: int, seed: int):
    return generate_workload(
        [SyntheticSite(make_spec())],
        WorkloadSpec(
            name="fleet-chaos",
            requests=requests,
            users=8,
            duration=60.0,
            revisit_bias=0.7,
            seed=seed,
        ),
    )


def make_verify_render():
    twin = OriginServer([SyntheticSite(make_spec())])

    def verify(url: str, user: str, served_at: float) -> bytes:
        request = Request(url=url, cookies={"uid": user}, client_id=user)
        return twin.handle(request, served_at).body

    return verify


async def kill_workers(supervisor: FleetSupervisor, kills: int) -> int:
    """SIGKILL workers one at a time, waiting for each recovery."""
    killed = 0
    for i in range(kills):
        await asyncio.sleep(0.8)
        handle = supervisor.handles[i % len(supervisor.handles)]
        restarts_before = handle.restarts
        pid = handle.pid
        if pid is None:
            continue
        os.kill(pid, signal.SIGKILL)
        killed += 1
        # Wait until the supervise loop restarted it and it answers again.
        loop = asyncio.get_running_loop()
        deadline = loop.time() + 20.0
        while loop.time() < deadline:
            if handle.restarts > restarts_before and handle.ready.is_set():
                break
            await asyncio.sleep(0.05)
        else:
            raise AssertionError(f"worker {handle.worker_id} never came back")
    return killed


def test_fleet_chaos_soak(tmp_path):
    async def main():
        supervisor = FleetSupervisor(
            FleetConfig(
                workers=3,
                state_dir=str(tmp_path / "state"),
                worker_args=WORKER_ARGS,
                backoff_base=0.05,
            )
        )
        await supervisor.start()
        try:
            host, port = supervisor.config.host, supervisor.port

            # Warm up so every worker owns committed state before the storm.
            warm = await LoadGenerator(
                LoadGenConfig(host=host, port=port, concurrency=4, retries=3),
                verify_render=make_verify_render(),
            ).run(make_workload(60, seed=7).trace)
            assert warm.completed == 60
            assert warm.verify_failures == 0

            # The storm: verified load and the killer run concurrently.
            generator = LoadGenerator(
                LoadGenConfig(
                    host=host,
                    port=port,
                    concurrency=4,
                    # The retry budget must outlast a worker's whole
                    # down-window even when CPU contention stretches the
                    # restart: 8 capped backoffs cover ~6.5 s of outage.
                    retries=8,
                    retry_backoff=0.05,
                    retry_backoff_cap=1.0,
                ),
                verify_render=make_verify_render(),
            )
            load_task = asyncio.ensure_future(
                generator.run(make_workload(500, seed=13).trace)
            )
            killed = await kill_workers(supervisor, KILLS)
            report = await load_task
            assert killed == KILLS

            # -- the gates ------------------------------------------------
            client_visible = report.errors + report.timeouts
            assert client_visible / report.requests <= 0.01, report.render()
            assert report.verify_failures == 0
            assert report.delta_failures == 0
            # The kills were actually felt: clients retried through them.
            retried = sum(report.retries_by_status.values())
            assert retried >= 1, dict(report.retries_by_status)
            assert (
                report.retries_by_status.get(RETRY_TRANSPORT, 0) > 0
                or report.retries_by_status.get(503, 0) > 0
            ), dict(report.retries_by_status)
            assert supervisor.restarts_total >= KILLS

            # The fleet settles back to healthy.
            admin_host, admin_port = supervisor.admin_address
            import json

            loop = asyncio.get_running_loop()
            deadline = loop.time() + 10.0
            while loop.time() < deadline:
                response = await http_get(
                    admin_host, admin_port, "__health__", timeout=5.0
                )
                health = json.loads(response.body.decode())
                if health["status"] == "ok":
                    break
                await asyncio.sleep(0.2)
            assert health["status"] == "ok", health
            assert health["fleet"]["alive"] == 3

            # Post-storm verified load: byte-identical service continues.
            after = await LoadGenerator(
                LoadGenConfig(host=host, port=port, concurrency=4, retries=3),
                verify_render=make_verify_render(),
            ).run(make_workload(60, seed=29).trace)
            assert after.completed == 60
            assert after.verify_failures == 0
            assert after.errors == 0
        finally:
            drain = await supervisor.drain()
        for worker in drain["workers"]:
            assert worker["exit_code"] == 0, drain

    asyncio.run(main())
