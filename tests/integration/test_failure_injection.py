"""Failure-injection tests: the system must degrade, never corrupt.

A delta scheme's worst failure is serving a wrong document; these tests
attack the seams (stale caches, corrupted payloads, identity churn,
misbehaving middleboxes) and require byte-correct recovery everywhere.
"""

import pytest

from repro.client.browser import DeltaClient
from repro.core.config import AnonymizationConfig, DeltaServerConfig
from repro.core.delta_server import DeltaServer
from repro.http.cookies import CookieJar
from repro.http.messages import Request, Response
from repro.origin.server import OriginServer
from repro.origin.site import SiteSpec, SyntheticSite
from repro.url.rules import RuleBook


@pytest.fixture()
def stack():
    site = SyntheticSite(SiteSpec(name="www.fi.example", products_per_category=3))
    origin = OriginServer([site])
    rulebook = RuleBook()
    rulebook.add_rule(site.spec.name, site.hint_rule_pattern())
    config = DeltaServerConfig(
        anonymization=AnonymizationConfig(enabled=True, documents=2, min_count=1)
    )
    server = DeltaServer(origin.handle, config, rulebook)
    return site, origin, server


def direct(origin, url, user, now):
    return origin.handle(Request(url=url, cookies={"uid": user}), now).body


def warm(site, server, url, rounds=2, clients=4):
    browsers = [DeltaClient(server.handle) for _ in range(clients)]
    for r in range(rounds):
        for i, client in enumerate(browsers):
            client.get(url, float(r * 100 + i))
    return browsers


class TestCorruptingMiddlebox:
    def test_flipped_delta_byte_recovers(self, stack):
        """A middlebox flips one byte of every delta payload: the client
        must detect it (checksum) and fall back to a full fetch."""
        site, origin, server = stack
        url = site.url_for(site.all_pages()[0])
        warm(site, server, url)

        def corrupting(request: Request, now: float) -> Response:
            response = server.handle(request, now)
            if response.is_delta and response.body:
                body = bytearray(response.body)
                body[len(body) // 2] ^= 0xFF
                response = Response(
                    status=response.status,
                    body=bytes(body),
                    headers=response.headers,
                )
            return response

        victim = DeltaClient(corrupting)
        for now in (500.0, 600.0):
            body = victim.get(url, now)
            assert body == direct(origin, url, victim.user_id, now)
        assert victim.stats.delta_failures > 0

    def test_truncated_delta_recovers(self, stack):
        site, origin, server = stack
        url = site.url_for(site.all_pages()[0])
        warm(site, server, url)

        def truncating(request: Request, now: float) -> Response:
            response = server.handle(request, now)
            if response.is_delta and len(response.body) > 10:
                response = Response(
                    status=response.status,
                    body=response.body[:10],
                    headers=response.headers,
                )
            return response

        victim = DeltaClient(truncating)
        body = victim.get(url, 700.0)
        assert body == direct(origin, url, victim.user_id, 700.0)


class TestIdentityChurn:
    def test_cleared_cookie_jar_mid_session(self, stack):
        """User clears browser data: new uid, empty caches — still correct."""
        site, origin, server = stack
        url = site.url_for(site.all_pages()[0])
        warm(site, server, url)
        client = DeltaClient(server.handle)
        client.get(url, 800.0)
        old_uid = client.user_id
        client.jar.clear()
        client._base_cache.clear()
        client._url_ref.clear()
        body = client.get(url, 900.0)
        assert client.user_id != old_uid
        assert body == direct(origin, url, client.user_id, 900.0)

    def test_two_browsers_same_human(self, stack):
        """The paper's Netscape/IE case: two jars, two 'users', both fine."""
        site, origin, server = stack
        url = site.url_for(site.all_pages()[0])
        warm(site, server, url)
        netscape = DeltaClient(server.handle, CookieJar())
        explorer = DeltaClient(server.handle, CookieJar())
        assert netscape.user_id != explorer.user_id
        for client in (netscape, explorer):
            body = client.get(url, 1000.0)
            assert body == direct(origin, url, client.user_id, 1000.0)


class TestStaleCache:
    def test_client_with_ancient_base_ref(self, stack):
        """A client holding a base from a long-gone version gets a full
        response and reconverges."""
        site, origin, server = stack
        url = site.url_for(site.all_pages()[0])
        browsers = warm(site, server, url)
        client = browsers[0]
        ref = client.held_base_refs()[0]
        # Fabricate staleness: rewrite the client's ref to a bogus version.
        base = client._base_cache.pop(ref)
        stale_ref = ref.rsplit("/", 1)[0] + "/99"
        client._base_cache[stale_ref] = base
        client._url_ref[url] = stale_ref
        body = client.get(url, 1100.0)
        assert body == direct(origin, url, client.user_id, 1100.0)

    def test_proxy_cache_cleared_mid_run(self, stack):
        from repro.proxy.proxy import ProxyCache

        site, origin, server = stack
        proxy = ProxyCache(server.handle)
        url = site.url_for(site.all_pages()[0])
        clients = [DeltaClient(proxy.handle) for _ in range(3)]
        for i, client in enumerate(clients):
            client.get(url, float(i))
        proxy.cache.clear()
        for i, client in enumerate(clients):
            body = client.get(url, 200.0 + i)
            assert body == direct(origin, url, client.user_id, 200.0 + i)


class TestOriginErrors:
    def test_origin_500s_passed_through(self, stack):
        site, origin, server = stack
        url = site.url_for(site.all_pages()[0])
        warm(site, server, url)

        def flaky_origin(request: Request, now: float) -> Response:
            return Response(status=500, body=b"internal error")

        flaky_server = DeltaServer(
            flaky_origin,
            DeltaServerConfig(anonymization=AnonymizationConfig(enabled=False)),
        )
        response = flaky_server.handle(
            Request(url=url, cookies={"uid": "u1"}), now=0.0
        )
        assert response.status == 500
        assert flaky_server.stats.passthrough == 1
