"""Integration tests: the full Fig. 2 architecture under realistic scenarios."""

import pytest

from repro.core.config import (
    AnonymizationConfig,
    BaseFileConfig,
    DeltaServerConfig,
)
from repro.origin.private import find_card_numbers
from repro.origin.site import SiteSpec, SyntheticSite, UrlStyle
from repro.simulation.engine import Simulation, SimulationConfig
from repro.workload.generator import WorkloadSpec, generate_workload


def fast_anon() -> AnonymizationConfig:
    return AnonymizationConfig(enabled=True, documents=2, min_count=1)


class TestMultiSite:
    def test_three_sites_three_url_styles(self):
        """One delta-server fronting three differently organized sites."""
        sites = [
            SyntheticSite(
                SiteSpec(
                    name=f"www.site{i}.example",
                    url_style=style,
                    products_per_category=2,
                    categories=("laptops", "desktops"),
                )
            )
            for i, style in enumerate(UrlStyle)
        ]
        workload = generate_workload(
            sites,
            WorkloadSpec(
                name="multi", requests=200, users=6, duration=900.0, revisit_bias=0.6
            ),
        )
        config = SimulationConfig(delta=DeltaServerConfig(anonymization=fast_anon()))
        simulation = Simulation(sites, config)
        report = simulation.run(workload)
        assert report.verify_failures == 0
        # classes never span sites
        for cls in simulation.server.grouper.classes:
            servers = {url.split("/")[0] for url in cls.members}
            assert len(servers) == 1
        assert report.bandwidth.deltas_served > 0


class TestPrivacyEndToEnd:
    def test_no_private_data_ever_distributed(self):
        """THE privacy property: no user's card number appears in any
        base-file that was ever servable, nor in any proxy-cached entry."""
        site = SyntheticSite(
            SiteSpec(
                name="www.priv.example",
                products_per_category=2,
                categories=("laptops",),
                private_page_fraction=1.0,  # every page shows the account box
            )
        )
        workload = generate_workload(
            [site],
            WorkloadSpec(
                name="priv",
                requests=150,
                users=6,
                duration=600.0,
                revisit_bias=0.5,
                logged_in_fraction=1.0,
                shared_card_fraction=0.3,
            ),
        )
        config = SimulationConfig(
            delta=DeltaServerConfig(
                anonymization=AnonymizationConfig(
                    enabled=True, documents=4, min_count=2
                )
            )
        )
        simulation = Simulation([site], config)
        report = simulation.run(workload)
        assert report.verify_failures == 0
        for cls in simulation.server.grouper.classes:
            for version in (cls.version, cls.previous_version):
                if version is None:
                    continue
                base = cls.base_for_version(version)
                if base:
                    assert not find_card_numbers(base), (
                        f"private data leaked into {cls.class_id} v{version}"
                    )
        # proxy cache holds only base-files, which are anonymized
        for url, entry in simulation.proxy.cache._entries.items():
            assert not find_card_numbers(entry.response.body), (
                f"leak via proxy: {url}"
            )

    def test_anonymization_disabled_leaks(self):
        """Negative control: with anonymization off, the owner's private
        data WOULD end up in the shared base-file (why Section V exists)."""
        site = SyntheticSite(
            SiteSpec(
                name="www.leak.example",
                products_per_category=1,
                categories=("laptops",),
                private_page_fraction=1.0,
            )
        )
        workload = generate_workload(
            [site],
            WorkloadSpec(
                name="leak",
                requests=40,
                users=4,
                duration=200.0,
                logged_in_fraction=1.0,
            ),
        )
        config = SimulationConfig(
            delta=DeltaServerConfig(
                anonymization=AnonymizationConfig(enabled=False)
            )
        )
        simulation = Simulation([site], config)
        simulation.run(workload)
        leaked = any(
            find_card_numbers(cls.distributable_base or b"")
            for cls in simulation.server.grouper.classes
        )
        assert leaked


class TestContentDrift:
    def test_basic_rebase_recovers_from_drift(self):
        """When a site's content shifts wholesale, deltas blow up and the
        basic-rebase path must adopt a fresh base."""
        from repro.core.delta_server import DeltaServer
        from repro.http.messages import HEADER_ACCEPT_DELTA, Request, Response
        from repro.http.messages import base_ref

        from repro.origin.text import paragraph, rng_for

        generation = {"value": 0}

        def shifting_origin(request: Request, now: float) -> Response:
            # Each generation is fresh prose: nothing to copy across the shift.
            rng = rng_for("drift", generation["value"])
            body = (
                f"<html>generation {generation['value']} "
                + paragraph(rng, 12_000)
                + "</html>"
            ).encode()
            return Response(status=200, body=body)

        config = DeltaServerConfig(
            anonymization=AnonymizationConfig(enabled=False),
            base_file=BaseFileConfig(basic_rebase_ratio=0.5, ratio_smoothing=1.0),
        )
        server = DeltaServer(shifting_origin, config)
        url = "www.drift.example/page?id=1"

        def fetch(user: str, now: float) -> Response:
            request = Request(url=url, cookies={"uid": user})
            cls = server.class_of(url)
            if cls is not None and cls.can_serve_deltas:
                request.headers.set(
                    HEADER_ACCEPT_DELTA, base_ref(cls.class_id, cls.version)
                )
            return server.handle(request, now)

        fetch("u1", 0.0)
        fetch("u2", 1.0)  # delta vs generation-0 base: tiny
        generation["value"] = 1  # content shifts completely
        fetch("u3", 2.0)
        fetch("u4", 3.0)
        assert server.stats.basic_rebases >= 1
        cls = server.class_of(url)
        assert b"generation 1" in cls.raw_base


class TestDeterminism:
    def test_identical_runs_identical_reports(self):
        site = SyntheticSite(
            SiteSpec(name="www.det.example", products_per_category=2)
        )

        def run():
            workload = generate_workload(
                [site],
                WorkloadSpec(name="det", requests=80, users=5, duration=400.0),
            )
            config = SimulationConfig(
                delta=DeltaServerConfig(anonymization=fast_anon())
            )
            report = Simulation([site], config).run(workload)
            return (
                report.bandwidth.total_sent_bytes,
                report.bandwidth.deltas_served,
                report.classes,
                report.group_rebases,
            )

        assert run() == run()
