"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestTraceGen:
    def test_writes_trace(self, tmp_path, capsys):
        out = tmp_path / "t.log"
        code = main(
            ["trace-gen", "--requests", "40", "--users", "4", "--out", str(out)]
        )
        assert code == 0
        assert out.exists()
        assert "wrote 40 requests" in capsys.readouterr().out

    def test_session_urls_flag(self, tmp_path):
        out = tmp_path / "t.log"
        main(
            [
                "trace-gen",
                "--requests",
                "30",
                "--session-urls",
                "--out",
                str(out),
            ]
        )
        content = out.read_text()
        assert "sid=" in content


class TestReplay:
    def test_replay_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "t.log"
        main(
            [
                "trace-gen",
                "--requests",
                "60",
                "--users",
                "5",
                "--products",
                "2",
                "--out",
                str(out),
            ]
        )
        code = main(
            ["replay", str(out), "--products", "2", "--verify"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "verify failures | 0" in output

    def test_site_args_must_match(self, tmp_path):
        out = tmp_path / "t.log"
        main(["trace-gen", "--requests", "20", "--out", str(out)])
        # replaying against a different site: every request 404s and passes
        # through; no verify failures because bodies still match the origin
        code = main(["replay", str(out), "--site", "www.other.example"])
        assert code == 0


class TestDelta:
    def test_delta_files(self, tmp_path, capsys):
        base = tmp_path / "base.html"
        target = tmp_path / "cur.html"
        base.write_bytes(b"<html>" + b"<p>stable prose paragraph</p>" * 100 + b"</html>")
        target.write_bytes(
            base.read_bytes().replace(b"stable prose", b"updated prose", 3)
        )
        out = tmp_path / "delta.bin"
        code = main(["delta", str(base), str(target), "--out", str(out)])
        assert code == 0
        assert out.exists()
        assert "delta" in capsys.readouterr().out


class TestCapacity:
    def test_prints_table(self, capsys):
        assert main(["capacity"]) == 0
        assert "capacity" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["nonsense"])


class TestServeAndLoadgen:
    def test_serve_then_loadgen_in_process(self, tmp_path, capsys):
        """The serve command in a thread, the loadgen command against it
        — the same sequence the CI smoke job runs from a shell."""
        import re
        import socket
        import threading
        import time

        trace_path = tmp_path / "t.log"
        main(["trace-gen", "--requests", "60", "--users", "6", "--out", str(trace_path)])
        capsys.readouterr()

        with socket.socket() as probe:  # pick a free port up front
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]

        # --max-requests lets the server exit on its own once the load
        # generator is done (60 documents + base fetches < 90).
        server = threading.Thread(
            target=main,
            args=(["serve", "--port", str(port), "--max-requests", "90"],),
            daemon=True,
        )
        server.start()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            try:
                with socket.create_connection(("127.0.0.1", port), timeout=0.2):
                    break
            except OSError:
                time.sleep(0.05)
        else:
            raise AssertionError("server never started listening")

        code = main(["loadgen", str(trace_path), "--port", str(port)])
        output = capsys.readouterr().out
        assert code == 0
        match = re.search(
            r"delta failures / verify failures +\| (\d+) / (\d+)", output
        )
        assert match is not None and match.group(2) == "0"
        assert re.search(r"requests / completed +\| 60 / 60", output)
        server.join(timeout=10.0)

    def test_loadgen_reports_when_nothing_listens(self, tmp_path, capsys):
        import socket

        trace_path = tmp_path / "t.log"
        main(["trace-gen", "--requests", "5", "--users", "2", "--out", str(trace_path)])
        capsys.readouterr()
        with socket.socket() as probe:  # a port with no listener behind it
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        code = main(
            ["loadgen", str(trace_path), "--port", str(port), "--concurrency", "1"]
        )
        output = capsys.readouterr().out
        assert code == 0  # verify failures are the only failure signal
        assert "requests / completed" in output

    def test_loadgen_strict_fails_on_errors(self, tmp_path, capsys):
        import socket

        trace_path = tmp_path / "t.log"
        main(["trace-gen", "--requests", "5", "--users", "2", "--out", str(trace_path)])
        capsys.readouterr()
        with socket.socket() as probe:  # a port with no listener behind it
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        code = main(
            ["loadgen", str(trace_path), "--port", str(port),
             "--concurrency", "1", "--strict"]
        )
        capsys.readouterr()
        assert code == 1  # --strict: connection errors fail the run


class TestTraceStats:
    def test_stats_of_generated_trace(self, tmp_path, capsys):
        out = tmp_path / "t.log"
        main(["trace-gen", "--requests", "50", "--users", "5", "--out", str(out)])
        capsys.readouterr()
        assert main(["trace-stats", str(out)]) == 0
        output = capsys.readouterr().out
        assert "Zipf alpha" in output
        assert "requests" in output


class TestStoreInspect:
    def _seed(self, tmp_path):
        from repro.store import Store

        state_dir = tmp_path / "state"
        store = Store.open(state_dir, snapshot_every=4)
        store.add_class("cls1", "www.s.com", "hint")
        store.add_member("cls1", "www.s.com/a")
        for v in range(1, 4):
            store.commit_base("cls1", v, b"<html>body " * 100 + str(v).encode())
        store.close()
        return state_dir

    def test_inspect_dumps_json(self, tmp_path, capsys):
        import json

        state_dir = self._seed(tmp_path)
        assert main(["store", "inspect", str(state_dir)]) == 0
        dump = json.loads(capsys.readouterr().out)
        assert dump["generation"] == 1
        assert dump["journal"]["torn_tail_bytes"] == 0
        assert dump["classes"]["cls1"]["versions"] == [1, 2, 3]
        assert dump["classes"]["cls1"]["latest"] == 3

    def test_inspect_compact_is_single_line(self, tmp_path, capsys):
        import json

        state_dir = self._seed(tmp_path)
        assert main(["store", "inspect", str(state_dir), "--compact"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 1
        assert json.loads(out)["classes"]["cls1"]["members"] == 1

    def test_inspect_missing_dir_fails(self, tmp_path, capsys):
        code = main(["store", "inspect", str(tmp_path / "nope")])
        assert code == 1

    def test_store_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["store"])


class TestServeStateDir:
    def test_serve_persists_and_warm_restarts(self, tmp_path, capsys):
        """serve --state-dir twice over the same directory: the second boot
        reports a warm start — the same check the CI smoke job makes."""
        import json
        import re
        import socket
        import threading
        import time
        import urllib.request

        state_dir = tmp_path / "state"
        trace_path = tmp_path / "t.log"
        main(["trace-gen", "--requests", "40", "--users", "4", "--out", str(trace_path)])
        capsys.readouterr()

        def boot_and_load(extra_requests):
            with socket.socket() as probe:
                probe.bind(("127.0.0.1", 0))
                port = probe.getsockname()[1]
            server = threading.Thread(
                target=main,
                args=(
                    [
                        "serve", "--port", str(port),
                        "--state-dir", str(state_dir),
                        "--snapshot-every", "4",
                        "--max-requests", str(40 + extra_requests),
                    ],
                ),
                daemon=True,
            )
            server.start()
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                try:
                    with socket.create_connection(("127.0.0.1", port), timeout=0.2):
                        break
                except OSError:
                    time.sleep(0.05)
            else:
                raise AssertionError("server never started listening")
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/__health__", timeout=2.0
            ) as resp:
                health = json.loads(resp.read())
            code = main(["loadgen", str(trace_path), "--port", str(port)])
            assert code == 0
            server.join(timeout=10.0)
            return health

        cold = boot_and_load(extra_requests=30)
        out_cold = capsys.readouterr().out
        assert cold["engine"]["warm_start"] is False
        assert re.search(r"persistent store: .*warm_start=False", out_cold)

        warm = boot_and_load(extra_requests=30)
        out_warm = capsys.readouterr().out
        assert warm["engine"]["warm_start"] is True
        assert warm["engine"]["rehydrated_classes"] > 0
        assert warm["engine"]["store"]["classes"] > 0
        assert re.search(r"persistent store: .*warm_start=True", out_warm)
