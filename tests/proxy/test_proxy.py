"""Tests for the delta-unaware forward proxy."""

from repro.http.messages import Request, Response
from repro.proxy.proxy import ProxyCache


def upstream_factory(bodies: dict[str, Response]):
    calls = []

    def upstream(request: Request, now: float) -> Response:
        calls.append(request.url)
        return bodies.get(request.url, Response(status=404, body=b"nf"))

    return upstream, calls


def cachable(body: bytes) -> Response:
    response = Response(status=200, body=body)
    response.mark_cachable()
    return response


class TestProxy:
    def test_forwards_misses(self):
        upstream, calls = upstream_factory({"u": Response(status=200, body=b"doc")})
        proxy = ProxyCache(upstream)
        response = proxy.handle(Request(url="u"), 0.0)
        assert response.body == b"doc"
        assert calls == ["u"]

    def test_caches_cachable_responses(self):
        upstream, calls = upstream_factory({"base": cachable(b"basefile")})
        proxy = ProxyCache(upstream)
        proxy.handle(Request(url="base"), 0.0)
        proxy.handle(Request(url="base"), 1.0)
        assert calls == ["base"]  # second hit served from cache
        assert proxy.cache.stats.hits == 1

    def test_uncachable_always_forwarded(self):
        upstream, calls = upstream_factory({"doc": Response(status=200, body=b"d")})
        proxy = ProxyCache(upstream)
        proxy.handle(Request(url="doc"), 0.0)
        proxy.handle(Request(url="doc"), 1.0)
        assert len(calls) == 2

    def test_stats_track_both_sides(self):
        upstream, _ = upstream_factory({"base": cachable(b"12345")})
        proxy = ProxyCache(upstream)
        proxy.handle(Request(url="base"), 0.0)
        proxy.handle(Request(url="base"), 1.0)
        assert proxy.stats.requests == 2
        assert proxy.stats.upstream_requests == 1
        assert proxy.stats.upstream_bytes == 5
        assert proxy.stats.downstream_bytes == 10

    def test_non_get_bypasses_cache(self):
        upstream, calls = upstream_factory({"base": cachable(b"basefile")})
        proxy = ProxyCache(upstream)
        proxy.handle(Request(url="base"), 0.0)
        proxy.handle(Request(url="base", method="POST"), 1.0)
        assert len(calls) == 2

    def test_non_get_response_is_never_stored(self):
        """A cachable 200 to a POST must not be replayed to later GETs."""
        upstream, calls = upstream_factory({"u": cachable(b"side-effect answer")})
        proxy = ProxyCache(upstream)
        proxy.handle(Request(url="u", method="POST"), 0.0)
        assert "u" not in proxy.cache
        proxy.handle(Request(url="u"), 1.0)  # GET still goes upstream
        assert calls == ["u", "u"]
        assert proxy.cache.stats.hits == 0

    def test_non_get_counts_as_lookup_miss(self):
        """Bypassed traffic lands in the hit-rate denominator."""
        upstream, _ = upstream_factory({"base": cachable(b"bb")})
        proxy = ProxyCache(upstream)
        proxy.handle(Request(url="base"), 0.0)  # miss, stored
        proxy.handle(Request(url="base"), 1.0)  # hit
        proxy.handle(Request(url="base", method="POST"), 2.0)  # bypass
        stats = proxy.cache.stats
        assert proxy.stats.bypassed == 1
        assert (stats.hits, stats.misses) == (1, 2)
        assert stats.hit_rate == 1 / 3

    def test_byte_conservation_with_hits(self):
        """Hits serve bytes without upstream cost: downstream >= upstream."""
        upstream, _ = upstream_factory(
            {"base": cachable(b"x" * 100), "doc": Response(status=200, body=b"y" * 40)}
        )
        proxy = ProxyCache(upstream)
        for now, url in enumerate(["base", "base", "base", "doc", "doc"]):
            proxy.handle(Request(url=url), float(now))
        assert proxy.stats.upstream_bytes == 100 + 2 * 40
        assert proxy.stats.downstream_bytes == 3 * 100 + 2 * 40
        assert proxy.stats.downstream_bytes >= proxy.stats.upstream_bytes
        saved = proxy.stats.downstream_bytes - proxy.stats.upstream_bytes
        assert saved == proxy.cache.stats.hit_bytes
