"""Tests for the LRU cache substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.http.messages import Response
from repro.proxy.cache import LRUCache


def cachable(body: bytes) -> Response:
    response = Response(status=200, body=body)
    response.mark_cachable()
    return response


class TestBasics:
    def test_put_get(self):
        cache = LRUCache(1024)
        cache.put("u1", cachable(b"abc"))
        hit = cache.get("u1")
        assert hit is not None and hit.body == b"abc"
        assert cache.stats.hits == 1

    def test_miss(self):
        cache = LRUCache(1024)
        assert cache.get("nope") is None
        assert cache.stats.misses == 1

    def test_uncachable_rejected(self):
        cache = LRUCache(1024)
        assert not cache.put("u", Response(status=200, body=b"x"))
        assert "u" not in cache

    def test_non_200_rejected(self):
        cache = LRUCache(1024)
        response = Response(status=404, body=b"x")
        response.cachable = True
        assert not cache.put("u", response)

    def test_oversized_rejected(self):
        cache = LRUCache(10)
        assert not cache.put("u", cachable(b"x" * 100))

    def test_replace_updates_size(self):
        cache = LRUCache(1024)
        cache.put("u", cachable(b"a" * 100))
        cache.put("u", cachable(b"b" * 50))
        assert cache.size_bytes == 50
        assert len(cache) == 1

    def test_invalidate(self):
        cache = LRUCache(1024)
        cache.put("u", cachable(b"abc"))
        assert cache.invalidate("u")
        assert not cache.invalidate("u")
        assert cache.size_bytes == 0

    def test_clear(self):
        cache = LRUCache(1024)
        cache.put("a", cachable(b"1"))
        cache.put("b", cachable(b"2"))
        cache.clear()
        assert len(cache) == 0
        assert cache.size_bytes == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUCache(0)


class TestEviction:
    def test_lru_eviction_order(self):
        cache = LRUCache(30)
        cache.put("a", cachable(b"x" * 10))
        cache.put("b", cachable(b"x" * 10))
        cache.put("c", cachable(b"x" * 10))
        cache.get("a")  # refresh a
        cache.put("d", cachable(b"x" * 10))  # evicts b (least recent)
        assert "a" in cache
        assert "b" not in cache
        assert cache.stats.evictions == 1

    def test_size_never_exceeds_capacity(self):
        cache = LRUCache(100)
        for i in range(50):
            cache.put(f"u{i}", cachable(b"x" * 30))
            assert cache.size_bytes <= 100


@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from("pgi"), st.integers(0, 9), st.integers(1, 40)),
        max_size=60,
    )
)
def test_cache_invariants(ops):
    """Size accounting and capacity hold under arbitrary op sequences."""
    cache = LRUCache(200)
    for op, key_i, size in ops:
        key = f"k{key_i}"
        if op == "p":
            cache.put(key, cachable(b"x" * size))
        elif op == "g":
            cache.get(key)
        else:
            cache.invalidate(key)
        assert cache.size_bytes <= 200
        assert cache.size_bytes == sum(
            entry.content_length for entry in cache._entries.values()
        )
        assert len(cache) == len(cache._entries)
