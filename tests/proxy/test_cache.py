"""Tests for the LRU cache substrate: accounting, TTL, and thread-safety."""

import random
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.http.messages import Response
from repro.proxy.cache import LRUCache


def cachable(body: bytes) -> Response:
    response = Response(status=200, body=body)
    response.mark_cachable()
    return response


class TestBasics:
    def test_put_get(self):
        cache = LRUCache(1024)
        cache.put("u1", cachable(b"abc"))
        hit = cache.get("u1")
        assert hit is not None and hit.body == b"abc"
        assert cache.stats.hits == 1
        assert cache.stats.hit_bytes == 3

    def test_miss(self):
        cache = LRUCache(1024)
        assert cache.get("nope") is None
        assert cache.stats.misses == 1

    def test_hit_rate_over_all_lookups(self):
        cache = LRUCache(1024)
        cache.put("u", cachable(b"x"))
        cache.get("u")
        cache.get("absent")
        cache.note_bypass()  # non-GET traffic still lands in the denominator
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        assert cache.stats.hit_rate == pytest.approx(1 / 3)

    def test_uncachable_rejected(self):
        cache = LRUCache(1024)
        assert not cache.put("u", Response(status=200, body=b"x"))
        assert "u" not in cache
        assert cache.stats.rejections == 1
        assert cache.stats.insertions == 0

    def test_non_200_rejected(self):
        cache = LRUCache(1024)
        response = Response(status=404, body=b"x")
        response.cachable = True
        assert not cache.put("u", response)
        assert cache.stats.rejections == 1

    def test_oversized_rejected(self):
        cache = LRUCache(10)
        assert not cache.put("u", cachable(b"x" * 100))
        assert cache.stats.rejections == 1

    def test_replace_updates_size(self):
        cache = LRUCache(1024)
        cache.put("u", cachable(b"a" * 100))
        cache.put("u", cachable(b"b" * 50))
        assert cache.size_bytes == 50
        assert len(cache) == 1
        assert cache.stats.insertions == 2
        assert cache.stats.replacements == 1
        cache.check_consistency()

    def test_invalidate_counts_and_resizes(self):
        cache = LRUCache(1024)
        cache.put("u", cachable(b"abc"))
        assert cache.invalidate("u")
        assert not cache.invalidate("u")  # absent: not an invalidation
        assert cache.size_bytes == 0
        assert cache.stats.invalidations == 1
        cache.check_consistency()

    def test_clear_counts_every_entry(self):
        cache = LRUCache(1024)
        cache.put("a", cachable(b"1"))
        cache.put("b", cachable(b"2"))
        cache.clear()
        assert len(cache) == 0
        assert cache.size_bytes == 0
        assert cache.stats.invalidations == 2
        cache.check_consistency()

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUCache(0)
        with pytest.raises(ValueError):
            LRUCache(100, ttl=0)


class TestTTL:
    def test_fresh_within_ttl(self):
        cache = LRUCache(1024, ttl=10.0)
        cache.put("u", cachable(b"abc"), now=100.0)
        assert cache.get("u", now=110.0) is not None  # boundary is fresh
        assert cache.stats.expirations == 0

    def test_expired_get_is_a_miss(self):
        cache = LRUCache(1024, ttl=10.0)
        cache.put("u", cachable(b"abc"), now=100.0)
        assert cache.get("u", now=110.1) is None
        assert cache.stats.expirations == 1
        assert cache.stats.misses == 1
        assert "u" in cache  # kept for revalidation

    def test_lookup_surfaces_stale_entries(self):
        cache = LRUCache(1024, ttl=10.0)
        cache.put("u", cachable(b"abc"), now=100.0)
        found = cache.lookup("u", now=120.0)
        assert found is not None
        response, fresh = found
        assert response.body == b"abc" and not fresh
        assert cache.stats.expirations == 1 and cache.stats.misses == 1

    def test_refresh_restores_freshness(self):
        cache = LRUCache(1024, ttl=10.0)
        cache.put("u", cachable(b"abc"), now=100.0)
        _, fresh = cache.lookup("u", now=120.0)
        assert not fresh
        assert cache.refresh("u", now=120.0)
        hit = cache.get("u", now=125.0)
        assert hit is not None and hit.body == b"abc"
        assert not cache.refresh("absent", now=0.0)

    def test_no_ttl_never_expires(self):
        cache = LRUCache(1024)
        cache.put("u", cachable(b"abc"), now=0.0)
        assert cache.get("u", now=1e12) is not None


class TestEviction:
    def test_lru_eviction_order(self):
        cache = LRUCache(30)
        cache.put("a", cachable(b"x" * 10))
        cache.put("b", cachable(b"x" * 10))
        cache.put("c", cachable(b"x" * 10))
        cache.get("a")  # refresh a
        cache.put("d", cachable(b"x" * 10))  # evicts b (least recent)
        assert "a" in cache
        assert "b" not in cache
        assert cache.stats.evictions == 1
        cache.check_consistency()

    def test_size_never_exceeds_capacity(self):
        cache = LRUCache(100)
        for i in range(50):
            cache.put(f"u{i}", cachable(b"x" * 30))
            assert cache.size_bytes <= 100
        cache.check_consistency()


@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from("pgilrc"), st.integers(0, 9), st.integers(1, 40)),
        max_size=60,
    )
)
def test_cache_invariants(ops):
    """Size and counter accounting hold under arbitrary op sequences.

    ``check_consistency`` asserts ``size_bytes`` equals the sum of stored
    entry sizes, stays under capacity, and that live entries equal
    ``insertions - replacements - evictions - invalidations``.
    """
    cache = LRUCache(200, ttl=50.0)
    clock = 0.0
    for op, key_i, size in ops:
        clock += size  # monotone clock; large steps exercise expiry
        key = f"k{key_i}"
        if op == "p":
            cache.put(key, cachable(b"x" * size), now=clock)
        elif op == "g":
            cache.get(key, now=clock)
        elif op == "i":
            cache.invalidate(key)
        elif op == "l":
            cache.lookup(key, now=clock)
        elif op == "r":
            cache.refresh(key, now=clock)
        else:
            cache.clear()
        cache.check_consistency()
    stats = cache.stats
    assert stats.hits + stats.misses >= stats.hits  # counters never negative
    assert stats.expirations <= stats.misses


def test_threaded_storm_keeps_accounting_consistent():
    """Concurrent get/put/invalidate from many threads: no torn state.

    The capacity (600 B) is far below the worst-case working set
    (16 keys x 120 B), so the storm constantly evicts; every thread
    also invalidates, expiring entries via a racing monotone clock.
    """
    cache = LRUCache(600, ttl=5.0)
    errors: list[BaseException] = []
    barrier = threading.Barrier(8)

    def storm(seed: int) -> None:
        rng = random.Random(seed)
        try:
            barrier.wait()
            for step in range(400):
                key = f"k{rng.randrange(16)}"
                now = float(step)
                op = rng.random()
                if op < 0.5:
                    cache.put(key, cachable(b"x" * rng.randrange(1, 120)), now=now)
                elif op < 0.8:
                    cache.get(key, now=now)
                elif op < 0.9:
                    cache.lookup(key, now=now)
                elif op < 0.95:
                    cache.invalidate(key)
                else:
                    cache.refresh(key, now=now)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=storm, args=(seed,)) for seed in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    cache.check_consistency()
    stats = cache.stats
    assert stats.insertions > 0 and stats.evictions > 0
    assert stats.hits + stats.misses > 0
