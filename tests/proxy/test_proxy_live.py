"""Live-socket tests for the caching proxy tier.

A real :class:`~repro.serve.server.DeltaHTTPServer` upstream with a real
:class:`~repro.proxy.server.ProxyHTTPServer` in front, over loopback TCP.
Verifies the Section VI-B claim end to end: base-files are cached at the
proxy and served byte-identical to every client behind it, while dynamic
documents pass through untouched.
"""

import asyncio
import json
import sys
from pathlib import Path

from repro.core.config import AnonymizationConfig, DeltaServerConfig
from repro.http.messages import HEADER_IF_NONE_MATCH, Request
from repro.metrics import PROMETHEUS_CONTENT_TYPE
from repro.origin.server import OriginServer
from repro.origin.site import SiteSpec, SyntheticSite
from repro.proxy import HEADER_PROXY_CACHE, ProxyHTTPServer
from repro.serve import (
    HEADER_BODY_DIGEST,
    LoadGenConfig,
    LoadGenerator,
    METRICS_PATH,
    build_server,
    read_response,
    serialize_request,
)
from repro.serve.server import DeltaHTTPServer, HEALTH_PATH
from repro.workload.generator import WorkloadSpec, generate_workload

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "scripts"))
from check_prometheus_exposition import check as check_exposition  # noqa: E402

SITE = "www.proxied.example"


def make_server(**kwargs) -> DeltaHTTPServer:
    spec = kwargs.pop("spec", None) or SiteSpec(name=SITE, products_per_category=3)
    kwargs.setdefault(
        "config",
        DeltaServerConfig(
            anonymization=AnonymizationConfig(enabled=True, documents=2, min_count=1)
        ),
    )
    return build_server([SyntheticSite(spec)], **kwargs)


async def fetch(host, port, url, user=None, method="GET", headers=None):
    """One request on its own connection; returns the parsed response."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        cookies = {"uid": user} if user else {}
        request = Request(
            url=url, method=method, cookies=cookies, client_id=user or "anonymous"
        )
        for name, value in (headers or {}).items():
            request.headers.set(name, value)
        writer.write(serialize_request(request, keep_alive=False))
        await writer.drain()
        parsed = await asyncio.wait_for(read_response(reader), 10.0)
        return parsed.response
    finally:
        writer.close()


async def warmed_base_url(server: DeltaHTTPServer, proxy: ProxyHTTPServer) -> str:
    """Drive anonymization READY through the proxy; return the base-file URL."""
    site = server.gateway.origin.site(SITE)
    url = site.url_for(site.all_pages()[0])
    ref = None
    for user in ("u1", "u2", "u3"):
        response = await fetch(*proxy.address, url, user=user)
        assert response.status == 200
        ref = response.base_file_ref or ref
    assert ref is not None, "anonymization never became READY"
    return f"{SITE}/__delta_base__/{ref}"


class TestCachingPath:
    def test_miss_then_hit_byte_identical(self):
        async def main():
            async with make_server() as server:
                async with ProxyHTTPServer(*server.address) as proxy:
                    base_url = await warmed_base_url(server, proxy)
                    first = await fetch(*proxy.address, base_url)
                    assert first.status == 200
                    assert first.headers.get(HEADER_PROXY_CACHE) == "miss"
                    upstream_before = proxy.stats.upstream_requests
                    second = await fetch(*proxy.address, base_url)
                    assert second.headers.get(HEADER_PROXY_CACHE) == "hit"
                    assert second.body == first.body
                    assert second.headers.get(HEADER_BODY_DIGEST) == first.headers.get(
                        HEADER_BODY_DIGEST
                    )
                    # The hit never touched the upstream.
                    assert proxy.stats.upstream_requests == upstream_before
                    assert proxy.cache.stats.hits == 1

        asyncio.run(main())

    def test_documents_pass_through_uncached(self):
        async def main():
            async with make_server() as server:
                async with ProxyHTTPServer(*server.address) as proxy:
                    site = server.gateway.origin.site(SITE)
                    url = site.url_for(site.all_pages()[0])
                    for _ in range(2):
                        response = await fetch(*proxy.address, url, user="u1")
                        assert response.status == 200
                        assert response.headers.get(HEADER_PROXY_CACHE) == "miss"
                    assert len(proxy.cache) == 0  # personalized: never stored

        asyncio.run(main())

    def test_non_get_bypasses_and_is_never_stored(self):
        async def main():
            async with make_server() as server:
                async with ProxyHTTPServer(*server.address) as proxy:
                    base_url = await warmed_base_url(server, proxy)
                    # Upstream answers POSTs to the base-file URL with a
                    # cachable 200 — the proxy still must not store it.
                    posted = await fetch(*proxy.address, base_url, method="POST")
                    assert posted.status == 200
                    assert posted.headers.get(HEADER_PROXY_CACHE) == "bypass"
                    assert base_url not in proxy.cache
                    assert proxy.stats.bypassed == 1
                    follow_up = await fetch(*proxy.address, base_url)
                    assert follow_up.headers.get(HEADER_PROXY_CACHE) == "miss"

        asyncio.run(main())

    def test_ttl_expiry_revalidates_with_304(self):
        async def main():
            clock = [1000.0]
            async with make_server() as server:
                async with ProxyHTTPServer(
                    *server.address, ttl=10.0, clock=lambda: clock[0]
                ) as proxy:
                    base_url = await warmed_base_url(server, proxy)
                    first = await fetch(*proxy.address, base_url)
                    assert first.headers.get(HEADER_PROXY_CACHE) == "miss"
                    wire_before = proxy.stats.upstream_wire_bytes
                    clock[0] += 11.0  # past the TTL
                    stale = await fetch(*proxy.address, base_url)
                    assert stale.headers.get(HEADER_PROXY_CACHE) == "revalidated"
                    assert stale.body == first.body
                    assert proxy.stats.revalidations == 1
                    assert proxy.stats.revalidated == 1
                    # The 304 exchange moved headers, not the body.
                    revalidation_wire = proxy.stats.upstream_wire_bytes - wire_before
                    assert 0 < revalidation_wire < len(first.body)
                    # Refreshed: the next lookup is a plain hit again.
                    refreshed = await fetch(*proxy.address, base_url)
                    assert refreshed.headers.get(HEADER_PROXY_CACHE) == "hit"

        asyncio.run(main())

    def test_byte_conservation_on_hits(self):
        async def main():
            async with make_server() as server:
                async with ProxyHTTPServer(*server.address) as proxy:
                    base_url = await warmed_base_url(server, proxy)
                    for _ in range(4):
                        response = await fetch(*proxy.address, base_url)
                        assert response.status == 200
                    stats = proxy.stats
                    assert proxy.cache.stats.hits >= 3
                    assert stats.downstream_bytes >= stats.upstream_bytes
                    saved = stats.downstream_bytes - stats.upstream_bytes
                    assert saved == proxy.cache.stats.hit_bytes

        asyncio.run(main())


class TestUpstreamRevalidationSupport:
    def test_serve_answers_304_for_matching_digest(self):
        """The serve stack's side of checksum revalidation."""

        async def main():
            async with make_server() as server:
                site = server.gateway.origin.site(SITE)
                url = site.url_for(site.all_pages()[0])
                ref = None
                for user in ("u1", "u2", "u3"):
                    response = await fetch(*server.address, url, user=user)
                    ref = response.base_file_ref or ref
                assert ref is not None
                base_url = f"{SITE}/__delta_base__/{ref}"
                full = await fetch(*server.address, base_url)
                digest = full.headers.get(HEADER_BODY_DIGEST)
                assert full.status == 200 and digest
                conditional = await fetch(
                    *server.address, base_url, headers={HEADER_IF_NONE_MATCH: digest}
                )
                assert conditional.status == 304
                assert conditional.body == b""
                assert conditional.headers.get(HEADER_BODY_DIGEST) == digest
                mismatched = await fetch(
                    *server.address,
                    base_url,
                    headers={HEADER_IF_NONE_MATCH: "adler32=00000000"},
                )
                assert mismatched.status == 200 and mismatched.body == full.body
                # Documents are personalized (uncachable): never 304.
                doc = await fetch(*server.address, url, user="u1")
                doc_digest = doc.headers.get(HEADER_BODY_DIGEST)
                again = await fetch(
                    *server.address,
                    url,
                    user="u1",
                    headers={HEADER_IF_NONE_MATCH: doc_digest},
                )
                assert again.status == 200

        asyncio.run(main())


class TestObservability:
    def test_metrics_and_health_endpoints(self):
        async def main():
            async with make_server() as server:
                async with ProxyHTTPServer(*server.address) as proxy:
                    base_url = await warmed_base_url(server, proxy)
                    await fetch(*proxy.address, base_url)
                    await fetch(*proxy.address, base_url)
                    metrics = await fetch(*proxy.address, f"{SITE}/{METRICS_PATH}")
                    assert metrics.status == 200
                    assert (
                        metrics.headers.get("Content-Type")
                        == PROMETHEUS_CONTENT_TYPE
                    )
                    text = metrics.body.decode()
                    assert check_exposition(text) == []
                    assert "repro_proxy_cache_hits_total 1" in text
                    assert "repro_proxy_requests_total" in text
                    assert "repro_proxy_upstream_wire_bytes_total" in text
                    # Admin probes are not proxied traffic.
                    assert "repro_proxy_admin_requests_total 1" in text
                    health = await fetch(*proxy.address, f"{SITE}/{HEALTH_PATH}")
                    assert health.status == 200
                    payload = json.loads(health.body)
                    assert payload["status"] == "ok"
                    assert payload["cache"]["hits"] == 1
                    assert payload["upstream"]["port"] == server.address[1]

        asyncio.run(main())


class TestFailureModes:
    def test_unreachable_upstream_is_502(self):
        async def main():
            # Grab a port that is then closed again: connection refused.
            probe = await asyncio.start_server(lambda r, w: None, "127.0.0.1", 0)
            dead_port = probe.sockets[0].getsockname()[1]
            probe.close()
            await probe.wait_closed()
            async with ProxyHTTPServer("127.0.0.1", dead_port) as proxy:
                response = await fetch(*proxy.address, f"{SITE}/whatever")
                assert response.status == 502
                assert proxy.stats.upstream_errors == 1

        asyncio.run(main())


class TestLoadgenThroughProxy:
    def test_two_client_populations_share_cached_base_files(self):
        """The Section VI-B sharing effect, measured over real sockets.

        Each :class:`LoadGenerator` models one client population with its
        own base-file cache.  The first population's base fetches miss and
        fill the proxy; the second population's identical fetches must be
        served from the proxy without new upstream base transfers — and
        every response still verifies byte-for-byte (digest + delta
        checksum + independent origin re-render).
        """

        async def main():
            spec = SiteSpec(name=SITE, products_per_category=3)
            async with make_server(spec=spec) as server:
                async with ProxyHTTPServer(*server.address) as proxy:
                    workload = generate_workload(
                        [SyntheticSite(spec)],
                        WorkloadSpec(
                            name="via-proxy", requests=60, users=4, seed=7
                        ),
                    )
                    twin = OriginServer([SyntheticSite(spec)])

                    def verify(url, user, served_at):
                        return twin.handle(
                            Request(url=url, cookies={"uid": user}, client_id=user),
                            served_at,
                        ).body

                    def config():
                        return LoadGenConfig(
                            proxy_host=proxy.address[0],
                            proxy_port=proxy.port,
                            concurrency=4,
                            verify=True,
                        )

                    first = await LoadGenerator(
                        config(), verify_render=verify
                    ).run(workload.trace)
                    hits_after_first = proxy.cache.stats.hits
                    second = await LoadGenerator(
                        config(), verify_render=verify
                    ).run(workload.trace)
                    for report in (first, second):
                        assert report.completed == report.requests == 60
                        assert report.verify_failures == 0
                        assert report.errors == 0 and report.delta_failures == 0
                    assert second.base_fetches > 0
                    # Population 2's base fetches were served from cache.
                    assert proxy.cache.stats.hits >= (
                        hits_after_first + second.base_fetches
                    )
                    assert proxy.stats.downstream_bytes >= proxy.stats.upstream_bytes

        asyncio.run(main())
