"""Tests for the client-side browser: caching, reconstruction, fallbacks."""

import pytest

from repro.client.browser import DeltaClient
from repro.core.config import AnonymizationConfig, DeltaServerConfig
from repro.core.delta_server import DeltaServer
from repro.http.cookies import CookieJar
from repro.http.messages import Request
from repro.origin.server import OriginServer
from repro.origin.site import SiteSpec, SyntheticSite
from repro.url.rules import RuleBook


@pytest.fixture()
def stack():
    site = SyntheticSite(SiteSpec(name="www.c.example", products_per_category=4))
    origin = OriginServer([site])
    rulebook = RuleBook()
    rulebook.add_rule(site.spec.name, site.hint_rule_pattern())
    config = DeltaServerConfig(
        anonymization=AnonymizationConfig(enabled=True, documents=2, min_count=1)
    )
    server = DeltaServer(origin.handle, config, rulebook)
    return site, origin, server


def direct(origin, url, user, now):
    return origin.handle(Request(url=url, cookies={"uid": user}), now).body


class TestReconstruction:
    def test_every_get_matches_direct_render(self, stack):
        site, origin, server = stack
        url = site.url_for(site.all_pages()[0])
        clients = [DeltaClient(server.handle) for _ in range(4)]
        for round_ in range(4):
            now = round_ * 30.0
            for client in clients:
                body = client.get(url, now)
                assert body == direct(origin, url, client.user_id, now)

    def test_deltas_eventually_used(self, stack):
        site, _, server = stack
        url = site.url_for(site.all_pages()[0])
        clients = [DeltaClient(server.handle) for _ in range(4)]
        for round_ in range(4):
            for client in clients:
                client.get(url, round_ * 30.0)
        total_deltas = sum(c.stats.deltas_applied for c in clients)
        assert total_deltas > 0
        assert server.stats.deltas_served == total_deltas

    def test_base_cached_once_per_ref(self, stack):
        site, _, server = stack
        url = site.url_for(site.all_pages()[0])
        client = DeltaClient(server.handle)
        for round_ in range(5):
            client.get(url, round_ * 10.0)
        assert client.stats.base_fetches <= 2  # one per base generation seen

    def test_held_refs_listed(self, stack):
        site, _, server = stack
        url = site.url_for(site.all_pages()[0])
        # warm the class with other clients first
        for _ in range(3):
            DeltaClient(server.handle).get(url, 0.0)
        client = DeltaClient(server.handle)
        client.get(url, 1.0)
        assert len(client.held_base_refs()) == 1


class TestFallbacks:
    def test_dropped_base_recovers_with_full_fetch(self, stack):
        site, origin, server = stack
        url = site.url_for(site.all_pages()[0])
        client = DeltaClient(server.handle)
        others = [DeltaClient(server.handle) for _ in range(3)]
        for round_ in range(2):  # second round: base exists and is cached
            for now, c in enumerate([client, *others]):
                c.get(url, float(round_ * 10 + now))
        ref = client.held_base_refs()[0]
        client.drop_base(ref)
        body = client.get(url, 50.0)
        assert body == direct(origin, url, client.user_id, 50.0)

    def test_corrupt_base_triggers_refetch(self, stack):
        site, origin, server = stack
        url = site.url_for(site.all_pages()[0])
        client = DeltaClient(server.handle)
        others = [DeltaClient(server.handle) for _ in range(3)]
        for round_ in range(2):
            for now, c in enumerate([client, *others]):
                c.get(url, float(round_ * 10 + now))
        ref = client.held_base_refs()[0]
        client._base_cache[ref] = b"corrupted garbage"
        body = client.get(url, 60.0)
        assert body == direct(origin, url, client.user_id, 60.0)
        assert client.stats.delta_failures >= 0  # recovered either way

    def test_user_identity_is_stable(self, stack):
        _, _, server = stack
        client = DeltaClient(server.handle)
        assert client.user_id == client.user_id

    def test_preseeded_jar(self, stack):
        _, _, server = stack
        client = DeltaClient(server.handle, CookieJar(cookies={"uid": "me"}))
        assert client.user_id == "me"


class TestStats:
    def test_document_bytes_accumulate(self, stack):
        site, _, server = stack
        url = site.url_for(site.all_pages()[0])
        client = DeltaClient(server.handle)
        client.get(url, 0.0)
        assert client.stats.document_bytes > 0
        assert client.stats.requests == 1
        assert url in client.stats.urls_fetched

    def test_transfer_sizes_recorded(self, stack):
        site, _, server = stack
        url = site.url_for(site.all_pages()[0])
        client = DeltaClient(server.handle)
        client.get(url, 0.0)
        client.get(url, 10.0)
        assert len(client.stats.transfer_sizes) == 2
