"""Tests for the origin resilience policy (repro.resilience.policy)."""

import pytest

from repro.http.messages import Request, Response
from repro.resilience.breaker import CLOSED, OPEN, CircuitBreaker
from repro.resilience.policy import (
    OriginUnavailable,
    ResilienceConfig,
    ResilienceStats,
    ResilientOrigin,
)


def req() -> Request:
    return Request(url="www.f.example/page?id=1")


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def advance(self, dt: float) -> None:
        self.now += dt

    def __call__(self) -> float:
        return self.now


class ScriptedOrigin:
    """Yields a scripted sequence of responses / exceptions, then repeats last."""

    def __init__(self, *outcomes) -> None:
        self.outcomes = list(outcomes)
        self.calls = 0
        self.seen_now: list[float] = []

    def __call__(self, request: Request, now: float) -> Response:
        self.calls += 1
        self.seen_now.append(now)
        outcome = self.outcomes.pop(0) if len(self.outcomes) > 1 else self.outcomes[0]
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


OK = Response(status=200, body=b"fresh")
ERR = Response(status=500, body=b"boom")


def make(origin, clock=None, *, sleeps=None, **overrides) -> ResilientOrigin:
    knobs = dict(
        retries=2,
        backoff_base=0.1,
        backoff_cap=0.4,
        backoff_jitter=0.0,  # deterministic pauses
        deadline=10.0,
        breaker_window=8,
        breaker_min_calls=4,
        breaker_cooldown=2.0,
    )
    knobs.update(overrides)
    config = ResilienceConfig(**knobs)
    clock = clock or FakeClock()

    def sleep(pause: float) -> None:
        if sleeps is not None:
            sleeps.append(pause)
        clock.advance(pause)

    return ResilientOrigin(origin, config, clock=clock, sleep=sleep)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ResilienceConfig(retries=-1)
        with pytest.raises(ValueError):
            ResilienceConfig(backoff_base=-0.1)
        with pytest.raises(ValueError):
            ResilienceConfig(deadline=0.0)

    def test_make_breaker_carries_knobs(self):
        config = ResilienceConfig(breaker_window=16, breaker_min_calls=5)
        breaker = config.make_breaker()
        assert breaker.min_calls == 5


class TestRetries:
    def test_clean_fetch_passes_through(self):
        origin = ScriptedOrigin(OK)
        policy = make(origin)
        assert policy.fetch_sync(req(), 1.0).body == b"fresh"
        assert origin.calls == 1
        assert policy.stats.retries == 0

    def test_retry_then_success(self):
        origin = ScriptedOrigin(ERR, ConnectionError("reset"), OK)
        sleeps = []
        policy = make(origin, sleeps=sleeps)
        response = policy.fetch_sync(req(), 1.0)
        assert response.status == 200
        assert origin.calls == 3
        assert policy.stats.retries == 2
        # Exponential: base 0.1, then 0.2 (jitter disabled).
        assert sleeps == [0.1, 0.2]
        assert policy.stats.backoff_seconds == pytest.approx(0.3)

    def test_backoff_is_capped(self):
        origin = ScriptedOrigin(ERR, ERR, ERR, ERR, OK)
        sleeps = []
        # min_calls high enough that four straight failures don't trip the
        # breaker mid-retry (that behavior has its own test below).
        policy = make(origin, retries=4, sleeps=sleeps, breaker_min_calls=8)
        policy.fetch_sync(req(), 1.0)
        assert sleeps == [0.1, 0.2, 0.4, 0.4]  # capped at backoff_cap

    def test_same_now_on_every_attempt(self):
        origin = ScriptedOrigin(ERR, OK)
        policy = make(origin)
        policy.fetch_sync(req(), 42.5)
        assert origin.seen_now == [42.5, 42.5]

    def test_exhaustion_raises_with_context(self):
        origin = ScriptedOrigin(ERR)
        policy = make(origin, retries=2)
        with pytest.raises(OriginUnavailable) as excinfo:
            policy.fetch_sync(req(), 1.0)
        assert excinfo.value.reason == "retries exhausted"
        assert excinfo.value.attempts == 3
        assert excinfo.value.last_status == 500
        assert policy.stats.exhausted == 1
        assert origin.calls == 3

    def test_exception_exhaustion_chains_cause(self):
        reset = ConnectionError("reset")
        origin = ScriptedOrigin(reset)
        policy = make(origin, retries=1)
        with pytest.raises(OriginUnavailable) as excinfo:
            policy.fetch_sync(req(), 1.0)
        assert excinfo.value.last_status is None
        assert excinfo.value.__cause__ is reset

    def test_non_5xx_is_not_a_failure(self):
        origin = ScriptedOrigin(Response(status=404, body=b"nope"))
        policy = make(origin)
        assert policy.fetch_sync(req(), 1.0).status == 404
        assert origin.calls == 1
        assert policy.breaker.failure_rate() == 0.0


class TestDeadline:
    def test_deadline_stops_retrying(self):
        clock = FakeClock()
        origin = ScriptedOrigin(ERR)
        policy = make(origin, clock, retries=50, deadline=0.25)
        with pytest.raises(OriginUnavailable) as excinfo:
            policy.fetch_sync(req(), 1.0)
        assert excinfo.value.reason == "deadline budget exhausted"
        assert policy.stats.deadline_exhausted == 1
        # 0.1 spent sleeping; the next 0.2 pause would cross 0.25.
        assert origin.calls == 2


class TestBreaker:
    def test_breaker_opens_and_fast_fails(self):
        origin = ScriptedOrigin(ERR)
        policy = make(origin, retries=0)
        for _ in range(4):  # breaker_min_calls=4, all failures
            with pytest.raises(OriginUnavailable):
                policy.fetch_sync(req(), 1.0)
        assert policy.breaker.state == OPEN
        calls_before = origin.calls
        with pytest.raises(OriginUnavailable) as excinfo:
            policy.fetch_sync(req(), 1.0)
        assert excinfo.value.reason == "circuit open"
        assert origin.calls == calls_before  # origin never touched
        assert policy.stats.fast_fails == 1

    def test_breaker_recovers_through_half_open(self):
        clock = FakeClock()
        origin = ScriptedOrigin(ERR, ERR, ERR, ERR, OK)
        policy = make(origin, clock, retries=0)
        for _ in range(4):
            with pytest.raises(OriginUnavailable):
                policy.fetch_sync(req(), 1.0)
        assert policy.breaker.state == OPEN
        clock.advance(2.0)  # cooldown elapses -> half-open probes
        assert policy.fetch_sync(req(), 1.0).status == 200
        assert policy.fetch_sync(req(), 1.0).status == 200
        assert policy.breaker.state == CLOSED
        assert policy.breaker.stats.reclosed == 1

    def test_shared_breaker_instance(self):
        breaker = CircuitBreaker(window=8, min_calls=4, cooldown=2.0)
        policy = ResilientOrigin(
            ScriptedOrigin(OK), ResilienceConfig(), breaker=breaker
        )
        assert policy.breaker is breaker


class TestSnapshot:
    def test_snapshot_shape(self):
        policy = make(ScriptedOrigin(OK))
        policy.fetch_sync(req(), 1.0)
        snap = policy.snapshot()
        assert snap["policy"]["calls"] == 1
        assert snap["breaker"]["state"] == CLOSED

    def test_stats_dataclass_defaults(self):
        stats = ResilienceStats()
        assert stats.calls == 0 and stats.backoff_seconds == 0.0
