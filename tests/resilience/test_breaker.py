"""Tests for the origin circuit breaker (repro.resilience.breaker)."""

import threading

import pytest

from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def advance(self, dt: float) -> None:
        self.now += dt

    def __call__(self) -> float:
        return self.now


def make(clock: FakeClock, **kwargs) -> CircuitBreaker:
    defaults = dict(
        window=8, min_calls=4, failure_threshold=0.5, cooldown=2.0, probes=2
    )
    defaults.update(kwargs)
    return CircuitBreaker(clock=clock, **defaults)


def trip(breaker: CircuitBreaker, failures: int = 4) -> None:
    for _ in range(failures):
        breaker.record_failure()


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker(window=0)
        with pytest.raises(ValueError):
            CircuitBreaker(window=4, min_calls=8)
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=1.5)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=-1.0)
        with pytest.raises(ValueError):
            CircuitBreaker(probes=0)


class TestClosed:
    def test_starts_closed_and_allows(self):
        breaker = make(FakeClock())
        assert breaker.state == CLOSED
        assert breaker.allow()
        assert breaker.stats.fast_fails == 0

    def test_does_not_open_below_min_calls(self):
        breaker = make(FakeClock())
        trip(breaker, failures=3)  # min_calls=4
        assert breaker.state == CLOSED

    def test_opens_at_failure_threshold(self):
        breaker = make(FakeClock())
        breaker.record_success()
        breaker.record_success()
        trip(breaker, failures=2)  # 2/4 = 0.5 >= threshold
        assert breaker.state == OPEN
        assert breaker.stats.opened == 1

    def test_stays_closed_below_threshold(self):
        breaker = make(FakeClock())
        for _ in range(6):
            breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()  # 2/8 = 0.25 < 0.5
        assert breaker.state == CLOSED

    def test_window_slides(self):
        breaker = make(FakeClock(), window=4, min_calls=4)
        trip(breaker, failures=2)
        # Push the failures out of the 4-slot window with successes.
        for _ in range(4):
            breaker.record_success()
        assert breaker.failure_rate() == 0.0

    def test_failure_rate(self):
        breaker = make(FakeClock())
        assert breaker.failure_rate() == 0.0
        breaker.record_success()
        breaker.record_failure()
        assert breaker.failure_rate() == 0.5


class TestOpen:
    def test_open_fast_fails(self):
        breaker = make(FakeClock())
        trip(breaker)
        assert not breaker.allow()
        assert not breaker.allow()
        assert breaker.stats.fast_fails == 2

    def test_failures_while_open_do_not_restart_cooldown(self):
        clock = FakeClock()
        breaker = make(clock)
        trip(breaker)
        clock.advance(1.5)
        breaker.record_success()  # straggler from before the trip
        clock.advance(0.5)
        assert breaker.state == HALF_OPEN


class TestHalfOpen:
    def test_half_open_after_cooldown(self):
        clock = FakeClock()
        breaker = make(clock)
        trip(breaker)
        assert breaker.state == OPEN
        clock.advance(2.0)
        assert breaker.state == HALF_OPEN
        assert breaker.stats.half_opens == 1

    def test_probe_budget(self):
        clock = FakeClock()
        breaker = make(clock, probes=2)
        trip(breaker)
        clock.advance(2.0)
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()  # probe slots exhausted
        assert breaker.stats.fast_fails == 1

    def test_probe_successes_close(self):
        clock = FakeClock()
        breaker = make(clock, probes=2)
        trip(breaker)
        clock.advance(2.0)
        assert breaker.allow() and breaker.allow()
        breaker.record_success()
        assert breaker.state == HALF_OPEN  # one probe is not enough
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.stats.reclosed == 1
        # The window was cleared: old failures cannot re-trip the breaker.
        assert breaker.failure_rate() == 0.0

    def test_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = make(clock)
        trip(breaker)
        clock.advance(2.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.stats.opened == 2
        assert not breaker.allow()
        # A fresh cooldown is required before probing again.
        clock.advance(2.0)
        assert breaker.allow()

    def test_concurrent_probes_respect_budget(self):
        """Many threads race ``allow()`` in half-open: exactly ``probes``
        win a slot; every loser is a fast-fail.  This is the live
        server's shape — executor worker threads hit the breaker
        together the moment the cooldown lapses."""
        clock = FakeClock()
        breaker = make(clock, probes=2)
        trip(breaker)
        clock.advance(2.0)

        contenders = 16
        outcomes = [None] * contenders
        barrier = threading.Barrier(contenders)

        def contend(i: int) -> None:
            barrier.wait()
            outcomes[i] = breaker.allow()

        threads = [
            threading.Thread(target=contend, args=(i,))
            for i in range(contenders)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sum(outcomes) == 2  # exactly the probe budget admitted
        assert breaker.stats.fast_fails == contenders - 2
        assert breaker.state == HALF_OPEN

    def test_concurrent_probe_successes_close_once(self):
        """Probe winners reporting success from separate threads close
        the breaker exactly once (no double-reclose, window cleared)."""
        clock = FakeClock()
        breaker = make(clock, probes=3)
        trip(breaker)
        clock.advance(2.0)
        assert breaker.allow() and breaker.allow() and breaker.allow()

        barrier = threading.Barrier(3)

        def succeed() -> None:
            barrier.wait()
            breaker.record_success()

        threads = [threading.Thread(target=succeed) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert breaker.state == CLOSED
        assert breaker.stats.reclosed == 1
        assert breaker.failure_rate() == 0.0

    def test_probe_failure_reopens_and_denies_other_probe(self):
        """One probe fails while another is still in flight: the breaker
        reopens immediately and the straggler cannot admit new calls."""
        clock = FakeClock()
        breaker = make(clock, probes=2)
        trip(breaker)
        clock.advance(2.0)
        assert breaker.allow() and breaker.allow()
        breaker.record_failure()  # first probe comes back bad
        assert breaker.state == OPEN
        assert not breaker.allow()  # fresh calls are denied
        # The straggler's success is just an outcome counter now; the
        # reopened cooldown stands.
        breaker.record_success()
        assert breaker.state == OPEN

    def test_full_cycle_snapshot(self):
        clock = FakeClock()
        breaker = make(clock)
        trip(breaker)
        clock.advance(2.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.allow()
        breaker.record_success()
        snap = breaker.snapshot()
        assert snap["state"] == CLOSED
        assert snap["opened"] == 1
        assert snap["reclosed"] == 1
        assert snap["half_opens"] == 1
        assert snap["window_size"] == 0
