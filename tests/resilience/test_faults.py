"""Tests for the structured fault-injection engine (repro.resilience.faults)."""

import pytest

from repro.http.messages import Request, Response
from repro.resilience.faults import (
    FaultAction,
    FaultPlan,
    FaultRule,
    OriginResetError,
)


def req(url: str = "www.f.example/page?id=1") -> Request:
    return Request(url=url)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


class TestFaultRule:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultRule(kind="explode")
        with pytest.raises(ValueError):
            FaultRule(kind="error", rate=1.5)
        with pytest.raises(ValueError):
            FaultRule(kind="latency", delay=-0.1)
        with pytest.raises(ValueError):
            FaultRule(kind="corrupt", flips=0)
        with pytest.raises(ValueError):
            FaultRule(kind="error", start=5.0, end=1.0)

    def test_window_activation(self):
        rule = FaultRule(kind="error", start=10.0, end=20.0)
        assert not rule.active(9.9)
        assert rule.active(10.0)
        assert rule.active(19.9)
        assert not rule.active(20.0)

    def test_default_name_is_kind(self):
        assert FaultRule(kind="reset").name == "reset"
        assert FaultRule(kind="reset", name="rst1").name == "rst1"


class TestFaultPlan:
    def test_error_rule_injects_response(self):
        plan = FaultPlan([FaultRule(kind="error", status=500, body=b"boom")])
        action = plan.decide(req())
        assert action.response is not None
        assert action.response.status == 500
        assert action.response.body == b"boom"
        assert plan.injected["error"] == 1

    def test_rate_is_seeded_and_partial(self):
        plan = FaultPlan([FaultRule(kind="error", rate=0.3)], seed=5)
        hits = sum(1 for _ in range(400) if plan.decide(req()).response)
        # Seeded: the exact count is reproducible run to run.
        replay = FaultPlan([FaultRule(kind="error", rate=0.3)], seed=5)
        replay_hits = sum(1 for _ in range(400) if replay.decide(req()).response)
        assert hits == replay_hits
        assert 0.2 * 400 < hits < 0.4 * 400

    def test_url_filter(self):
        plan = FaultPlan([FaultRule(kind="error", match="id=7")])
        assert plan.decide(req("www.f.example/p?id=1")).response is None
        assert plan.decide(req("www.f.example/p?id=7")).response is not None

    def test_window_uses_plan_clock(self):
        clock = FakeClock()
        plan = FaultPlan(
            [FaultRule(kind="error", start=5.0, end=10.0)], clock=clock
        )
        plan.arm()
        assert plan.decide(req()).response is None  # elapsed 0 < start
        clock.now = 6.0
        assert plan.decide(req()).response is not None
        clock.now = 12.0
        assert plan.decide(req()).response is None  # window closed

    def test_latency_and_jitter_compose(self):
        plan = FaultPlan(
            [
                FaultRule(kind="latency", delay=0.1),
                FaultRule(kind="latency", delay=0.2, jitter=0.1),
            ]
        )
        action = plan.decide(req())
        assert 0.3 <= action.pre_delay <= 0.4

    def test_reset_raises_fresh_exception_objects(self):
        plan = FaultPlan([FaultRule(kind="reset")])
        first = plan.decide(req()).exception
        second = plan.decide(req()).exception
        assert isinstance(first, OriginResetError)
        assert first is not second

    def test_corrupt_mangles_seeded(self):
        plan = FaultPlan([FaultRule(kind="corrupt", flips=3)], seed=9)
        action = plan.decide(req())
        assert action.corrupt_flips == 3
        body = b"x" * 100
        mangled = plan.mangle(body, action.corrupt_flips)
        assert mangled != body
        assert len(mangled) == len(body)
        assert sum(1 for a, b in zip(body, mangled) if a != b) <= 3

    def test_drip_composes_to_slowest(self):
        plan = FaultPlan(
            [FaultRule(kind="drip", bps=1000.0), FaultRule(kind="drip", bps=200.0)]
        )
        assert plan.decide(req()).drip_bps == 200.0

    def test_disabled_plan_is_inert(self):
        plan = FaultPlan([FaultRule(kind="error")], enabled=False)
        assert plan.decide(req()).is_noop
        plan.enable()
        assert plan.decide(req()).response is not None
        plan.disable()
        assert plan.decide(req()).is_noop

    def test_noop_action(self):
        assert FaultAction().is_noop
        assert not FaultAction(pre_delay=0.1).is_noop


class TestParse:
    def test_parse_full_spec(self):
        plan = FaultPlan.parse(
            "error:rate=0.1,status=503,body=down;"
            "latency:rate=0.5,delay=0.2,jitter=0.1;"
            "corrupt:rate=0.05,flips=2,match=id=3;"
            "reset:rate=0.01,start=5,end=9,name=blip"
        )
        kinds = [rule.kind for rule in plan.rules]
        assert kinds == ["error", "latency", "corrupt", "reset"]
        error, latency, corrupt, reset = plan.rules
        assert error.rate == 0.1 and error.status == 503 and error.body == b"down"
        assert latency.delay == 0.2 and latency.jitter == 0.1
        assert corrupt.flips == 2 and corrupt.match == "id=3"
        assert reset.start == 5.0 and reset.end == 9.0 and reset.name == "blip"

    def test_parse_rejects_junk(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("")
        with pytest.raises(ValueError):
            FaultPlan.parse("error:rate")
        with pytest.raises(ValueError):
            FaultPlan.parse("error:wat=1")
        with pytest.raises(ValueError):
            FaultPlan.parse("kaboom:rate=1")

    def test_describe_round_trips_the_shape(self):
        plan = FaultPlan.parse("error:rate=0.1;latency:delay=0.2,start=5,end=9")
        text = plan.describe()
        assert "error:0.1" in text
        assert "@[5,9)" in text
