"""Tests for the discrete-event server simulator."""

import pytest

from repro.network.link import HIGH_BANDWIDTH, LAN, MODEM_56K
from repro.simulation.des import ServerSpec, simulate_server, sweep_offered_load


def fixed(size: int):
    return lambda rng: size


class TestValidation:
    def test_server_spec(self):
        with pytest.raises(ValueError):
            ServerSpec(cpu_ms_per_request=0)
        with pytest.raises(ValueError):
            ServerSpec(cpu_ms_per_request=5, max_connections=0)

    def test_simulate_args(self):
        spec = ServerSpec(cpu_ms_per_request=5)
        with pytest.raises(ValueError):
            simulate_server(0, 10, spec, fixed(1000), LAN)
        with pytest.raises(ValueError):
            simulate_server(10, 0, spec, fixed(1000), LAN)


class TestConservation:
    def test_requests_conserved(self):
        spec = ServerSpec(cpu_ms_per_request=5, max_connections=50)
        result = simulate_server(80, 60, spec, fixed(20_000), MODEM_56K, seed=3)
        # every arrival is either rejected, completed, or still in flight
        in_flight = result.arrived - result.rejected - result.completed
        assert 0 <= in_flight <= spec.max_connections

    def test_determinism(self):
        spec = ServerSpec(cpu_ms_per_request=5)
        a = simulate_server(50, 30, spec, fixed(5_000), MODEM_56K, seed=9)
        b = simulate_server(50, 30, spec, fixed(5_000), MODEM_56K, seed=9)
        assert a.completed == b.completed
        assert a.latencies == b.latencies

    def test_cpu_utilization_bounded(self):
        spec = ServerSpec(cpu_ms_per_request=5)
        result = simulate_server(400, 30, spec, fixed(2_000), LAN, seed=2)
        assert 0 <= result.cpu_utilization <= 1.0 + 1e-6

    def test_concurrency_bounded_by_slots(self):
        spec = ServerSpec(cpu_ms_per_request=2, max_connections=40)
        result = simulate_server(200, 30, spec, fixed(30_000), MODEM_56K, seed=5)
        assert result.peak_concurrency <= 40
        assert result.mean_concurrency <= 40


class TestCapacityBehaviour:
    def test_light_load_no_rejections(self):
        spec = ServerSpec(cpu_ms_per_request=5.6)
        result = simulate_server(20, 60, spec, fixed(3_000), HIGH_BANDWIDTH, seed=1)
        assert result.rejection_rate == 0.0
        assert result.achieved_rps == pytest.approx(20, rel=0.15)

    def test_cpu_saturation_caps_throughput(self):
        # 10 ms CPU -> 100 rps ceiling regardless of offered load
        spec = ServerSpec(cpu_ms_per_request=10, max_connections=10_000)
        result = simulate_server(400, 60, spec, fixed(2_000), HIGH_BANDWIDTH, seed=1)
        assert result.achieved_rps <= 105
        assert result.cpu_utilization > 0.95

    def test_connection_saturation_caps_throughput(self):
        # slow clients + big responses: slots bind long before the CPU
        spec = ServerSpec(cpu_ms_per_request=1, max_connections=100)
        result = simulate_server(200, 60, spec, fixed(44_000), MODEM_56K, seed=1)
        assert result.cpu_utilization < 0.3
        assert result.rejection_rate > 0.3
        assert result.peak_concurrency == 100

    def test_latency_grows_with_load(self):
        spec = ServerSpec(cpu_ms_per_request=6, max_connections=5_000)
        light = simulate_server(20, 60, spec, fixed(10_000), MODEM_56K, seed=4)
        heavy = simulate_server(140, 60, spec, fixed(10_000), MODEM_56K, seed=4)
        assert heavy.mean_latency >= light.mean_latency

    def test_paper_shape_plain_vs_delta(self):
        """Small delta responses turn a connection-bound server into a
        CPU-bound one with ~4x the throughput over slow clients."""
        plain = simulate_server(
            200, 60, ServerSpec(5.6), fixed(44_000), MODEM_56K, seed=7
        )
        delta = simulate_server(
            200, 60, ServerSpec(7.7), fixed(3_000), MODEM_56K, seed=7
        )
        assert delta.achieved_rps > 3 * plain.achieved_rps
        assert delta.rejection_rate < plain.rejection_rate


class TestSweep:
    def test_sweep_returns_one_result_per_load(self):
        spec = ServerSpec(cpu_ms_per_request=5)
        results = sweep_offered_load([10, 50], 20, spec, fixed(2_000), LAN)
        assert [r.offered_rps for r in results] == [10, 50]

    def test_achieved_monotone_until_saturation(self):
        spec = ServerSpec(cpu_ms_per_request=8, max_connections=5_000)
        results = sweep_offered_load(
            [20, 60, 100, 180], 40, spec, fixed(2_000), HIGH_BANDWIDTH
        )
        achieved = [r.achieved_rps for r in results]
        # grows with load, then flattens at the ~125 rps CPU ceiling
        assert achieved[0] < achieved[1] < achieved[2]
        assert achieved[3] <= 135
