"""Additional engine tests: custom rulebooks, session URLs, report math."""

import pytest

from repro.core.config import AnonymizationConfig, DeltaServerConfig
from repro.origin.site import SiteSpec, SyntheticSite
from repro.simulation.engine import Simulation, SimulationConfig
from repro.url.rules import RuleBook
from repro.workload.generator import WorkloadSpec, generate_workload


def fast_config(**kwargs) -> SimulationConfig:
    return SimulationConfig(
        delta=DeltaServerConfig(
            anonymization=AnonymizationConfig(documents=2, min_count=1)
        ),
        **kwargs,
    )


@pytest.fixture(scope="module")
def site():
    return SyntheticSite(
        SiteSpec(name="www.ex.example", products_per_category=2,
                 categories=("laptops",))
    )


class TestCustomRulebook:
    def test_custom_rulebook_used(self, site):
        rulebook = RuleBook()
        # hint pins the exact page: sessions of one page share a class
        rulebook.add_rule(
            site.spec.name, r"(?P<hint>[^/?]+\?id=\d+)(?:&(?P<rest>.*))?$"
        )
        workload = generate_workload(
            [site],
            WorkloadSpec(
                name="rb",
                requests=120,
                users=6,
                duration=600.0,
                session_urls=True,
                logged_in_fraction=1.0,
            ),
        )
        simulation = Simulation([site], fast_config(), rulebook=rulebook)
        report = simulation.run(workload)
        assert report.verify_failures == 0
        # classes collapse onto logical pages despite per-user URLs
        assert report.classes <= 2
        assert report.distinct_documents > report.classes

    def test_default_rulebook_built_from_sites(self, site):
        simulation = Simulation([site], fast_config())
        # the heuristic/hint rules were installed for the site's server
        assert simulation.server.grouper is not None


class TestSessionUrlReplay:
    def test_session_urls_verify_clean(self, site):
        workload = generate_workload(
            [site],
            WorkloadSpec(
                name="sess",
                requests=100,
                users=5,
                duration=500.0,
                session_urls=True,
                logged_in_fraction=1.0,
            ),
        )
        report = Simulation([site], fast_config()).run(workload)
        assert report.verify_failures == 0


class TestReportMath:
    @pytest.fixture(scope="class")
    def report(self, site):
        workload = generate_workload(
            [site],
            WorkloadSpec(name="m", requests=80, users=5, duration=400.0),
        )
        return Simulation([site], fast_config()).run(workload)

    def test_documents_per_class(self, report):
        assert report.documents_per_class == pytest.approx(
            report.distinct_documents / report.classes
        )

    def test_storage_reduction_positive(self, report):
        assert report.storage_reduction_factor > 0

    def test_latency_counts_match_requests(self, report):
        assert report.latency_delta.count == report.requests

    def test_total_sent_includes_base_upstream(self, report):
        bw = report.bandwidth
        assert bw.total_sent_bytes == bw.sent_bytes + bw.base_file_upstream_bytes
