"""Tests for the Section VI-C capacity model."""

import pytest

from repro.network.link import MODEM_56K
from repro.simulation.capacity import (
    CostModel,
    compare_plain_vs_delta,
    estimate_capacity,
    measure_delta_cost,
)


class TestCostModel:
    def test_delta_system_costs_more_cpu(self):
        cost = CostModel()
        assert cost.cpu_ms_delta_system() > cost.cpu_ms_plain()

    def test_paper_calibration(self):
        """Defaults must land in the paper's measured ranges."""
        cost = CostModel()
        plain_rps = 1000 / cost.cpu_ms_plain()
        delta_rps = 1000 / cost.cpu_ms_delta_system()
        assert 170 <= plain_rps <= 185  # paper: 175-180 req/s
        assert 120 <= delta_rps <= 140  # paper: ~130 req/s


class TestEstimateCapacity:
    def test_cpu_limit(self):
        estimate = estimate_capacity("x", 10.0, 1000, MODEM_56K)
        assert estimate.cpu_capacity_rps == pytest.approx(100.0)

    def test_connection_limit_scales_with_hold_time(self):
        small = estimate_capacity("s", 5.0, 1_000, MODEM_56K, max_connections=255)
        large = estimate_capacity("l", 5.0, 50_000, MODEM_56K, max_connections=255)
        assert small.connection_capacity_rps > large.connection_capacity_rps
        assert small.mean_hold_seconds < large.mean_hold_seconds

    def test_capacity_is_binding_constraint(self):
        estimate = estimate_capacity("x", 5.0, 50_000, MODEM_56K)
        assert estimate.capacity_rps == min(
            estimate.cpu_capacity_rps, estimate.connection_capacity_rps
        )

    def test_concurrency_littles_law(self):
        estimate = estimate_capacity("x", 5.0, 10_000, MODEM_56K)
        assert estimate.concurrency_at(100.0) == pytest.approx(
            100.0 * estimate.mean_hold_seconds
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_capacity("x", 0.0, 1000, MODEM_56K)


class TestPlainVsDelta:
    def test_paper_shape(self):
        """The paper's qualitative result: the delta system loses some CPU
        capacity but sustains far more concurrent connections."""
        plain, delta = compare_plain_vs_delta(CostModel())
        # CPU capacity: plain ~175-180, delta ~130
        assert plain.cpu_capacity_rps > delta.cpu_capacity_rps
        # Small responses release connection slots quickly: throughput per
        # connection ceiling is far higher for the delta system.
        assert delta.connection_capacity_rps > 2 * plain.connection_capacity_rps
        # The plain server cannot reach its CPU capacity over slow clients:
        # its 255-connection ceiling binds first.
        assert plain.connection_capacity_rps < plain.cpu_capacity_rps
        # At its CPU capacity the delta system has more connections in
        # flight than the plain server's 255-slot ceiling — the paper's
        # "500 or more concurrent connections" effect.
        assert delta.sustainable_concurrency > plain.max_connections

    def test_plain_connection_ceiling_at_255(self):
        plain, _ = compare_plain_vs_delta(CostModel())
        assert plain.max_connections == 255


class TestMeasuredDeltaCost:
    def test_measures_real_differ(self):
        base = (b"<p>block</p>" * 4600)[:55_000]  # ~55 KB, paper's band
        document = base[:30_000] + b"<p>changed</p>" + base[30_500:]
        measurement = measure_delta_cost(base, document, repetitions=3)
        assert measurement.base_bytes == 55_000
        assert measurement.delta_bytes < len(document) * 0.2
        assert measurement.encode_ms > 0
        assert measurement.compress_ms >= 0
        assert measurement.total_ms == pytest.approx(
            measurement.encode_ms + measurement.compress_ms
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            measure_delta_cost(b"base", b"doc", repetitions=0)
