"""Tests for the end-to-end simulation engine (Fig. 2)."""

import pytest

from repro.core.config import AnonymizationConfig, DeltaServerConfig
from repro.origin.site import SiteSpec, SyntheticSite
from repro.simulation.engine import Simulation, SimulationConfig
from repro.workload.generator import WorkloadSpec, generate_workload


@pytest.fixture(scope="module")
def site():
    return SyntheticSite(
        SiteSpec(
            name="www.sim.example",
            products_per_category=3,
            categories=("laptops", "desktops"),
        )
    )


@pytest.fixture(scope="module")
def small_run(site):
    """One shared replay used by several assertions (it is expensive)."""
    workload = generate_workload(
        [site],
        WorkloadSpec(
            name="small", requests=250, users=8, duration=1200.0, revisit_bias=0.6
        ),
    )
    config = SimulationConfig(
        delta=DeltaServerConfig(
            anonymization=AnonymizationConfig(enabled=True, documents=2, min_count=1)
        )
    )
    simulation = Simulation([site], config)
    report = simulation.run(workload)
    return simulation, report


class TestCorrectness:
    def test_zero_verify_failures(self, small_run):
        _, report = small_run
        assert report.verify_failures == 0
        assert report.requests == 250

    def test_deltas_dominate_after_warmup(self, small_run):
        _, report = small_run
        assert report.bandwidth.deltas_served > report.bandwidth.full_served

    def test_bandwidth_savings_positive(self, small_run):
        _, report = small_run
        assert report.bandwidth.savings > 0.3
        assert report.bandwidth.direct_bytes > report.bandwidth.total_sent_bytes


class TestScalability:
    def test_fewer_classes_than_documents(self, small_run):
        _, report = small_run
        # documents here counts distinct URLs; with personalization each URL
        # stands for many per-user variants, all sharing one class
        assert report.classes <= report.distinct_documents
        assert report.class_storage_bytes < report.classless_storage_bytes

    def test_storage_reduction(self, small_run):
        _, report = small_run
        # one shared base per class vs one per (document, user) pair
        assert report.storage_reduction_factor > 2


class TestLatency:
    def test_latency_improves(self, small_run):
        _, report = small_run
        assert report.latency_improvement > 1.0

    def test_latency_tracked_per_request(self, small_run):
        _, report = small_run
        assert report.latency_delta.count == report.requests
        assert report.latency_direct.count == report.requests


class TestProxy:
    def test_proxy_caches_base_files(self, small_run):
        simulation, report = small_run
        assert report.proxy_hit_rate > 0
        assert simulation.proxy.cache.stats.insertions > 0

    def test_proxy_disabled_still_correct(self, site):
        workload = generate_workload(
            [site],
            WorkloadSpec(name="noproxy", requests=60, users=4, duration=300.0),
        )
        config = SimulationConfig(
            proxy_enabled=False,
            delta=DeltaServerConfig(
                anonymization=AnonymizationConfig(
                    enabled=True, documents=2, min_count=1
                )
            ),
        )
        report = Simulation([site], config).run(workload)
        assert report.verify_failures == 0
        assert report.proxy_hit_rate == 0.0


class TestClients:
    def test_one_client_per_user(self, small_run):
        simulation, report = small_run
        assert simulation.client_for("user0001") is simulation.client_for("user0001")

    def test_client_uid_matches_trace_user(self, small_run):
        simulation, _ = small_run
        client = simulation.client_for("user0001")
        assert client.user_id == "user0001"
