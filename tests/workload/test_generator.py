"""Tests for the synthetic workload generator."""

import pytest

from repro.origin.site import SiteSpec, SyntheticSite
from repro.workload.generator import WorkloadSpec, generate_workload


@pytest.fixture(scope="module")
def site():
    return SyntheticSite(SiteSpec(name="www.w.example", products_per_category=5))


def spec(**kwargs) -> WorkloadSpec:
    defaults = dict(name="t", requests=300, users=10, duration=600.0, seed=7)
    defaults.update(kwargs)
    return WorkloadSpec(**defaults)


class TestSpecValidation:
    def test_bad_requests(self):
        with pytest.raises(ValueError):
            spec(requests=0)

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            spec(revisit_bias=1.5)

    def test_bad_duration(self):
        with pytest.raises(ValueError):
            spec(duration=0)


class TestGeneration:
    def test_request_count(self, site):
        workload = generate_workload([site], spec())
        assert len(workload.trace) == 300

    def test_timestamps_monotone_within_duration(self, site):
        workload = generate_workload([site], spec())
        times = [r.timestamp for r in workload.trace]
        assert times == sorted(times)
        assert times[-1] <= 600.0 + 1e-6

    def test_urls_parse_back(self, site):
        workload = generate_workload([site], spec())
        for record in workload.trace:
            site.parse_url(record.url)  # raises on malformed

    def test_users_within_roster(self, site):
        workload = generate_workload([site], spec(users=5))
        assert len(workload.trace.users) <= 5

    def test_deterministic(self, site):
        a = generate_workload([site], spec())
        b = generate_workload([site], spec())
        assert a.trace.records == b.trace.records
        assert a.logged_in_users == b.logged_in_users
        assert a.shared_card_groups == b.shared_card_groups

    def test_seed_changes_trace(self, site):
        a = generate_workload([site], spec(seed=1))
        b = generate_workload([site], spec(seed=2))
        assert a.trace.records != b.trace.records

    def test_revisit_bias_concentrates_urls(self, site):
        low = generate_workload([site], spec(revisit_bias=0.0, requests=600))
        high = generate_workload([site], spec(revisit_bias=0.9, requests=600))
        assert len(high.trace.urls) <= len(low.trace.urls)

    def test_zipf_concentration(self, site):
        workload = generate_workload(
            [site], spec(requests=2000, revisit_bias=0.0, zipf_alpha=1.2)
        )
        from collections import Counter

        counts = Counter(r.url for r in workload.trace).most_common()
        top_share = sum(c for _, c in counts[:3]) / 2000
        assert top_share > 0.25  # hot documents dominate

    def test_shared_card_groups_subset_of_logged_in(self, site):
        workload = generate_workload(
            [site], spec(shared_card_fraction=0.5, logged_in_fraction=0.5)
        )
        assert set(workload.shared_card_groups) <= workload.logged_in_users

    def test_multiple_sites(self):
        sites = [
            SyntheticSite(SiteSpec(name=f"www.s{i}.example", products_per_category=3))
            for i in range(3)
        ]
        workload = generate_workload(sites, spec())
        servers = {r.url.split("/")[0] for r in workload.trace}
        assert len(servers) == 3

    def test_no_sites_rejected(self):
        with pytest.raises(ValueError):
            generate_workload([], spec())


class TestSessionUrls:
    def test_logged_in_urls_carry_session_token(self, site):
        workload = generate_workload(
            [site], spec(session_urls=True, logged_in_fraction=1.0)
        )
        assert all("sid=" in r.url for r in workload.trace)

    def test_session_token_matches_user(self, site):
        workload = generate_workload(
            [site], spec(session_urls=True, logged_in_fraction=1.0)
        )
        for record in workload.trace:
            assert record.url.endswith(f"sid={record.user}")

    def test_session_urls_still_parse(self, site):
        workload = generate_workload(
            [site], spec(session_urls=True, logged_in_fraction=1.0)
        )
        for record in workload.trace:
            site.parse_url(record.url)

    def test_anonymous_users_get_plain_urls(self, site):
        workload = generate_workload(
            [site], spec(session_urls=True, logged_in_fraction=0.0)
        )
        assert all("sid=" not in r.url for r in workload.trace)

    def test_distinct_documents_per_user(self, site):
        plain = generate_workload([site], spec(session_urls=False))
        session = generate_workload(
            [site], spec(session_urls=True, logged_in_fraction=1.0)
        )
        assert len(session.trace.urls) >= len(plain.trace.urls)
