"""Tests for trace statistics and the Zipf-exponent fit."""

import random

import pytest

from repro.origin.site import SiteSpec, SyntheticSite
from repro.workload.generator import WorkloadSpec, generate_workload
from repro.workload.stats import analyze_trace, fit_zipf_alpha
from repro.workload.trace import Trace, TraceRecord
from repro.workload.zipf import ZipfSampler


class TestZipfFit:
    def test_perfect_zipf_recovered(self):
        # rank-frequency drawn exactly from 1/rank^alpha
        for alpha in (0.6, 1.0, 1.4):
            frequencies = [
                round(100_000 / (rank + 1) ** alpha) for rank in range(50)
            ]
            assert fit_zipf_alpha(frequencies) == pytest.approx(alpha, abs=0.05)

    def test_uniform_gives_zero(self):
        assert fit_zipf_alpha([100] * 20) == pytest.approx(0.0, abs=0.01)

    def test_degenerate_inputs(self):
        assert fit_zipf_alpha([]) == 0.0
        assert fit_zipf_alpha([42]) == 0.0

    def test_sampled_zipf_recovered(self):
        rng = random.Random(5)
        sampler = ZipfSampler(40, alpha=0.9, rng=rng)
        from collections import Counter

        counts = Counter(sampler.sample_many(50_000))
        frequencies = sorted(counts.values(), reverse=True)
        assert fit_zipf_alpha(frequencies) == pytest.approx(0.9, abs=0.15)


class TestAnalyzeTrace:
    def test_empty_trace(self):
        stats = analyze_trace(Trace(name="empty"))
        assert stats.requests == 0
        assert stats.zipf_alpha == 0.0

    def test_counts(self):
        trace = Trace(
            name="t",
            records=[
                TraceRecord(0.0, "u1", "a"),
                TraceRecord(1.0, "u1", "a"),
                TraceRecord(2.0, "u2", "b"),
            ],
        )
        stats = analyze_trace(trace)
        assert stats.requests == 3
        assert stats.distinct_urls == 2
        assert stats.distinct_users == 2
        assert stats.top_url_share == pytest.approx(2 / 3)
        assert stats.requests_per_pair == pytest.approx(3 / 2)

    def test_generated_trace_matches_spec_alpha(self):
        site = SyntheticSite(
            SiteSpec(name="www.stats.example", products_per_category=20)
        )
        workload = generate_workload(
            [site],
            WorkloadSpec(
                name="s",
                requests=8000,
                users=30,
                duration=3600.0,
                revisit_bias=0.0,  # pure Zipf draws
                zipf_alpha=1.0,
            ),
        )
        stats = analyze_trace(workload.trace)
        assert stats.zipf_alpha == pytest.approx(1.0, abs=0.25)
        assert stats.requests == 8000
