"""Tests for the trace format and file round-trip."""

import pytest

from repro.workload.trace import Trace, TraceRecord


class TestTraceRecord:
    def test_line_roundtrip(self):
        record = TraceRecord(timestamp=12.5, user="u1", url="www.a.com/x?id=1")
        assert TraceRecord.from_line(record.to_line()) == record

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            TraceRecord.from_line("only two\tfields")


class TestTrace:
    def _trace(self):
        return Trace(
            name="t",
            records=[
                TraceRecord(1.0, "u1", "www.a.com/x?id=1"),
                TraceRecord(3.0, "u2", "www.a.com/x?id=2"),
                TraceRecord(2.0, "u1", "www.a.com/x?id=1"),
            ],
        )

    def test_len_and_iter(self):
        trace = self._trace()
        assert len(trace) == 3
        assert len(list(trace)) == 3

    def test_duration(self):
        assert self._trace().duration == pytest.approx(1.0)  # 3.0 - 1.0? no: last - first
        # records are in insertion order; duration = last.ts - first.ts
        sorted_trace = self._trace().sorted()
        assert sorted_trace.duration == pytest.approx(2.0)

    def test_users_and_urls(self):
        trace = self._trace()
        assert trace.users == {"u1", "u2"}
        assert trace.urls == {"www.a.com/x?id=1", "www.a.com/x?id=2"}

    def test_sorted_is_stable_copy(self):
        trace = self._trace()
        ordered = trace.sorted()
        assert [r.timestamp for r in ordered] == [1.0, 2.0, 3.0]
        assert [r.timestamp for r in trace] == [1.0, 3.0, 2.0]  # original intact

    def test_empty_trace(self):
        trace = Trace(name="empty")
        assert len(trace) == 0
        assert trace.duration == 0.0
        assert trace.users == set()

    def test_save_load_roundtrip(self, tmp_path):
        trace = self._trace()
        path = tmp_path / "trace.log"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.name == "t"
        assert loaded.records == trace.records

    def test_load_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "trace.log"
        path.write_text("# comment\n\n1.000\tu1\twww.a.com/x\n")
        loaded = Trace.load(path)
        assert len(loaded) == 1
