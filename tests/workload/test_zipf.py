"""Tests for Zipf-like sampling."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.zipf import ZipfSampler


class TestZipfSampler:
    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(5, alpha=-1)

    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(50, alpha=0.8)
        total = sum(sampler.probability(i) for i in range(50))
        assert total == pytest.approx(1.0)

    def test_probability_monotone_decreasing(self):
        sampler = ZipfSampler(20, alpha=0.8)
        probs = [sampler.probability(i) for i in range(20)]
        assert probs == sorted(probs, reverse=True)

    def test_alpha_zero_is_uniform(self):
        sampler = ZipfSampler(10, alpha=0.0)
        for i in range(10):
            assert sampler.probability(i) == pytest.approx(0.1)

    def test_rank_out_of_range(self):
        sampler = ZipfSampler(5)
        with pytest.raises(IndexError):
            sampler.probability(5)

    def test_empirical_distribution_matches(self):
        rng = random.Random(42)
        sampler = ZipfSampler(10, alpha=1.0, rng=rng)
        counts = Counter(sampler.sample_many(30_000))
        # rank 0 should be drawn about 1/(H_10) of the time
        expected = sampler.probability(0)
        observed = counts[0] / 30_000
        assert observed == pytest.approx(expected, rel=0.1)

    def test_samples_in_range(self):
        sampler = ZipfSampler(7, rng=random.Random(1))
        assert all(0 <= s < 7 for s in sampler.sample_many(1000))

    def test_deterministic_with_seed(self):
        a = ZipfSampler(20, rng=random.Random(9)).sample_many(50)
        b = ZipfSampler(20, rng=random.Random(9)).sample_many(50)
        assert a == b


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=200),
    alpha=st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
)
def test_zipf_cdf_well_formed(n, alpha):
    sampler = ZipfSampler(n, alpha, rng=random.Random(0))
    assert sampler._cdf[-1] == 1.0
    assert all(
        sampler._cdf[i] <= sampler._cdf[i + 1] for i in range(len(sampler._cdf) - 1)
    )
    assert 0 <= sampler.sample() < n
