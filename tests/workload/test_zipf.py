"""Tests for Zipf-like sampling."""

import math
import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.zipf import ZipfSampler


class TestZipfSampler:
    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(5, alpha=-1)

    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(50, alpha=0.8)
        total = sum(sampler.probability(i) for i in range(50))
        assert total == pytest.approx(1.0)

    def test_probability_monotone_decreasing(self):
        sampler = ZipfSampler(20, alpha=0.8)
        probs = [sampler.probability(i) for i in range(20)]
        assert probs == sorted(probs, reverse=True)

    def test_alpha_zero_is_uniform(self):
        sampler = ZipfSampler(10, alpha=0.0)
        for i in range(10):
            assert sampler.probability(i) == pytest.approx(0.1)

    def test_rank_out_of_range(self):
        sampler = ZipfSampler(5)
        with pytest.raises(IndexError):
            sampler.probability(5)

    def test_empirical_distribution_matches(self):
        rng = random.Random(42)
        sampler = ZipfSampler(10, alpha=1.0, rng=rng)
        counts = Counter(sampler.sample_many(30_000))
        # rank 0 should be drawn about 1/(H_10) of the time
        expected = sampler.probability(0)
        observed = counts[0] / 30_000
        assert observed == pytest.approx(expected, rel=0.1)

    def test_samples_in_range(self):
        sampler = ZipfSampler(7, rng=random.Random(1))
        assert all(0 <= s < 7 for s in sampler.sample_many(1000))

    def test_deterministic_with_seed(self):
        a = ZipfSampler(20, rng=random.Random(9)).sample_many(50)
        b = ZipfSampler(20, rng=random.Random(9)).sample_many(50)
        assert a == b

    def test_boundary_draws_belong_to_the_upper_rank(self):
        """Regression: a draw exactly on cdf[i] is rank i+1, not rank i.

        Rank i owns the half-open interval [cdf[i-1], cdf[i]).  With
        ``bisect_left`` a draw landing exactly on a CDF boundary was
        assigned to the lower rank, silently inflating popular ranks by
        the boundary mass.  A stub RNG pins the draw to each boundary.
        """

        class StubRandom(random.Random):
            def __init__(self, value: float) -> None:
                super().__init__(0)
                self.value = value

            def random(self) -> float:
                return self.value

        sampler = ZipfSampler(4, alpha=0.0)  # uniform: cdf = .25, .5, .75, 1
        for rank in range(3):
            boundary = sampler._cdf[rank]
            sampler._rng = StubRandom(boundary)
            assert sampler.sample() == rank + 1, (
                f"draw == cdf[{rank}] must select rank {rank + 1}"
            )
        # Off-boundary draws stay with the rank owning their interval.
        sampler._rng = StubRandom(0.2499999)
        assert sampler.sample() == 0
        # random() < 1.0 always, so the top boundary is unreachable; the
        # largest representable draw below 1.0 picks the last rank.
        sampler._rng = StubRandom(math.nextafter(1.0, 0.0))
        assert sampler.sample() == 3


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=200),
    alpha=st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
)
def test_zipf_cdf_well_formed(n, alpha):
    sampler = ZipfSampler(n, alpha, rng=random.Random(0))
    assert sampler._cdf[-1] == 1.0
    assert all(
        sampler._cdf[i] <= sampler._cdf[i + 1] for i in range(len(sampler._cdf) - 1)
    )
    assert 0 <= sampler.sample() < n
