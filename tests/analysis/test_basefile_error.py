"""Tests for the Section IV error analysis."""

import pytest

from repro.analysis.basefile_error import (
    expected_candidates,
    normalizing_constant,
    p_error_bound,
    per_eviction_error_bound,
    simulate_best_kept,
)


class TestClosedForms:
    def test_expected_candidates(self):
        assert expected_candidates(100_000, 0.01) == pytest.approx(1000.0)

    def test_paper_example_bound(self):
        """R=10^5, p=10^-2, K=10 -> N=1000, P_error <= 8e-11 (paper)."""
        bound = p_error_bound(1000, 10)
        assert bound <= 8e-11
        assert bound > 1e-12  # same order as the paper's number

    def test_bound_decreases_in_k(self):
        bounds = [p_error_bound(1000, k) for k in (3, 5, 8, 10)]
        assert bounds == sorted(bounds, reverse=True)

    def test_bound_zero_when_all_stored(self):
        assert p_error_bound(5, 10) == 0.0

    def test_normalizing_constant(self):
        # c * sum_{i=1}^{N-1} 1/i = 1
        c = normalizing_constant(1000)
        harmonic = sum(1.0 / i for i in range(1, 1000))
        assert c * harmonic == pytest.approx(1.0)

    def test_normalizing_constant_close_to_inverse_log(self):
        import math

        c = normalizing_constant(1000)
        assert c == pytest.approx(1 / math.log(1000), rel=0.1)

    def test_per_eviction_bound_small(self):
        assert per_eviction_error_bound(1000, 10) < 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            p_error_bound(100, 1)
        with pytest.raises(ValueError):
            normalizing_constant(1)


class TestMonteCarlo:
    def test_selection_quality_near_optimal(self):
        """The randomized scheme's pick should be near the offline medoid."""
        result = simulate_best_kept(candidates=80, capacity=8, trials=60, seed=3)
        assert result.mean_quality_ratio < 1.3
        assert 0 <= result.best_kept_fraction <= 1

    def test_larger_capacity_improves_quality(self):
        small = simulate_best_kept(candidates=60, capacity=3, trials=80, seed=5)
        large = simulate_best_kept(candidates=60, capacity=12, trials=80, seed=5)
        assert large.mean_quality_ratio <= small.mean_quality_ratio + 0.02

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_best_kept(candidates=5, capacity=8)
