"""Tests for the Section VI-A analytic latency model."""

import pytest

from repro.analysis.latency_model import (
    bandwidth_to_latency_factor,
    highbw_rounds_ratio,
    modem_latency_ratio,
)


class TestHighBandwidth:
    def test_paper_value(self):
        # log2(30) ~ 4.9, the paper's "roughly equal to 5"
        assert highbw_rounds_ratio(30 * 1024, 1024) == pytest.approx(4.9, abs=0.1)

    def test_equal_sizes_ratio_one(self):
        assert highbw_rounds_ratio(1024, 1024) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            highbw_rounds_ratio(0, 1024)
        with pytest.raises(ValueError):
            highbw_rounds_ratio(1024, 2048)


class TestModem:
    def test_paper_value_around_10(self):
        ratio = modem_latency_ratio(30 * 1024, 1024)
        assert 8 <= ratio <= 12

    def test_fixed_overhead_reduces_ratio(self):
        low_overhead = modem_latency_ratio(30 * 1024, 1024, fixed_overhead=0.05)
        high_overhead = modem_latency_ratio(30 * 1024, 1024, fixed_overhead=2.0)
        assert high_overhead < low_overhead
        # no overhead -> pure size ratio
        pure = modem_latency_ratio(30 * 1024, 1024, fixed_overhead=0.0)
        assert pure == pytest.approx(30.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            modem_latency_ratio(0, 1)
        with pytest.raises(ValueError):
            modem_latency_ratio(10, 1, bandwidth_bps=0)


class TestRuleOfThumb:
    def test_modem_factor(self):
        assert 8 <= bandwidth_to_latency_factor(30, modem=True) <= 12

    def test_highbw_factor(self):
        assert 4 <= bandwidth_to_latency_factor(30, modem=False) <= 6

    def test_validation(self):
        with pytest.raises(ValueError):
            bandwidth_to_latency_factor(0.5)
