"""Tests for the Section V privacy analysis."""

import pytest

from repro.analysis.privacy_error import (
    decaying_bound,
    exact_decaying,
    exact_iid,
    iid_bound,
    monte_carlo_decaying,
    monte_carlo_iid,
    recommended_n,
)


class TestPaperExamples:
    def test_iid_bound_paper_numbers(self):
        """p=0.01, N=10, M=5: bound 4.7e-7, exact 2.4e-8 (paper Section V)."""
        assert iid_bound(10, 5, 0.01) == pytest.approx(4.7e-7, rel=0.05)
        assert exact_iid(10, 5, 0.01) == pytest.approx(2.4e-8, rel=0.05)

    def test_bound_dominates_exact(self):
        for n, m, p in ((10, 5, 0.01), (12, 4, 0.05), (8, 2, 0.1)):
            assert iid_bound(n, m, p) >= exact_iid(n, m, p)

    def test_decaying_bound_much_smaller(self):
        assert decaying_bound(10, 5, 0.01) < iid_bound(10, 5, 0.01)


class TestExactBinomial:
    def test_m_equals_one(self):
        # P(X >= 1) = 1 - (1-p)^N
        assert exact_iid(10, 1, 0.1) == pytest.approx(1 - 0.9**10)

    def test_m_equals_n(self):
        assert exact_iid(5, 5, 0.5) == pytest.approx(0.5**5)

    def test_p_zero(self):
        assert exact_iid(10, 3, 0.0) == 0.0

    def test_p_one(self):
        assert exact_iid(10, 3, 1.0) == pytest.approx(1.0)

    def test_monotone_in_m(self):
        values = [exact_iid(10, m, 0.2) for m in range(1, 11)]
        assert values == sorted(values, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            exact_iid(10, 0, 0.1)
        with pytest.raises(ValueError):
            exact_iid(10, 11, 0.1)
        with pytest.raises(ValueError):
            exact_iid(10, 5, 1.5)


class TestMonteCarlo:
    def test_iid_matches_exact(self):
        mc = monte_carlo_iid(10, 2, 0.1, trials=150_000, seed=2)
        assert mc == pytest.approx(exact_iid(10, 2, 0.1), rel=0.05)

    def test_decaying_below_iid(self):
        iid = monte_carlo_iid(10, 2, 0.2, trials=50_000, seed=3)
        decaying = monte_carlo_decaying(10, 2, 0.2, trials=50_000, seed=3)
        assert decaying < iid

    def test_decaying_bounded_by_closed_form(self):
        # closed-form bound must dominate the empirical decaying probability
        mc = monte_carlo_decaying(10, 2, 0.2, trials=100_000, seed=4)
        assert mc <= decaying_bound(10, 2, 0.2) * 1.5 + 1e-4


class TestHelpers:
    def test_exact_decaying_dominant_term(self):
        value = exact_decaying(10, 2, 0.1)
        # C(10,2) * p * p^2 = 45 * 1e-3
        assert value == pytest.approx(45 * 1e-3)

    def test_recommended_n(self):
        assert recommended_n(4) == 8
        with pytest.raises(ValueError):
            recommended_n(0)
