"""Tests for the fleet partition map (repro.fleet.partition)."""

import pytest

from repro.fleet.partition import (
    DEFAULT_VNODES,
    PartitionMap,
    owner_of_class_id,
    worker_class_prefix,
)


def many_keys(count: int = 1000) -> list[tuple[str, str]]:
    return [
        (f"www.site-{i % 7}.example", f"/app/page-{i}?id={i}")
        for i in range(count)
    ]


class TestClassIdPrefix:
    def test_prefix_round_trips(self):
        for worker in (0, 1, 7, 42):
            class_id = f"{worker_class_prefix(worker)}cls9"
            assert owner_of_class_id(class_id) == worker

    def test_unprefixed_ids_have_no_owner(self):
        # Single-process engines mint bare ids; the router serves those
        # locally rather than guessing an owner.
        assert owner_of_class_id("cls3") is None
        assert owner_of_class_id("weird-cls3") is None
        assert owner_of_class_id("") is None

    def test_negative_worker_rejected(self):
        with pytest.raises(ValueError):
            worker_class_prefix(-1)


class TestPartitionMap:
    def test_deterministic_across_instances(self):
        # Two independently constructed maps (two worker processes)
        # must derive the identical assignment — no map exchange.
        first = PartitionMap(4)
        second = PartitionMap(4)
        for server, hint in many_keys(200):
            assert first.owner(server, hint) == second.owner(server, hint)

    def test_owner_in_range(self):
        part = PartitionMap(3)
        for server, hint in many_keys(300):
            assert 0 <= part.owner(server, hint) < 3

    def test_single_worker_owns_everything(self):
        part = PartitionMap(1)
        assert part.spread(many_keys(100)) == {0: 100}

    def test_balance(self):
        # 64 vnodes/worker keeps the imbalance modest: no worker gets
        # less than half or more than double its fair share.
        keys = many_keys(2000)
        for workers in (2, 3, 4):
            fair = len(keys) / workers
            spread = PartitionMap(workers).spread(keys)
            assert set(spread) == set(range(workers))
            for count in spread.values():
                assert fair / 2 <= count <= fair * 2, spread

    def test_resize_moves_few_keys(self):
        # The consistent-hashing property: growing the fleet N → N+1
        # remaps roughly 1/(N+1) of the keys, not almost all of them.
        keys = many_keys(2000)
        before = PartitionMap(3)
        after = PartitionMap(4)
        moved = sum(
            1 for server, hint in keys
            if before.owner(server, hint) != after.owner(server, hint)
        )
        assert moved / len(keys) < 0.5, f"{moved}/{len(keys)} keys moved"
        # Sanity: something moved (the new worker owns a share).
        assert moved > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            PartitionMap(0)
        with pytest.raises(ValueError):
            PartitionMap(2, vnodes=0)

    def test_snapshot(self):
        assert PartitionMap(2).snapshot() == {
            "workers": 2,
            "vnodes": DEFAULT_VNODES,
        }
