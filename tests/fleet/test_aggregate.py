"""Tests for fleet metrics aggregation (repro.fleet.aggregate)."""

import sys
from pathlib import Path

from repro.fleet.aggregate import merge_expositions, relabel_exposition

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "scripts"))
from check_prometheus_exposition import check as check_exposition  # noqa: E402


WORKER_TEXT = """\
# HELP repro_requests_total requests handled
# TYPE repro_requests_total counter
repro_requests_total 42
# TYPE repro_status_total counter
repro_status_total{status="200"} 40
repro_status_total{status="503"} 2
# TYPE repro_stage_seconds histogram
repro_stage_seconds_bucket{stage="encode",le="0.1"} 3
repro_stage_seconds_bucket{stage="encode",le="+Inf"} 5
repro_stage_seconds_sum{stage="encode"} 0.4
repro_stage_seconds_count{stage="encode"} 5
"""


class TestRelabel:
    def test_bare_sample_gets_label(self):
        out = relabel_exposition("repro_x 1", 3)
        assert out == 'repro_x{worker="3"} 1'

    def test_labeled_sample_appends(self):
        out = relabel_exposition('repro_x{a="b"} 1', 0)
        assert out == 'repro_x{a="b",worker="0"} 1'

    def test_trailing_comma_handled(self):
        out = relabel_exposition('repro_x{a="b",} 1', 0)
        assert out == 'repro_x{a="b",worker="0"} 1'

    def test_comments_and_blanks_untouched(self):
        text = "# TYPE repro_x counter\n\nrepro_x 1"
        out = relabel_exposition(text, 1)
        lines = out.splitlines()
        assert lines[0] == "# TYPE repro_x counter"
        assert lines[1] == ""
        assert lines[2] == 'repro_x{worker="1"} 1'

    def test_label_value_containing_brace(self):
        # Values may contain "}"; the split is at the *last* brace.
        out = relabel_exposition('repro_x{path="/a}b"} 1', 2)
        assert out == 'repro_x{path="/a}b",worker="2"} 1'


class TestMerge:
    def test_dedupes_help_and_type(self):
        merged = merge_expositions({0: WORKER_TEXT, 1: WORKER_TEXT})
        lines = merged.splitlines()
        assert lines.count("# TYPE repro_requests_total counter") == 1
        assert lines.count("# HELP repro_requests_total requests handled") == 1
        assert 'repro_requests_total{worker="0"} 42' in lines
        assert 'repro_requests_total{worker="1"} 42' in lines

    def test_extra_lines_appended(self):
        merged = merge_expositions({0: "repro_x 1"}, "repro_fleet_workers 2")
        assert merged.splitlines()[-1] == "repro_fleet_workers 2"

    def test_missing_workers_are_absent_not_fatal(self):
        merged = merge_expositions({1: "repro_x 1"})
        assert 'repro_x{worker="1"} 1' in merged
        assert 'worker="0"' not in merged

    def test_merged_exposition_is_valid(self):
        # The CI gate: the merged text — interleaved worker blocks,
        # deduped TYPE lines, per-worker histogram series — must pass
        # the repo's exposition checker.
        extra = "\n".join(
            [
                "# TYPE repro_fleet_workers gauge",
                "repro_fleet_workers 2",
                "# TYPE repro_fleet_worker_up gauge",
                'repro_fleet_worker_up{worker="0"} 1',
                'repro_fleet_worker_up{worker="1"} 1',
            ]
        )
        merged = merge_expositions({0: WORKER_TEXT, 1: WORKER_TEXT}, extra)
        assert check_exposition(merged) == []
