"""Live fleet tests: a real supervisor owning real worker processes.

These tests spawn actual ``python -m repro.cli serve`` subprocesses via
:class:`repro.fleet.FleetSupervisor` and exercise the full robustness
story over TCP: shared-address accept, cross-worker forwarding with
byte-for-byte verification, SIGKILL crash recovery with warm restart
from the per-worker store shard, metrics aggregation, and graceful
drain.  Worker boots cost ~1 s each, so the lifecycle is packed into
few tests.
"""

import asyncio
import json
import os
import signal
import sys
from pathlib import Path

import pytest

from repro.fleet import (
    ACCEPT_INHERIT,
    ACCEPT_REUSEPORT,
    FleetConfig,
    FleetSupervisor,
    http_get,
    pick_accept_mode,
)
from repro.fleet.router import HEADER_FLEET_WORKER
from repro.http.messages import Request
from repro.origin.server import OriginServer
from repro.origin.site import SiteSpec, SyntheticSite
from repro.serve import LoadGenConfig, LoadGenerator, read_response, serialize_request
from repro.workload.generator import WorkloadSpec, generate_workload

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "scripts"))
from check_prometheus_exposition import check as check_exposition  # noqa: E402

SITE = "www.fleet.example"

#: serve flags forwarded to every worker so the workers and the test's
#: verification twin render the identical synthetic site
WORKER_ARGS = (
    "--site", SITE,
    "--categories", "laptops,desktops",
    "--products", "3",
    "--anon-n", "2",
    "--anon-m", "1",
    "--drain-timeout", "5.0",
)


def make_spec() -> SiteSpec:
    return SiteSpec(
        name=SITE, categories=("laptops", "desktops"), products_per_category=3
    )


def make_workload(requests: int, seed: int):
    return generate_workload(
        [SyntheticSite(make_spec())],
        WorkloadSpec(
            name="fleet",
            requests=requests,
            users=6,
            duration=30.0,
            revisit_bias=0.7,
            seed=seed,
        ),
    )


def make_verify_render():
    twin = OriginServer([SyntheticSite(make_spec())])

    def verify(url: str, user: str, served_at: float) -> bytes:
        request = Request(url=url, cookies={"uid": user}, client_id=user)
        return twin.handle(request, served_at).body

    return verify


def make_config(tmp_path, workers: int = 2, **overrides) -> FleetConfig:
    defaults = dict(
        workers=workers,
        state_dir=str(tmp_path / "state"),
        control_file=str(tmp_path / "fleet.json"),
        worker_args=WORKER_ARGS,
        backoff_base=0.05,
        drain_grace=10.0,
    )
    defaults.update(overrides)
    return FleetConfig(**defaults)


async def fetch(host: str, port: int, url: str, user: str):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        request = Request(url=url, cookies={"uid": user}, client_id=user)
        writer.write(serialize_request(request, keep_alive=False))
        await writer.drain()
        parsed = await asyncio.wait_for(read_response(reader), 10.0)
        return parsed.response
    finally:
        writer.close()


async def admin_health(supervisor: FleetSupervisor) -> dict:
    host, port = supervisor.admin_address
    response = await http_get(host, port, "__health__", timeout=5.0)
    assert response.status == 200
    return json.loads(response.body.decode())


async def wait_for(predicate, timeout: float = 20.0, interval: float = 0.1):
    """Poll an async predicate until truthy; fail the test on timeout."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while loop.time() < deadline:
        value = await predicate()
        if value:
            return value
        await asyncio.sleep(interval)
    pytest.fail("condition not reached within timeout")


class TestFleetLifecycle:
    def test_full_lifecycle(self, tmp_path):
        """Boot → verified load through forwarding → SIGKILL crash →
        supervised restart with warm rehydration → aggregated metrics →
        graceful drain with all workers exiting 0."""

        async def main():
            supervisor = FleetSupervisor(make_config(tmp_path, workers=2))
            await supervisor.start()
            try:
                host, port = supervisor.config.host, supervisor.port

                # -- verified load through the shared address ---------------
                workload = make_workload(80, seed=9)
                report = await LoadGenerator(
                    LoadGenConfig(
                        host=host, port=port, concurrency=4, retries=3
                    ),
                    verify_render=make_verify_render(),
                ).run(workload.trace)
                assert report.completed == 80
                assert report.errors == 0
                assert report.verify_failures == 0
                assert report.delta_failures == 0
                assert report.deltas > 0

                # -- every URL has one stable owner -------------------------
                urls = sorted(workload.trace.urls)[:6]
                owners = {}
                for url in urls:
                    first = await fetch(host, port, url, "u1")
                    second = await fetch(host, port, url, "u2")
                    assert first.status == second.status == 200
                    owner = first.headers.get(HEADER_FLEET_WORKER)
                    assert owner is not None
                    assert second.headers.get(HEADER_FLEET_WORKER) == owner
                    owners[url] = owner
                # The partition actually spreads classes: with this site
                # both workers own some of the URLs (deterministic hash).
                assert len(set(owners.values())) == 2, owners

                # -- forwarding happened and is visible in health -----------
                health = await admin_health(supervisor)
                assert health["status"] == "ok"
                fleet_counters = [
                    w["health"]["fleet"] for w in health["workers"]
                ]
                assert sum(c["forwarded"] for c in fleet_counters) > 0
                assert sum(c["served_for_peers"] for c in fleet_counters) > 0

                # -- SIGKILL one worker: supervisor restarts it warm --------
                victim = supervisor.handles[0]
                victim_classes = health["workers"][0]["health"]["engine"][
                    "classes"
                ]
                assert victim_classes > 0
                os.kill(victim.pid, signal.SIGKILL)

                async def restarted():
                    snap = await admin_health(supervisor)
                    worker = snap["workers"][0]
                    return (
                        snap["status"] == "ok"
                        and worker["restarts"] >= 1
                        and worker["up"]
                    ) and snap
                health = await wait_for(restarted)
                engine = health["workers"][0]["health"]["engine"]
                assert engine["store"]["warm_start"] is True
                # Committed classes come back from the shard (classes still
                # mid-anonymization at kill time are legitimately absent).
                assert 1 <= engine["rehydrated_classes"] <= victim_classes

                # -- the restarted worker serves the same bytes -------------
                after = await LoadGenerator(
                    LoadGenConfig(
                        host=host, port=port, concurrency=4, retries=3
                    ),
                    verify_render=make_verify_render(),
                ).run(make_workload(40, seed=17).trace)
                assert after.completed == 40
                assert after.verify_failures == 0
                assert after.errors == 0

                # -- aggregated metrics pass the exposition checker ---------
                admin_host, admin_port = supervisor.admin_address
                metrics = await http_get(
                    admin_host, admin_port, "__metrics__", timeout=5.0
                )
                assert metrics.status == 200
                text = metrics.body.decode()
                assert check_exposition(text) == []
                assert 'repro_fleet_worker_up{worker="0"} 1' in text
                assert "repro_fleet_restarts_total 1" in text
                assert 'worker="1"' in text
            finally:
                report = await supervisor.drain()
            # -- graceful drain: every worker exited 0 ----------------------
            for worker in report["workers"]:
                assert worker["exit_code"] == 0, report
                assert worker["drain_seconds"] is not None
            # Control file removed on drain.
            assert not (tmp_path / "fleet.json").exists()

        asyncio.run(main())

    def test_rolling_restart_keeps_serving(self, tmp_path):
        async def main():
            supervisor = FleetSupervisor(make_config(tmp_path, workers=2))
            await supervisor.start()
            try:
                host, port = supervisor.config.host, supervisor.port
                url = sorted(make_workload(10, seed=3).trace.urls)[0]
                assert (await fetch(host, port, url, "u1")).status == 200
                roll = asyncio.ensure_future(supervisor.roll())
                # The shared address answers throughout the roll.
                while not roll.done():
                    response = await fetch(host, port, url, "u1")
                    assert response.status in (200, 503)
                    await asyncio.sleep(0.05)
                await roll
                health = await admin_health(supervisor)
                assert health["status"] == "ok"
                assert all(w["restarts"] == 1 for w in health["workers"])
                assert all(w["last_exit"] == 0 for w in health["workers"])
            finally:
                await supervisor.drain()

        asyncio.run(main())

    @pytest.mark.skipif(
        pick_accept_mode() != ACCEPT_REUSEPORT,
        reason="inherit fallback is the only mode on this kernel",
    )
    def test_inherit_accept_mode_fallback(self, tmp_path):
        """The parent-acceptor fallback serves without SO_REUSEPORT."""

        async def main():
            supervisor = FleetSupervisor(
                make_config(tmp_path, workers=2, accept_mode=ACCEPT_INHERIT)
            )
            assert supervisor.accept_mode == ACCEPT_INHERIT
            await supervisor.start()
            try:
                host, port = supervisor.config.host, supervisor.port
                report = await LoadGenerator(
                    LoadGenConfig(
                        host=host, port=port, concurrency=4, retries=3
                    ),
                    verify_render=make_verify_render(),
                ).run(make_workload(30, seed=5).trace)
                assert report.completed == 30
                assert report.errors == 0
                assert report.verify_failures == 0
            finally:
                report = await supervisor.drain()
            assert all(w["exit_code"] == 0 for w in report["workers"])

        asyncio.run(main())
