"""Tests for the cookie-jar user-identification model."""

from repro.http.cookies import CookieJar, issue_uid


class TestCookieJar:
    def test_ensure_uid_is_sticky(self):
        jar = CookieJar()
        uid = jar.ensure_uid()
        assert jar.ensure_uid() == uid

    def test_distinct_jars_distinct_uids(self):
        # The paper's Netscape/IE caveat: two browser instances of the same
        # human are two different "users" to the system.
        assert CookieJar().ensure_uid() != CookieJar().ensure_uid()

    def test_preseeded_uid_respected(self):
        jar = CookieJar(cookies={"uid": "u-fixed"})
        assert jar.ensure_uid() == "u-fixed"

    def test_request_cookies_are_a_copy(self):
        jar = CookieJar()
        jar.ensure_uid()
        cookies = jar.as_request_cookies()
        cookies["uid"] = "tampered"
        assert jar.cookies["uid"] != "tampered"

    def test_clear_forgets_identity(self):
        jar = CookieJar()
        first = jar.ensure_uid()
        jar.clear()
        assert jar.ensure_uid() != first


def test_issue_uid_unique():
    uids = {issue_uid() for _ in range(100)}
    assert len(uids) == 100
