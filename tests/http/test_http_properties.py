"""Property-based tests for the HTTP message substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.http.messages import Headers, base_ref, parse_base_ref

token = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-",
    min_size=1,
    max_size=16,
)


@settings(max_examples=100, deadline=None)
@given(class_id=token, version=st.integers(min_value=0, max_value=10**9))
def test_base_ref_roundtrip(class_id, version):
    assert parse_base_ref(base_ref(class_id, version)) == (class_id, version)


@settings(max_examples=80, deadline=None)
@given(entries=st.lists(st.tuples(token, token), max_size=12))
def test_headers_last_write_wins(entries):
    headers = Headers()
    expected: dict[str, str] = {}
    for name, value in entries:
        headers.set(name, value)
        expected[name.lower()] = value
    assert len(headers) == len(expected)
    for lower_name, value in expected.items():
        assert headers.get(lower_name) == value
        assert headers.get(lower_name.upper()) == value


@settings(max_examples=50, deadline=None)
@given(entries=st.lists(st.tuples(token, token), max_size=8))
def test_headers_copy_is_deep_enough(entries):
    original = Headers()
    for name, value in entries:
        original.set(name, value)
    clone = original.copy()
    clone.set("X-New", "value")
    assert "X-New" not in original
    assert original == Headers(dict(original.items()))
