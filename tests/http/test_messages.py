"""Tests for the HTTP message substrate."""

import pytest

from repro.http.messages import (
    HEADER_ACCEPT_DELTA,
    HEADER_DELTA,
    HEADER_DELTA_BASE,
    Headers,
    Request,
    Response,
    base_ref,
    parse_base_ref,
)


class TestHeaders:
    def test_case_insensitive_get(self):
        headers = Headers({"X-Delta": "abc"})
        assert headers.get("x-delta") == "abc"
        assert headers.get("X-DELTA") == "abc"

    def test_last_write_wins(self):
        headers = Headers()
        headers.set("X-Thing", "one")
        headers.set("x-thing", "two")
        assert headers.get("X-Thing") == "two"
        assert len(headers) == 1

    def test_contains(self):
        headers = Headers({"Content-Type": "text/html"})
        assert "content-type" in headers
        assert "missing" not in headers

    def test_default(self):
        assert Headers().get("nope", "fallback") == "fallback"

    def test_copy_is_independent(self):
        original = Headers({"A": "1"})
        clone = original.copy()
        clone.set("A", "2")
        assert original.get("A") == "1"

    def test_equality_ignores_case(self):
        assert Headers({"A": "1"}) == Headers({"a": "1"})
        assert Headers({"A": "1"}) != Headers({"A": "2"})


class TestRequest:
    def test_user_id_from_cookie(self):
        request = Request(url="www.foo.com/x", cookies={"uid": "u42"})
        assert request.user_id == "u42"

    def test_no_cookie_no_user(self):
        assert Request(url="www.foo.com/x").user_id is None

    def test_accepts_delta_parses_header(self):
        request = Request(url="www.foo.com/x")
        request.headers.set(HEADER_ACCEPT_DELTA, "cls1/2,cls9/1")
        assert request.accepts_delta() == ["cls1/2", "cls9/1"]

    def test_accepts_delta_empty(self):
        assert Request(url="www.foo.com/x").accepts_delta() == []

    def test_accepts_delta_strips_whitespace(self):
        """Regression: ``"a/1, b/2"`` (the standard comma-space form every
        HTTP client emits) used to yield ``" b/2"``, which never matched a
        base ref, silently disabling deltas for the second token."""
        request = Request(url="www.foo.com/x")
        request.headers.set(HEADER_ACCEPT_DELTA, "cls1/2, cls9/1 ,  cls3/7")
        assert request.accepts_delta() == ["cls1/2", "cls9/1", "cls3/7"]

    def test_accepts_delta_drops_empty_tokens(self):
        request = Request(url="www.foo.com/x")
        request.headers.set(HEADER_ACCEPT_DELTA, "cls1/2,, ,cls9/1,")
        assert request.accepts_delta() == ["cls1/2", "cls9/1"]


class TestResponse:
    def test_delta_detection(self):
        response = Response(body=b"payload")
        assert not response.is_delta
        response.headers.set(HEADER_DELTA, "cls1/3")
        assert response.is_delta
        assert response.delta_base_ref == "cls1/3"

    def test_base_file_detection(self):
        response = Response(body=b"base")
        response.headers.set(HEADER_DELTA_BASE, "cls1/3")
        assert response.is_base_file
        assert response.base_file_ref == "cls1/3"

    def test_mark_cachable(self):
        response = Response(body=b"x")
        assert not response.cachable
        response.mark_cachable(max_age=60)
        assert response.cachable
        assert "max-age=60" in response.headers.get("Cache-Control")

    def test_content_length(self):
        assert Response(body=b"12345").content_length == 5


class TestBaseRef:
    def test_roundtrip(self):
        token = base_ref("cls7", 3)
        assert token == "cls7/3"
        assert parse_base_ref(token) == ("cls7", 3)

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            parse_base_ref("no-slash")

    def test_non_numeric_version_rejected(self):
        with pytest.raises(ValueError):
            parse_base_ref("cls1/abc")
