"""Tests for the striped per-thread counters backing ServerStats."""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.counters import StripedCounters


class TestStripedCounters:
    def test_single_thread_sums(self):
        counters = StripedCounters(["a", "b"])
        counters.inc("a")
        counters.inc("a", 4)
        counters.inc("b", 2)
        assert counters.get("a") == 5
        assert counters.get("b") == 2
        assert counters.snapshot() == {"a": 5, "b": 2}

    def test_unknown_field_rejected(self):
        counters = StripedCounters(["a"])
        with pytest.raises(KeyError):
            counters.inc("nope")
        with pytest.raises(KeyError):
            counters.get("nope")

    def test_empty_fields_rejected(self):
        with pytest.raises(ValueError):
            StripedCounters([])

    def test_concurrent_increments_are_exact(self):
        """The whole point: no lost updates under thread contention."""
        counters = StripedCounters(["hits", "bytes"])
        threads, per_thread = 8, 5000

        def hammer(worker: int) -> None:
            for _ in range(per_thread):
                counters.inc("hits")
                counters.inc("bytes", worker + 1)

        with ThreadPoolExecutor(max_workers=threads) as pool:
            for worker in range(threads):
                pool.submit(hammer, worker)
        assert counters.get("hits") == threads * per_thread
        expected_bytes = per_thread * sum(range(1, threads + 1))
        assert counters.get("bytes") == expected_bytes

    def test_snapshot_while_writers_run_never_overcounts(self):
        """Mid-flight snapshots are weakly consistent but never exceed the
        true total at read time, and a final snapshot is exact."""
        counters = StripedCounters(["n"])
        total = 20000

        def writer() -> None:
            for _ in range(total):
                counters.inc("n")

        with ThreadPoolExecutor(max_workers=2) as pool:
            future = pool.submit(writer)
            while not future.done():
                assert 0 <= counters.get("n") <= total
            future.result()
        assert counters.get("n") == total
