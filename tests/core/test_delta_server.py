"""Tests for the DeltaServer engine (request handling, Fig. 1 flow)."""

import pytest

from repro.core.config import (
    AnonymizationConfig,
    BaseFileConfig,
    DeltaServerConfig,
    GroupingConfig,
)
from repro.core.delta_server import (
    DeltaServer,
    format_stage_times,
    parse_stage_times,
)
from repro.delta.apply import apply_delta
from repro.delta.compress import decompress
from repro.http.messages import (
    HEADER_ACCEPT_DELTA,
    HEADER_STAGE_TIMES,
    Request,
    Response,
    base_ref,
)
from repro.origin.server import OriginServer
from repro.origin.site import SiteSpec, SyntheticSite
from repro.url.rules import RuleBook


@pytest.fixture()
def stack():
    site = SyntheticSite(SiteSpec(name="www.d.example", products_per_category=4))
    origin = OriginServer([site])
    rulebook = RuleBook()
    rulebook.add_rule(site.spec.name, site.hint_rule_pattern())
    config = DeltaServerConfig(
        anonymization=AnonymizationConfig(enabled=True, documents=2, min_count=1),
    )
    server = DeltaServer(origin.handle, config, rulebook)
    return site, origin, server


def req(url: str, user: str, accept: str | None = None) -> Request:
    request = Request(url=url, cookies={"uid": user}, client_id=user)
    if accept:
        request.headers.set(HEADER_ACCEPT_DELTA, accept)
    return request


def warm_up(site, server, url: str, users=("u1", "u2", "u3")) -> str:
    """Create the class and drive anonymization to READY; return the ref."""
    for user in users:
        server.handle(req(url, user), now=0.0)
    cls = server.class_of(url)
    assert cls is not None and cls.can_serve_deltas
    return base_ref(cls.class_id, cls.version)


class TestBasicFlow:
    def test_first_request_full_response(self, stack):
        site, _, server = stack
        url = site.url_for(site.all_pages()[0])
        response = server.handle(req(url, "u1"), now=0.0)
        assert response.status == 200
        assert not response.is_delta
        assert server.stats.full_served == 1

    def test_delta_served_to_base_holder(self, stack):
        site, origin, server = stack
        url = site.url_for(site.all_pages()[0])
        ref = warm_up(site, server, url)
        response = server.handle(req(url, "u9", accept=ref), now=10.0)
        assert response.is_delta
        assert response.delta_base_ref == ref
        # Reconstruct and compare against a direct origin render.
        cls = server.class_of(url)
        base = cls.distributable_base
        body = apply_delta(decompress(response.body), base)
        direct = origin.handle(req(url, "u9"), now=10.0).body
        assert body == direct

    def test_delta_served_with_comma_space_accept_header(self, stack):
        """Regression: a comma-space Accept-Delta list (``"x/9, <ref>"``)
        left whitespace on the second token, so the engine never matched
        the held base and fell back to a full document."""
        site, _, server = stack
        url = site.url_for(site.all_pages()[0])
        ref = warm_up(site, server, url)
        response = server.handle(
            req(url, "u9", accept=f"bogus/9, {ref}"), now=10.0
        )
        assert response.is_delta
        assert response.delta_base_ref == ref

    def test_delta_much_smaller_than_document(self, stack):
        site, _, server = stack
        url = site.url_for(site.all_pages()[0])
        ref = warm_up(site, server, url)
        response = server.handle(req(url, "u9", accept=ref), now=10.0)
        direct_size = server.stats.direct_bytes / server.stats.requests
        assert response.content_length < 0.2 * direct_size

    def test_full_response_advertises_base(self, stack):
        site, _, server = stack
        url = site.url_for(site.all_pages()[0])
        ref = warm_up(site, server, url)
        response = server.handle(req(url, "u9"), now=10.0)
        assert not response.is_delta
        assert response.base_file_ref == ref

    def test_unknown_accept_ref_gets_full(self, stack):
        site, _, server = stack
        url = site.url_for(site.all_pages()[0])
        warm_up(site, server, url)
        response = server.handle(req(url, "u9", accept="cls999/7"), now=10.0)
        assert not response.is_delta


class TestBaseFileDistribution:
    def test_base_file_served_cachable(self, stack):
        site, _, server = stack
        url = site.url_for(site.all_pages()[0])
        ref = warm_up(site, server, url)
        class_id, version = ref.split("/")
        base_url = DeltaServer.base_file_url(site.spec.name, class_id, int(version))
        response = server.handle(Request(url=base_url), now=0.0)
        assert response.status == 200
        assert response.cachable
        assert response.base_file_ref == ref

    def test_unknown_class_404(self, stack):
        site, _, server = stack
        base_url = DeltaServer.base_file_url(site.spec.name, "cls404", 1)
        assert server.handle(Request(url=base_url), now=0.0).status == 404

    def test_stale_version_404(self, stack):
        site, _, server = stack
        url = site.url_for(site.all_pages()[0])
        ref = warm_up(site, server, url)
        class_id, _ = ref.split("/")
        base_url = DeltaServer.base_file_url(site.spec.name, class_id, 99)
        assert server.handle(Request(url=base_url), now=0.0).status == 404

    def test_base_file_has_no_private_data(self, stack):
        from repro.origin.private import find_card_numbers

        site, _, server = stack
        # pick a page that renders the account box
        page = next(p for p in site.all_pages() if site.page_has_private_box(p))
        url = site.url_for(page)
        warm_up(site, server, url)
        cls = server.class_of(url)
        assert not find_card_numbers(cls.distributable_base)


class TestMalformedBaseFileUrls:
    """Hostile or broken ``__delta_base__`` URLs must parse to None (and
    then 404 through ``handle``), never raise."""

    @pytest.mark.parametrize(
        "url",
        [
            "www.d.example/__delta_base__",  # no class id, no version
            "www.d.example/__delta_base__/",  # empty class id, no version
            "www.d.example/__delta_base__/cls1",  # missing version
            "www.d.example/__delta_base__/cls1/",  # empty version
            "www.d.example/__delta_base__//3",  # empty class id
            "www.d.example/__delta_base__/cls1/seven",  # non-integer version
            "www.d.example/__delta_base__/cls1/3.5",  # non-integer version
            "www.d.example/__delta_base__/cls1/-3",  # sign is not a digit
            "www.d.example/__delta_base__/cls1/٣",  # non-ASCII digit
            "www.d.example/__delta_base__/cls1/99999999999999999999x",
        ],
    )
    def test_parse_returns_none(self, url):
        assert DeltaServer._parse_base_file_url(url) is None

    @pytest.mark.parametrize(
        "url",
        [
            "www.d.example/__delta_base__/cls1",
            "www.d.example/__delta_base__/cls1/seven",
            "www.d.example/__delta_base__//3",
        ],
    )
    def test_handle_returns_404_not_crash(self, stack, url):
        _, _, server = stack
        assert server.handle(Request(url=url), now=0.0).status == 404

    def test_wellformed_url_still_parses(self):
        parsed = DeltaServer._parse_base_file_url(
            "www.d.example/__delta_base__/cls7/12"
        )
        assert parsed == ("cls7", 12)

    def test_extra_trailing_segments_tolerated(self):
        # Anything after <class>/<version> is ignored, not an error.
        parsed = DeltaServer._parse_base_file_url(
            "www.d.example/__delta_base__/cls7/12/extra"
        )
        assert parsed == ("cls7", 12)


class TestPassthrough:
    def test_non_200_passed_through(self, stack):
        _, _, server = stack
        response = server.handle(req("www.d.example/bogus?id=0", "u1"), now=0.0)
        assert response.status == 404
        assert server.stats.passthrough == 1

    def test_tiny_documents_passed_through(self):
        def tiny_origin(request, now):
            return Response(status=200, body=b"ok")

        server = DeltaServer(tiny_origin)
        response = server.handle(req("www.t.example/x?id=1", "u1"), now=0.0)
        assert response.body == b"ok"
        assert server.stats.passthrough == 1


class TestAccounting:
    def test_direct_vs_sent_bytes(self, stack):
        site, _, server = stack
        url = site.url_for(site.all_pages()[0])
        ref = warm_up(site, server, url)
        for i in range(5):
            server.handle(req(url, "u9", accept=ref), now=float(i))
        stats = server.stats
        assert stats.direct_bytes > stats.sent_bytes
        assert stats.deltas_served == 5
        assert stats.savings > 0.4

    def test_class_of_unknown_url(self, stack):
        _, _, server = stack
        assert server.class_of("www.d.example/never?id=0") is None


class TestRebaseTransition:
    def test_previous_version_clients_still_get_deltas(self, stack):
        site, origin, server = stack
        url = site.url_for(site.all_pages()[0])
        old_ref = warm_up(site, server, url)
        cls = server.class_of(url)
        # Force a rebase + re-anonymization to version 2.
        doc = origin.handle(req(url, "zz"), now=50.0).body
        cls.adopt_base(doc, owner_user="zz", now=50.0)
        cls.feed(origin.handle(req(url, "v1"), now=51.0).body, "v1")
        cls.feed(origin.handle(req(url, "v2"), now=52.0).body, "v2")
        assert cls.version == 2
        new_ref = base_ref(cls.class_id, 2)
        # A client still holding version 1 gets a delta against it, plus an
        # upgrade advertisement for version 2.
        response = server.handle(req(url, "u9", accept=old_ref), now=60.0)
        assert response.is_delta
        assert response.delta_base_ref == old_ref
        assert response.base_file_ref == new_ref
        body = apply_delta(decompress(response.body), cls.base_for_version(1))
        assert body == origin.handle(req(url, "u9"), now=60.0).body


class TestStageTiming:
    def test_stage_times_header_on_every_response(self, stack):
        site, _, server = stack
        url = site.url_for(site.all_pages()[0])
        response = server.handle(req(url, "u1"), now=0.0)
        header = response.headers.get(HEADER_STAGE_TIMES)
        assert header is not None
        timings = parse_stage_times(header)
        assert "lock_wait" in timings
        assert "origin_fetch" in timings
        assert all(seconds >= 0.0 for seconds in timings.values())

    def test_delta_path_records_encode_and_compress(self, stack):
        site, _, server = stack
        url = site.url_for(site.all_pages()[0])
        ref = warm_up(site, server, url)
        response = server.handle(req(url, "u9", accept=ref), now=10.0)
        assert response.is_delta
        timings = parse_stage_times(response.headers.get(HEADER_STAGE_TIMES))
        assert "encode" in timings
        assert "compress" in timings
        # The same stages land in the shared metrics registry.
        for stage in ("encode", "compress", "origin_fetch"):
            hist = server.metrics.histogram(
                "engine_stage_seconds", {"stage": stage}
            )
            assert hist is not None and hist.count >= 1

    def test_format_parse_round_trip(self):
        timings = {"origin_fetch": 0.001234, "encode": 0.000056}
        parsed = parse_stage_times(format_stage_times(timings))
        assert parsed == {"origin_fetch": 0.001234, "encode": 0.000056}
        assert parse_stage_times("") == {}
        assert parse_stage_times("garbage;no=equals=x;ok=0.5") == {"ok": 0.5}
