"""Regression: one DeltaServer instance hammered from many threads.

The live serve layer (:mod:`repro.serve`) dispatches engine calls onto a
worker pool, so ``DeltaServer.handle`` must tolerate concurrent callers.
The engine is sharded — per-class locks, off-lock origin fetch,
snapshot-encode-commit delta generation, striped counters — so
concurrent requests genuinely overlap; these tests exist to catch any
mutation path that escapes the sharding discipline (class-map races,
base adoption mid-read, stats corruption, deltas against retired base
versions).
"""

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.core.config import AnonymizationConfig, DeltaServerConfig
from repro.core.delta_server import DeltaServer
from repro.delta.apply import apply_delta
from repro.delta.compress import decompress
from repro.http.messages import HEADER_ACCEPT_DELTA, Request
from repro.origin.server import OriginServer
from repro.origin.site import SiteSpec, SyntheticSite
from repro.resilience.policy import OriginUnavailable
from repro.url.rules import RuleBook

USERS = [f"user{i:02d}" for i in range(16)]


def build_stack():
    site = SyntheticSite(SiteSpec(name="www.c.example", products_per_category=4))
    origin = OriginServer([site])
    rulebook = RuleBook()
    rulebook.add_rule(site.spec.name, site.hint_rule_pattern())
    config = DeltaServerConfig(
        anonymization=AnonymizationConfig(enabled=True, documents=2, min_count=1)
    )
    return site, origin, DeltaServer(origin.handle, config, rulebook)


def req(url: str, user: str, accept: str | None = None) -> Request:
    request = Request(url=url, cookies={"uid": user}, client_id=user)
    if accept:
        request.headers.set(HEADER_ACCEPT_DELTA, accept)
    return request


def test_concurrent_handle_consistent_accounting():
    """N threads x M requests: no exception, exact request accounting."""
    site, _, server = build_stack()
    urls = [site.url_for(page) for page in site.all_pages()[:6]]
    per_thread = 25
    threads = 8
    failures: list[BaseException] = []

    def hammer(worker: int) -> None:
        try:
            for i in range(per_thread):
                url = urls[(worker + i) % len(urls)]
                user = USERS[(worker * 7 + i) % len(USERS)]
                response = server.handle(req(url, user), now=float(i))
                assert response.status == 200
        except BaseException as exc:  # noqa: BLE001 - collected for the assert
            failures.append(exc)

    with ThreadPoolExecutor(max_workers=threads) as pool:
        for worker in range(threads):
            pool.submit(hammer, worker)
    assert not failures, failures
    assert server.stats.requests == threads * per_thread
    assert (
        server.stats.deltas_served
        + server.stats.full_served
        + server.stats.passthrough
        == server.stats.requests
    )


def test_concurrent_deltas_reconstruct_correctly():
    """Concurrent base-holders all get deltas that apply cleanly."""
    site, origin, server = build_stack()
    url = site.url_for(site.all_pages()[0])
    for user in USERS[:4]:  # warm anonymization to READY
        server.handle(req(url, user), now=0.0)
    cls = server.class_of(url)
    assert cls is not None and cls.can_serve_deltas
    ref = f"{cls.class_id}/{cls.version}"
    base = cls.distributable_base
    failures: list[str] = []
    barrier = threading.Barrier(8)

    def fetch(user: str) -> None:
        barrier.wait()
        for i in range(10):
            response = server.handle(req(url, user, accept=ref), now=10.0 + i)
            if not response.is_delta:
                failures.append(f"{user}: expected delta")
                return
            body = apply_delta(decompress(response.body), base)
            expected = origin.handle(req(url, user), now=10.0 + i).body
            if body != expected:
                failures.append(f"{user}: reconstruction mismatch on request {i}")
                return

    with ThreadPoolExecutor(max_workers=8) as pool:
        for user in USERS[:8]:
            pool.submit(fetch, user)
    assert not failures, failures


def test_concurrent_class_formation_single_class():
    """Racing first-requests for the same document must not split the class."""
    site, _, server = build_stack()
    url = site.url_for(site.all_pages()[1])
    barrier = threading.Barrier(8)

    def first(user: str) -> None:
        barrier.wait()
        server.handle(req(url, user), now=0.0)

    with ThreadPoolExecutor(max_workers=8) as pool:
        for user in USERS[:8]:
            pool.submit(first, user)
    cls = server.class_of(url)
    assert cls is not None
    # The URL belongs to exactly one class; racing firsts must not fork it.
    owners = [c for c in server.grouper.classes if url in c.members]
    assert len(owners) == 1


# -- multi-class mixed-traffic stress -----------------------------------------

MIX_SITES = 4
MIX_THREADS = 8
MIX_PER_THREAD = 30
FAIL_HEADER = "X-Fail"


def build_mixed_stack(mode: str):
    sites = [
        SyntheticSite(SiteSpec(name=f"www.mix{i}.example", products_per_category=3))
        for i in range(MIX_SITES)
    ]
    origin = OriginServer(sites)
    rulebook = RuleBook()
    for site in sites:
        rulebook.add_rule(site.spec.name, site.hint_rule_pattern())

    def fetch(request: Request, now: float):
        # Deterministic outage injection: the trace marks which requests
        # find the origin down, identically in every mode/interleaving.
        if request.headers.get(FAIL_HEADER) == "1":
            raise OriginUnavailable("injected outage")
        return origin.handle(request, now)

    config = DeltaServerConfig(
        anonymization=AnonymizationConfig(enabled=True, documents=2, min_count=1),
        engine_mode=mode,
    )
    return sites, origin, DeltaServer(fetch, config, rulebook)


def warm_mixed(server: DeltaServer, sites):
    """Single-threaded warm-up: one delta-ready class per site, plus the
    base bytes a steady-state client would hold for each."""
    refs: dict[str, str] = {}
    bases: dict[str, bytes] = {}
    for site in sites:
        url = site.url_for(site.all_pages()[0])
        for u in range(3):
            server.handle(req(url, f"warm{u}"), now=0.0)
        cls = server.class_of(url)
        assert cls is not None and cls.can_serve_deltas
        ref = f"{cls.class_id}/{cls.version}"
        base_url = server.base_file_url(site.spec.name, cls.class_id, cls.version)
        base_response = server.handle(Request(url=base_url), now=0.0)
        assert base_response.status == 200
        refs[url] = ref
        bases[ref] = base_response.body
    return refs, bases


def mixed_item(i: int, sites, refs: dict[str, str]):
    """Trace item ``i`` — kind plus a fully-built request, pure in ``i``."""
    site = sites[i % MIX_SITES]
    warm_url = site.url_for(site.all_pages()[0])
    now = 1.0 + i * 0.01
    slot = i % 12
    if slot < 7:  # delta traffic: steady-state client holding the base
        return "doc", req(warm_url, f"u{i % 6}", accept=refs[warm_url]), now
    if slot < 10:  # full traffic: clients with no base, other class members
        other = site.url_for(site.all_pages()[1 + slot % 2])
        return "doc", req(other, f"fresh{i % 5}"), now
    if slot == 10:  # base-file distribution traffic
        class_id, version = refs[warm_url].split("/")
        base_url = DeltaServer.base_file_url(site.spec.name, class_id, int(version))
        return "base", Request(url=base_url), now
    request = req(warm_url, f"u{i % 6}", accept=refs[warm_url])  # slot 11
    request.headers.set(FAIL_HEADER, "1")
    return "fail", request, now


def run_mixed_trace(mode: str, concurrent: bool):
    """Warm + replay the mixed trace; returns (stats, observed counts)."""
    sites, origin, server = build_mixed_stack(mode)
    refs, bases = warm_mixed(server, sites)
    total = MIX_THREADS * MIX_PER_THREAD
    counts = {"doc": 0, "base_ok": 0, "fail": 0}
    counts_lock = threading.Lock()
    failures: list[str] = []

    def render_expected(request: Request, now: float) -> bytes:
        clean = Request(url=request.url, cookies=dict(request.cookies))
        return origin.handle(clean, now).body

    def run_item(i: int) -> None:
        kind, request, now = mixed_item(i, sites, refs)
        response = server.handle(request, now)
        if kind == "doc":
            expected = render_expected(request, now)
            if response.is_delta:
                ref = response.delta_base_ref
                # A delta may only reference a base the client advertised
                # (and therefore holds) — never a retired or foreign one.
                if ref not in bases or ref not in request.accepts_delta():
                    failures.append(f"item {i}: delta against unknown ref {ref}")
                    return
                body = apply_delta(decompress(response.body), bases[ref])
            else:
                body = response.body
            if body != expected:
                failures.append(f"item {i}: reconstruction mismatch ({kind})")
                return
            with counts_lock:
                counts["doc"] += 1
        elif kind == "base":
            if response.status == 200:
                with counts_lock:
                    counts["base_ok"] += 1
        else:  # fail
            if response.degraded not in ("stale-base", "origin-unavailable"):
                failures.append(f"item {i}: outage not degraded: {response.status}")
                return
            with counts_lock:
                counts["fail"] += 1

    if concurrent:
        def worker(tid: int) -> None:
            try:
                for i in range(tid, total, MIX_THREADS):
                    run_item(i)
            except BaseException as exc:  # noqa: BLE001 - surfaced via assert
                failures.append(f"worker {tid}: {exc!r}")

        pool = [
            threading.Thread(target=worker, args=(t,)) for t in range(MIX_THREADS)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
    else:
        for i in range(total):
            run_item(i)

    assert not failures, failures[:5]
    return server.stats, counts


def test_mixed_traffic_stress_invariants():
    """8 threads of mixed delta/full/base-file/degraded traffic over 4+
    classes: exact accounting, correct bytes, savings in line with the
    serialized engine on the same trace."""
    stats, counts = run_mixed_trace("sharded", concurrent=True)
    warm_docs = MIX_SITES * 3

    assert stats.requests == counts["doc"] + warm_docs
    assert (
        stats.deltas_served + stats.full_served + stats.passthrough
        == stats.requests
    )
    # +MIX_SITES: warm-up fetches one base-file per class.
    assert stats.base_files_served == counts["base_ok"] + MIX_SITES
    assert stats.stale_served + stats.origin_unavailable == counts["fail"]
    assert stats.deltas_served > 0 and stats.savings > 0

    reference_stats, reference_counts = run_mixed_trace(
        "serialized", concurrent=False
    )
    assert reference_counts["doc"] == counts["doc"]
    assert reference_stats.requests == stats.requests
    # Interleaving may shift individual policy decisions, but the
    # bandwidth story must not depend on the concurrency model.
    assert abs(stats.savings - reference_stats.savings) <= 0.1
