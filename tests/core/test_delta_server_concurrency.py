"""Regression: one DeltaServer instance hammered from many threads.

The live serve layer (:mod:`repro.serve`) dispatches engine calls onto a
worker pool, so ``DeltaServer.handle`` must tolerate concurrent callers.
The engine serializes them on an internal lock; these tests exist to
catch any future mutation path that escapes it (class-map races, base
adoption mid-read, stats corruption).
"""

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.core.config import AnonymizationConfig, DeltaServerConfig
from repro.core.delta_server import DeltaServer
from repro.delta.apply import apply_delta
from repro.delta.compress import decompress
from repro.http.messages import HEADER_ACCEPT_DELTA, Request
from repro.origin.server import OriginServer
from repro.origin.site import SiteSpec, SyntheticSite
from repro.url.rules import RuleBook

USERS = [f"user{i:02d}" for i in range(16)]


def build_stack():
    site = SyntheticSite(SiteSpec(name="www.c.example", products_per_category=4))
    origin = OriginServer([site])
    rulebook = RuleBook()
    rulebook.add_rule(site.spec.name, site.hint_rule_pattern())
    config = DeltaServerConfig(
        anonymization=AnonymizationConfig(enabled=True, documents=2, min_count=1)
    )
    return site, origin, DeltaServer(origin.handle, config, rulebook)


def req(url: str, user: str, accept: str | None = None) -> Request:
    request = Request(url=url, cookies={"uid": user}, client_id=user)
    if accept:
        request.headers.set(HEADER_ACCEPT_DELTA, accept)
    return request


def test_concurrent_handle_consistent_accounting():
    """N threads x M requests: no exception, exact request accounting."""
    site, _, server = build_stack()
    urls = [site.url_for(page) for page in site.all_pages()[:6]]
    per_thread = 25
    threads = 8
    failures: list[BaseException] = []

    def hammer(worker: int) -> None:
        try:
            for i in range(per_thread):
                url = urls[(worker + i) % len(urls)]
                user = USERS[(worker * 7 + i) % len(USERS)]
                response = server.handle(req(url, user), now=float(i))
                assert response.status == 200
        except BaseException as exc:  # noqa: BLE001 - collected for the assert
            failures.append(exc)

    with ThreadPoolExecutor(max_workers=threads) as pool:
        for worker in range(threads):
            pool.submit(hammer, worker)
    assert not failures, failures
    assert server.stats.requests == threads * per_thread
    assert (
        server.stats.deltas_served
        + server.stats.full_served
        + server.stats.passthrough
        == server.stats.requests
    )


def test_concurrent_deltas_reconstruct_correctly():
    """Concurrent base-holders all get deltas that apply cleanly."""
    site, origin, server = build_stack()
    url = site.url_for(site.all_pages()[0])
    for user in USERS[:4]:  # warm anonymization to READY
        server.handle(req(url, user), now=0.0)
    cls = server.class_of(url)
    assert cls is not None and cls.can_serve_deltas
    ref = f"{cls.class_id}/{cls.version}"
    base = cls.distributable_base
    failures: list[str] = []
    barrier = threading.Barrier(8)

    def fetch(user: str) -> None:
        barrier.wait()
        for i in range(10):
            response = server.handle(req(url, user, accept=ref), now=10.0 + i)
            if not response.is_delta:
                failures.append(f"{user}: expected delta")
                return
            body = apply_delta(decompress(response.body), base)
            expected = origin.handle(req(url, user), now=10.0 + i).body
            if body != expected:
                failures.append(f"{user}: reconstruction mismatch on request {i}")
                return

    with ThreadPoolExecutor(max_workers=8) as pool:
        for user in USERS[:8]:
            pool.submit(fetch, user)
    assert not failures, failures


def test_concurrent_class_formation_single_class():
    """Racing first-requests for the same document must not split the class."""
    site, _, server = build_stack()
    url = site.url_for(site.all_pages()[1])
    barrier = threading.Barrier(8)

    def first(user: str) -> None:
        barrier.wait()
        server.handle(req(url, user), now=0.0)

    with ThreadPoolExecutor(max_workers=8) as pool:
        for user in USERS[:8]:
            pool.submit(first, user)
    cls = server.class_of(url)
    assert cls is not None
    # The URL belongs to exactly one class; racing firsts must not fork it.
    owners = [c for c in server.grouper.classes if url in c.members]
    assert len(owners) == 1
