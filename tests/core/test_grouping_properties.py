"""Property-based tests on grouping invariants (hypothesis).

Three invariants the sharded search must hold under arbitrary workloads:

* a storm of concurrent classifications for one (server, hint) key never
  forks a class — the shard lock's whole job;
* the url → class map and the per-class membership sets stay mutually
  consistent (every mapped URL is a member, every member is mapped, no
  URL belongs to two classes);
* the sketch and scan candidate policies agree on join-vs-create for
  clearly-similar and clearly-dissimilar documents — the LSH index is an
  accelerator, not a behaviour change.
"""

import random
import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base_file import FirstResponsePolicy
from repro.core.classes import DocumentClass
from repro.core.config import AnonymizationConfig, GroupingConfig
from repro.core.grouping import Grouper
from repro.delta.light import LightEstimator
from repro.delta.vdelta import VdeltaEncoder
from repro.url.rules import RuleBook


def make_grouper(config: GroupingConfig | None = None, seed: int = 1) -> Grouper:
    estimator = LightEstimator()
    encoder = VdeltaEncoder()
    counter = iter(range(1, 100_000))

    def factory(server: str, hint: str) -> DocumentClass:
        return DocumentClass(
            class_id=f"c{next(counter)}",
            server=server,
            hint=hint,
            anonymization=AnonymizationConfig(enabled=False),
            policy=FirstResponsePolicy(),
            encoder=encoder,
            estimator=estimator,
        )

    return Grouper(
        config=config or GroupingConfig(),
        rulebook=RuleBook(),
        estimator=estimator,
        class_factory=factory,
        seed=seed,
    )


def family_doc(family: int, item: int) -> bytes:
    """High-entropy pages: one family shares a 3000-byte skeleton, each
    item adds a 200-byte unique tail.  Within a family the light-delta
    ratio is ~0.07 (clear match at the default 0.15 threshold) and the
    shingle Jaccard is ~0.88 (clear LSH recall); across families both are
    clear misses."""
    skeleton = random.Random(family * 10_007 + 13).randbytes(3000)
    tail = random.Random(family * 65_521 + item).randbytes(200)
    return skeleton + tail


def classify(grouper: Grouper, url: str, document: bytes):
    cls, created = grouper.classify(url, document)
    if created:
        with cls.lock:
            cls.adopt_base(document, owner_user=None, now=0.0)
    return cls, created


# -- no class forking under concurrency --------------------------------------


@settings(max_examples=10, deadline=None)
@given(threads=st.integers(2, 8), family=st.integers(0, 999))
def test_same_key_storm_never_forks_a_class(threads, family):
    """Concurrent similar-document requests for one (server, hint) key all
    land in the one existing class."""
    grouper = make_grouper()
    classify(grouper, "www.x.com/cat?id=0", family_doc(family, 0))
    barrier = threading.Barrier(threads)
    results: list = [None] * threads
    errors: list = []

    def worker(i: int) -> None:
        try:
            document = family_doc(family, i + 1)
            barrier.wait()
            results[i] = classify(grouper, f"www.x.com/cat?id={i + 1}", document)[0]
        except Exception as exc:  # pragma: no cover - surfaced via errors
            errors.append(exc)

    workers = [threading.Thread(target=worker, args=(i,)) for i in range(threads)]
    for t in workers:
        t.start()
    for t in workers:
        t.join()
    assert not errors
    assert grouper.class_count() == 1
    assert len({cls.class_id for cls in results}) == 1


@settings(max_examples=10, deadline=None)
@given(threads=st.integers(2, 8), family=st.integers(0, 999))
def test_same_url_storm_counts_every_hit_once(threads, family):
    grouper = make_grouper()
    url = "www.x.com/cat?id=0"
    document = family_doc(family, 0)
    classify(grouper, url, document)
    barrier = threading.Barrier(threads)

    def worker() -> None:
        barrier.wait()
        grouper.classify(url, document)

    workers = [threading.Thread(target=worker) for _ in range(threads)]
    for t in workers:
        t.start()
    for t in workers:
        t.join()
    assert grouper.class_count() == 1
    cls = grouper.class_for_url(url)
    assert cls.members == {url}
    assert cls.stats.hits == threads + 1


# -- url→class map vs memberships ---------------------------------------------


@settings(max_examples=20, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 4), st.booleans()),
        max_size=30,
    )
)
def test_url_map_and_memberships_stay_consistent(ops):
    """After any mixed-family workload (including session-style URLs with
    unique hints), the url→class map and the membership sets agree."""
    grouper = make_grouper()
    for n, (family, item, sessiony) in enumerate(ops):
        if sessiony:
            url = f"www.x.com/sess-{n}/f{family}?item={item}"
        else:
            url = f"www.x.com/f{family}?item={item}"
        classify(grouper, url, family_doc(family, item))

    mapped = dict(grouper._url_to_class)
    classes = grouper.classes
    members_of = {cls.class_id: set(cls.members) for cls in classes}
    # Every mapped URL is a member of exactly the class it maps to.
    for url, class_id in mapped.items():
        assert url in members_of[class_id]
    # Every member everywhere is mapped back to its own class (which also
    # proves membership sets are disjoint).
    for class_id, members in members_of.items():
        for url in members:
            assert mapped[url] == class_id


# -- sketch vs scan parity ----------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(
    families=st.integers(1, 4),
    items=st.integers(1, 4),
    shuffle_seed=st.integers(0, 99),
)
def test_sketch_and_scan_policies_agree(families, items, shuffle_seed):
    """Session-style URLs (unique hint every time) force candidate
    selection on every request; both policies must make identical
    join-vs-create decisions on clearly-similar / clearly-dissimilar
    content."""
    sequence = [(f, i) for f in range(families) for i in range(items)]
    random.Random(shuffle_seed).shuffle(sequence)
    outcomes = {}
    for policy in ("sketch", "scan"):
        grouper = make_grouper(GroupingConfig(policy=policy))
        decisions = []
        for n, (family, item) in enumerate(sequence):
            url = f"www.x.com/sess-{n}/page?f={family}&i={item}"
            cls, created = classify(grouper, url, family_doc(family, item))
            decisions.append((created, cls.class_id))
        outcomes[policy] = (decisions, grouper.class_count())
    assert outcomes["sketch"] == outcomes["scan"]
    assert outcomes["sketch"][1] == families
