"""Tests for the base-file storage budget manager."""

import pytest

from repro.core.base_file import FirstResponsePolicy
from repro.core.classes import DocumentClass
from repro.core.config import (
    AnonymizationConfig,
    DeltaServerConfig,
)
from repro.core.delta_server import DeltaServer
from repro.core.storage import StorageManager, class_storage_bytes
from repro.delta.light import LightEstimator
from repro.delta.vdelta import VdeltaEncoder
from repro.http.messages import Request
from repro.origin.server import OriginServer
from repro.origin.site import SiteSpec, SyntheticSite
from repro.url.rules import RuleBook


def make_class(class_id: str, base: bytes | None, hits: int = 0) -> DocumentClass:
    cls = DocumentClass(
        class_id=class_id,
        server="www.s.com",
        hint="h",
        anonymization=AnonymizationConfig(enabled=False),
        policy=FirstResponsePolicy(),
        encoder=VdeltaEncoder(),
        estimator=LightEstimator(),
    )
    if base is not None:
        cls.adopt_base(base, owner_user=None, now=0.0)
    cls.stats.hits = hits
    return cls


class TestAccounting:
    def test_empty_class_zero_bytes(self):
        assert class_storage_bytes(make_class("c1", None)) == 0

    def test_raw_equals_distributable_counted_once(self):
        # anonymization disabled: distributable IS the raw base
        cls = make_class("c1", b"x" * 1000)
        assert class_storage_bytes(cls) == 1000

    def test_previous_generation_counted(self):
        cls = make_class("c1", b"x" * 1000)
        cls.adopt_base(b"y" * 800, owner_user=None, now=1.0)
        assert class_storage_bytes(cls) == 1800

    def test_total_bytes(self):
        manager = StorageManager()
        classes = [make_class("c1", b"x" * 100), make_class("c2", b"y" * 200)]
        assert manager.total_bytes(classes) == 300


class TestEnforcement:
    def test_no_budget_no_action(self):
        manager = StorageManager()
        classes = [make_class("c1", b"x" * 10_000)]
        assert manager.enforce(classes) == 0

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            StorageManager(budget_bytes=0)

    def test_previous_dropped_before_bases(self):
        manager = StorageManager(budget_bytes=1500)
        cls = make_class("c1", b"x" * 1000, hits=10)
        cls.adopt_base(b"y" * 1000, owner_user=None, now=1.0)  # 2000 total
        reclaimed = manager.enforce([cls])
        assert reclaimed == 1000
        assert manager.stats.previous_drops == 1
        assert manager.stats.base_releases == 0
        assert cls.can_serve_deltas  # current base survived

    def test_coldest_class_released_first(self):
        manager = StorageManager(budget_bytes=1000)
        hot = make_class("hot", b"h" * 900, hits=100)
        cold = make_class("cold", b"c" * 900, hits=1)
        manager.enforce([hot, cold])
        assert cold.raw_base is None
        assert hot.raw_base is not None

    def test_protected_class_never_released(self):
        manager = StorageManager(budget_bytes=100)
        only = make_class("only", b"x" * 900, hits=0)
        manager.enforce([only], protect=only)
        assert only.raw_base is not None


class TestServerIntegration:
    def _stack(self, budget: int):
        site = SyntheticSite(
            SiteSpec(name="www.st.example", products_per_category=3,
                     categories=("laptops", "desktops"))
        )
        origin = OriginServer([site])
        rulebook = RuleBook()
        rulebook.add_rule(site.spec.name, site.hint_rule_pattern())
        config = DeltaServerConfig(
            anonymization=AnonymizationConfig(enabled=False),
            storage_budget_bytes=budget,
        )
        return site, origin, DeltaServer(origin.handle, config, rulebook)

    def test_budget_respected_and_service_continues(self):
        # budget fits roughly 2 base-files; the site has 6 pages
        site, origin, server = self._stack(budget=80_000)
        for pid, page in enumerate(site.all_pages()):
            url = site.url_for(page)
            for user in ("u1", "u2"):
                response = server.handle(
                    Request(url=url, cookies={"uid": user}), now=float(pid)
                )
                assert response.status == 200
        total = server.storage.total_bytes(server.grouper.classes)
        assert total <= 80_000
        assert server.storage.stats.base_releases > 0

    def test_released_class_readopts_on_next_request(self):
        site, origin, server = self._stack(budget=40_000)  # fits ~1 base
        urls = [site.url_for(p) for p in site.all_pages()[:3]]
        for i, url in enumerate(urls):
            server.handle(Request(url=url, cookies={"uid": "u1"}), now=float(i))
        # revisit the first URL: its class was released, must re-adopt
        response = server.handle(
            Request(url=urls[0], cookies={"uid": "u1"}), now=10.0
        )
        assert response.status == 200
        cls = server.class_of(urls[0])
        assert cls.raw_base is not None


class TestHistoryBudget:
    """Stage-0: on-disk history eviction, the live/history split, compaction."""

    def _store_with_history(self, tmp_path, classes):
        from repro.store import PersistentStoreHooks, Store

        store = Store.open(tmp_path / "state", snapshot_every=4)
        for cls in classes:
            store.add_class(cls.class_id, cls.server, cls.hint)
            for v in range(1, 6):
                store.commit_base(
                    cls.class_id, v, b"v" * 400 + str(v).encode() * 40
                )
        return store, PersistentStoreHooks(store)

    def test_usage_reports_live_history_split(self, tmp_path):
        cls = make_class("c1", b"x" * 1000)
        store, hooks = self._store_with_history(tmp_path, [cls])
        manager = StorageManager(store_hooks=hooks)
        live, history = manager.usage([cls])
        assert live == 1000
        assert history == store.live_pack_bytes > 0
        assert manager.stats.live_bytes == 1000
        assert manager.stats.history_bytes == history
        assert manager.stats.used_bytes == live + history
        store.close()

    def test_history_evicted_before_bases_released(self, tmp_path):
        hot = make_class("hot", b"h" * 1000, hits=100)
        cold = make_class("cold", b"c" * 1000, hits=1)
        store, hooks = self._store_with_history(tmp_path, [hot, cold])
        history = store.live_pack_bytes
        # Budget covers both live bases, but not the full history: stage 0
        # must reclaim history without touching any in-memory base.
        budget = 2000 + history // 2
        manager = StorageManager(budget, store_hooks=hooks)
        reclaimed = manager.enforce([hot, cold])
        assert reclaimed > 0
        assert manager.stats.history_evictions > 0
        assert manager.stats.base_releases == 0
        assert hot.raw_base is not None and cold.raw_base is not None
        # Coldest class's history went first; its latest version survives.
        assert set(store.class_state("cold").entries) == {5}
        store.close()

    def test_release_is_journaled_to_the_store(self, tmp_path):
        from repro.store import Store

        hot = make_class("hot", b"h" * 1000, hits=100)
        cold = make_class("cold", b"c" * 1000, hits=1)
        store, hooks = self._store_with_history(tmp_path, [hot, cold])
        manager = StorageManager(1000, store_hooks=hooks)
        manager.enforce([hot, cold], protect=hot)
        assert manager.stats.base_releases > 0
        assert cold.raw_base is None
        assert store.class_state("cold").latest is None
        store.close()
        # A restart cannot resurrect the released payloads.
        reopened = Store.open(tmp_path / "state")
        assert reopened.class_state("cold").latest is None
        reopened.close()

    def test_compaction_triggered_by_garbage_ratio(self, tmp_path):
        cold = make_class("cold", b"c" * 1000, hits=1)
        store, hooks = self._store_with_history(tmp_path, [cold])
        pack_before = store.pack_bytes
        manager = StorageManager(
            1100, store_hooks=hooks, compact_garbage_ratio=0.3
        )
        manager.enforce([cold])
        assert manager.stats.compactions == 1
        assert store.snapshot()["generation"] == 2
        assert store.pack_bytes < pack_before
        store.close()

    def test_without_store_behaves_as_before(self):
        manager = StorageManager(budget_bytes=1500)
        live, history = manager.usage([make_class("c1", b"x" * 1000)])
        assert (live, history) == (1000, 0)
