"""Tests for rebase policies (group-rebase and basic-rebase)."""

import random

from repro.core.base_file import FirstResponsePolicy, RandomizedPolicy
from repro.core.config import BaseFileConfig
from repro.core.rebase import RebaseController


def toy_delta(base: bytes, target: bytes) -> int:
    return abs(len(base) - len(target)) + sum(
        1 for a, b in zip(base, target) if a != b
    )


def make_controller(**kwargs) -> tuple[RebaseController, BaseFileConfig]:
    config = BaseFileConfig(**kwargs)
    return RebaseController(config), config


class TestBasicRebase:
    def test_no_incumbent_triggers_basic(self):
        controller, _ = make_controller()
        decision = controller.check(
            FirstResponsePolicy(), None, b"current doc", 0.0, 0.0
        )
        assert decision is not None
        assert decision.kind == "basic"
        assert decision.new_base == b"current doc"

    def test_bad_delta_ratio_triggers_basic(self):
        controller, _ = make_controller(basic_rebase_ratio=0.5)
        for _ in range(10):
            controller.note_delta(900, 1000)  # deltas ~ document size
        decision = controller.check(
            FirstResponsePolicy(), b"old base", b"current", 0.0, 0.0
        )
        assert decision is not None
        assert decision.kind == "basic"

    def test_good_deltas_no_basic_rebase(self):
        controller, _ = make_controller(basic_rebase_ratio=0.5, rebase_timeout=1e9)
        for _ in range(10):
            controller.note_delta(20, 1000)
        assert (
            controller.check(FirstResponsePolicy(), b"base", b"cur", 0.0, 0.0) is None
        )

    def test_ewma_recovers_after_reset(self):
        controller, _ = make_controller()
        controller.note_delta(900, 1000)
        assert controller.smoothed_ratio > 0.5
        controller.reset()
        assert controller.smoothed_ratio is None

    def test_ewma_smoothing(self):
        controller, _ = make_controller(ratio_smoothing=0.5)
        controller.note_delta(1000, 1000)  # 1.0
        controller.note_delta(0, 1000)  # pulls halfway down... delta 0 allowed
        assert controller.smoothed_ratio == 0.5


class TestGroupRebase:
    def test_timeout_gates_group_rebase(self):
        controller, config = make_controller(rebase_timeout=100.0)
        policy = FirstResponsePolicy()
        policy.observe(b"better base")
        # incumbent differs from the policy's favorite, but too soon
        early = controller.check(policy, b"incumbent", b"cur", 50.0, 0.0)
        assert early is None
        late = controller.check(policy, b"incumbent", b"cur", 150.0, 0.0)
        assert late is not None
        assert late.kind == "group"
        assert late.new_base == b"better base"

    def test_no_rebase_when_policy_agrees(self):
        controller, _ = make_controller(rebase_timeout=0.0)
        policy = FirstResponsePolicy()
        policy.observe(b"base")
        assert controller.check(policy, b"base", b"cur", 100.0, 0.0) is None

    def test_no_rebase_when_policy_empty(self):
        controller, _ = make_controller(rebase_timeout=0.0)
        assert (
            controller.check(FirstResponsePolicy(), b"base", b"cur", 100.0, 0.0)
            is None
        )

    def test_improvement_hysteresis_blocks_marginal_swap(self):
        config = BaseFileConfig(
            sample_probability=1.0,
            capacity=4,
            rebase_timeout=0.0,
            improvement_factor=2.0,  # challenger must be 2x better
        )
        controller = RebaseController(config)
        policy = RandomizedPolicy(config, toy_delta, random.Random(1))
        # spread-out candidates: the incumbent is only marginally worse
        # than the policy's favorite (mean 3 vs mean 2 — below the 2x bar)
        for size in (100, 102, 104):
            policy.observe(bytes([65]) * size)
        incumbent = bytes([65]) * 105
        decision = controller.check(policy, incumbent, b"cur", 1000.0, 0.0)
        assert decision is None

    def test_clear_improvement_passes_hysteresis(self):
        config = BaseFileConfig(
            sample_probability=1.0,
            capacity=4,
            rebase_timeout=0.0,
            improvement_factor=1.5,
        )
        controller = RebaseController(config)
        policy = RandomizedPolicy(config, toy_delta, random.Random(1))
        for size in (100, 101, 102):
            policy.observe(bytes([65]) * size)
        incumbent = bytes([65]) * 400  # terrible incumbent
        decision = controller.check(policy, incumbent, b"cur", 1000.0, 0.0)
        assert decision is not None
        assert decision.kind == "group"
