"""Unit tests for MinHash signatures and the LSH banding index."""

import random

import pytest

from repro.core.sketch import MinHashSketcher, SketchIndex, signature_similarity


def page(seed: int, size: int = 3000) -> bytes:
    rng = random.Random(seed)
    return bytes(rng.randrange(256) for _ in range(size))


class TestSignatures:
    def test_deterministic_and_full_width(self):
        sketcher = MinHashSketcher()
        doc = page(1)
        sig = sketcher.signature(doc)
        assert sig == sketcher.signature(doc)
        assert len(sig) == sketcher.num_perm
        assert all(isinstance(slot, int) and 0 <= slot < 1 << 32 for slot in sig)

    def test_stable_across_instances(self):
        # Signatures are persisted; a fresh process (fresh sketcher) must
        # compute identical signatures and band keys for the same bytes.
        a, b = MinHashSketcher(), MinHashSketcher()
        doc = page(2)
        assert a.signature(doc) == b.signature(doc)
        assert a.band_keys(a.signature(doc)) == b.band_keys(b.signature(doc))

    def test_similar_documents_agree_dissimilar_do_not(self):
        sketcher = MinHashSketcher()
        base = page(3, 4000)
        similar = base[:3800] + page(4, 200)  # ~95% shared bytes
        unrelated = page(5, 4000)
        close = signature_similarity(sketcher.signature(base), sketcher.signature(similar))
        far = signature_similarity(sketcher.signature(base), sketcher.signature(unrelated))
        assert close > 0.6
        assert far < 0.3
        assert close > far

    def test_identical_documents_have_similarity_one(self):
        sketcher = MinHashSketcher()
        sig = sketcher.signature(page(6))
        assert signature_similarity(sig, sig) == 1.0

    def test_short_and_empty_documents(self):
        sketcher = MinHashSketcher(shingle_size=16)
        assert sketcher.signature(b"") == (0,) * sketcher.num_perm
        short = sketcher.signature(b"tiny")  # shorter than one shingle
        assert len(short) == sketcher.num_perm
        # Densification filled every slot with a real hash value.
        assert all(slot < 1 << 32 for slot in short)
        assert short == sketcher.signature(b"tiny")

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            MinHashSketcher(shingle_size=0)
        with pytest.raises(ValueError):
            MinHashSketcher(shingle_step=0)
        with pytest.raises(ValueError):
            MinHashSketcher(bands=0)
        with pytest.raises(ValueError):
            MinHashSketcher(rows=0)


class TestSketchIndex:
    def make(self):
        sketcher = MinHashSketcher()
        return sketcher, SketchIndex(sketcher)

    def test_near_duplicate_is_recalled(self):
        sketcher, index = self.make()
        base = page(10, 4000)
        index.register("cls1", sketcher.signature(base))
        probe = base[:3800] + page(11, 200)
        assert "cls1" in index.candidates(sketcher.signature(probe))

    def test_unrelated_content_usually_misses(self):
        sketcher, index = self.make()
        for i in range(20):
            index.register(f"cls{i}", sketcher.signature(page(100 + i, 3000)))
        hits = sum(
            1
            for j in range(20)
            if index.candidates(sketcher.signature(page(500 + j, 3000)))
        )
        # Random content against random bases: collisions are rare (each
        # false positive costs only one light estimate anyway).
        assert hits <= 4

    def test_candidates_ordered_by_matching_bands(self):
        sketcher, index = self.make()
        base = page(20, 4000)
        index.register("near", sketcher.signature(base[:3900] + page(21, 100)))
        index.register("far", sketcher.signature(base[:2200] + page(22, 1800)))
        got = index.candidates(sketcher.signature(base))
        if got == ["near", "far"]:
            return  # both collided: best-first ordering held
        assert got and got[0] == "near"

    def test_reregister_moves_buckets(self):
        sketcher, index = self.make()
        old_base, new_base = page(30, 3000), page(31, 3000)
        index.register("cls1", sketcher.signature(old_base))
        index.register("cls1", sketcher.signature(new_base))
        assert "cls1" in index.candidates(sketcher.signature(new_base))
        assert "cls1" not in index.candidates(sketcher.signature(old_base))
        assert len(index) == 1

    def test_unregister(self):
        sketcher, index = self.make()
        sig = sketcher.signature(page(40))
        index.register("cls1", sig)
        index.unregister("cls1")
        assert index.candidates(sig) == []
        assert len(index) == 0
        assert index.bucket_count() == 0
        index.unregister("cls1")  # idempotent

    def test_register_is_idempotent(self):
        sketcher, index = self.make()
        sig = sketcher.signature(page(41))
        index.register("cls1", sig)
        buckets = index.bucket_count()
        index.register("cls1", sig)
        assert index.bucket_count() == buckets
        assert index.candidates(sig) == ["cls1"]
