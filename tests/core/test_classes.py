"""Tests for DocumentClass base-file lifecycle and versioning."""

from repro.core.base_file import FirstResponsePolicy
from repro.core.classes import DocumentClass
from repro.core.config import AnonymizationConfig
from repro.delta.light import LightEstimator
from repro.delta.vdelta import VdeltaEncoder

import pytest


def page(user: str) -> bytes:
    return (b"<body>" + b"<p>common block</p>" * 80
            + f"<div>private-{user}-token</div>".encode() + b"</body>")


def make_class(anon_documents=2, anon_enabled=True) -> DocumentClass:
    return DocumentClass(
        class_id="cls1",
        server="www.a.com",
        hint="laptops",
        anonymization=AnonymizationConfig(
            enabled=anon_enabled, documents=anon_documents, min_count=1
        ),
        policy=FirstResponsePolicy(),
        encoder=VdeltaEncoder(),
        estimator=LightEstimator(),
    )


class TestBaseLifecycle:
    def test_new_class_cannot_serve_deltas(self):
        cls = make_class()
        assert not cls.can_serve_deltas
        assert cls.version == 0

    def test_anonymization_disabled_promotes_immediately(self):
        cls = make_class(anon_enabled=False)
        cls.adopt_base(page("owner"), owner_user="owner", now=0.0)
        assert cls.can_serve_deltas
        assert cls.version == 1
        assert cls.distributable_base == page("owner")

    def test_promotion_after_n_users(self):
        cls = make_class(anon_documents=2)
        cls.adopt_base(page("owner"), owner_user="owner", now=0.0)
        assert cls.anonymization_pending
        cls.feed(page("u1"), "u1")
        assert not cls.can_serve_deltas
        cls.feed(page("u2"), "u2")
        assert cls.can_serve_deltas
        assert cls.version == 1
        assert b"private-owner-token" not in cls.distributable_base

    def test_rebase_keeps_previous_distributable(self):
        cls = make_class(anon_documents=2)
        cls.adopt_base(page("owner"), owner_user="owner", now=0.0)
        cls.feed(page("u1"), "u1")
        cls.feed(page("u2"), "u2")
        first_base = cls.distributable_base
        # Rebase: previous base keeps serving during re-anonymization.
        cls.adopt_base(page("newowner"), owner_user="newowner", now=10.0)
        assert cls.distributable_base == first_base
        assert cls.version == 1
        cls.feed(page("u3"), "u3")
        cls.feed(page("u4"), "u4")
        assert cls.version == 2
        assert cls.previous_version == 1
        assert cls.base_for_version(1) == first_base
        assert cls.base_for_version(2) == cls.distributable_base
        assert cls.base_for_version(99) is None

    def test_full_index_for_versions(self):
        cls = make_class(anon_documents=1)
        cls.adopt_base(page("owner"), owner_user="owner", now=0.0)
        cls.feed(page("u1"), "u1")
        assert cls.full_index_for(1) is not None
        assert cls.full_index_for(5) is None
        cls.adopt_base(page("o2"), owner_user="o2", now=1.0)
        cls.feed(page("u2"), "u2")
        assert cls.full_index_for(2) is not None
        assert cls.full_index_for(1) is not None  # previous generation

    def test_full_index_requires_base(self):
        cls = make_class()
        with pytest.raises(RuntimeError):
            cls.full_index()

    def test_light_index_uses_raw_base_before_promotion(self):
        cls = make_class(anon_documents=2)
        assert cls.light_index() is None
        cls.adopt_base(page("owner"), owner_user="owner", now=0.0)
        index = cls.light_index()
        assert index is not None
        assert index.base == page("owner")


class TestMembership:
    def test_members_and_popularity(self):
        cls = make_class()
        cls.add_member("www.a.com/laptops?id=1")
        cls.add_member("www.a.com/laptops?id=2")
        assert len(cls.members) == 2
        cls.stats.hits += 3
        assert cls.popularity == 3

    def test_key(self):
        assert make_class().key == ("www.a.com", "laptops")


class TestExactMatchIndex:
    def test_raw_base_index_cached_by_identity(self):
        cls = make_class()
        assert cls.exact_match_index() is None  # no base at all yet
        cls.adopt_base(page("owner"), owner_user="owner", now=0.0)
        assert not cls.can_serve_deltas  # anonymization still pending
        first = cls.exact_match_index()
        assert first is not None and first.base == page("owner")
        # Repeated probes reuse the cached index instead of rebuilding.
        assert cls.exact_match_index() is first
        # A new raw base invalidates the cache by identity.
        cls.adopt_base(page("other"), owner_user="other", now=1.0)
        second = cls.exact_match_index()
        assert second is not first and second.base == page("other")

    def test_distributable_base_reuses_full_index(self):
        cls = make_class(anon_enabled=False)
        cls.adopt_base(page("owner"), owner_user="owner", now=0.0)
        assert cls.can_serve_deltas
        assert cls.exact_match_index() is cls.full_index()

    def test_release_base_drops_cached_index(self):
        cls = make_class()
        cls.adopt_base(page("owner"), owner_user="owner", now=0.0)
        assert cls.exact_match_index() is not None
        cls.release_base()
        assert cls.exact_match_index() is None
