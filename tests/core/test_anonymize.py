"""Tests for base-file anonymization (paper Section V)."""

import pytest

from repro.core.anonymize import AnonymizationState, Anonymizer
from repro.core.config import AnonymizationConfig
from repro.origin.private import card_number_for, find_card_numbers


def page(user: str, with_card: bool = True, shared_tail: bytes = b"") -> bytes:
    """A toy personalized page: big shared body + per-user private box."""
    shared = (b"<html><body>" + b"<p>shared catalog content</p>" * 60) + shared_tail
    private = b""
    if with_card:
        private = (
            b"<div class='account'>Card: "
            + card_number_for(user).encode()
            + b" user "
            + user.encode()
            + b"</div>"
        )
    return shared + private + b"</body></html>"


def make(config=None, owner="owner", **kwargs) -> Anonymizer:
    cfg = config or AnonymizationConfig(enabled=True, documents=3, min_count=1)
    return Anonymizer(page(owner), cfg, owner_user=owner, **kwargs)


class TestLifecycle:
    def test_starts_collecting(self):
        anon = make()
        assert anon.state is AnonymizationState.COLLECTING
        assert anon.anonymized is None
        assert anon.users_needed == 3

    def test_disabled_passes_base_through(self):
        cfg = AnonymizationConfig(enabled=False)
        anon = Anonymizer(page("owner"), cfg, owner_user="owner")
        assert anon.state is AnonymizationState.DISABLED
        assert anon.anonymized == page("owner")

    def test_ready_after_n_distinct_users(self):
        anon = make()
        for user in ("u1", "u2", "u3"):
            assert anon.observe(page(user), user)
        assert anon.state is AnonymizationState.READY
        assert anon.anonymized is not None

    def test_owner_documents_not_counted(self):
        anon = make(owner="owner")
        assert not anon.observe(page("owner"), "owner")
        assert anon.users_needed == 3

    def test_duplicate_users_not_counted(self):
        anon = make()
        assert anon.observe(page("u1"), "u1")
        assert not anon.observe(page("u1"), "u1")
        assert anon.users_needed == 2

    def test_anonymous_requests_not_counted(self):
        anon = make()
        assert not anon.observe(page("u1"), None)
        assert anon.users_needed == 3

    def test_observations_after_ready_ignored(self):
        anon = make()
        for user in ("u1", "u2", "u3"):
            anon.observe(page(user), user)
        assert not anon.observe(page("u4"), "u4")


class TestPrivacyRemoval:
    def test_owner_card_removed(self):
        anon = make()
        owner_card = card_number_for("owner").encode()
        assert owner_card in page("owner")
        for user in ("u1", "u2", "u3"):
            anon.observe(page(user), user)
        assert owner_card not in anon.anonymized
        assert not find_card_numbers(anon.anonymized)

    def test_shared_content_preserved(self):
        anon = make()
        for user in ("u1", "u2", "u3"):
            anon.observe(page(user), user)
        assert b"shared catalog content" in anon.anonymized
        # Most of the base should survive: privacy at minimal cost.
        assert anon.kept_fraction() > 0.8

    def test_m_equals_n_keeps_only_universal_chunks(self):
        cfg = AnonymizationConfig(enabled=True, documents=3, min_count=3)
        anon = Anonymizer(page("owner"), cfg, owner_user="owner")
        # One comparison document lacks a chunk the others have.
        anon.observe(page("u1", shared_tail=b"<p>extra section</p>" * 20), "u1")
        anon.observe(page("u2"), "u2")
        anon.observe(page("u3"), "u3")
        assert anon.state is AnonymizationState.READY
        assert b"shared catalog content" in anon.anonymized
        assert not find_card_numbers(anon.anonymized)

    def test_higher_m_smaller_base(self):
        def run(m, n):
            cfg = AnonymizationConfig(enabled=True, documents=n, min_count=m)
            anon = Anonymizer(page("owner"), cfg, owner_user="owner")
            users = [f"u{i}" for i in range(n)]
            for i, user in enumerate(users):
                # give each user's page some idiosyncratic content
                tail = (f"<p>extra {user}</p>" * (i + 1)).encode()
                anon.observe(page(user, shared_tail=tail), user)
            return len(anon.anonymized)

        assert run(4, 4) <= run(1, 4)

    def test_shared_corporate_card_survives_m1_removed_m2(self):
        """The paper's corporate-card scenario: data shared by 2 users leaks
        through M=1 anonymization but not through M=2."""
        corp = b"4444-5555-6666-7777"

        def corp_page(user):
            return page(user, with_card=False) + b"<div>Corp card: " + corp + b"</div>"

        for m, expect_leak in ((1, True), (3, False)):
            cfg = AnonymizationConfig(enabled=True, documents=4, min_count=m)
            anon = Anonymizer(corp_page("owner"), cfg, owner_user="owner")
            anon.observe(corp_page("u1"), "u1")  # second card holder
            anon.observe(page("u2", with_card=False), "u2")
            anon.observe(page("u3", with_card=False), "u3")
            anon.observe(page("u4", with_card=False), "u4")
            assert anon.state is AnonymizationState.READY
            leaked = corp in anon.anonymized
            assert leaked == expect_leak, f"M={m}"


class TestChunkCounts:
    def test_counts_bounded_by_users(self):
        anon = make()
        for user in ("u1", "u2", "u3"):
            anon.observe(page(user), user)
        counts = anon.chunk_counts()
        assert len(counts) == len(page("owner"))
        assert all(0 <= c <= 3 for c in counts)

    def test_empty_base(self):
        cfg = AnonymizationConfig(enabled=True, documents=1, min_count=1)
        anon = Anonymizer(b"", cfg)
        anon.observe(page("u1"), "u1")
        assert anon.state is AnonymizationState.READY
        assert anon.anonymized == b""

    def test_kept_fraction_before_ready_is_one(self):
        assert make().kept_fraction() == 1.0


class TestConfigValidation:
    def test_min_count_above_documents_rejected(self):
        with pytest.raises(ValueError):
            AnonymizationConfig(enabled=True, documents=3, min_count=4)

    def test_zero_documents_rejected(self):
        with pytest.raises(ValueError):
            AnonymizationConfig(enabled=True, documents=0, min_count=0)

    def test_disabled_skips_validation(self):
        AnonymizationConfig(enabled=False, documents=0, min_count=0)
