"""Property-based tests on core invariants (hypothesis)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.anonymize import AnonymizationState, Anonymizer
from repro.core.base_file import RandomizedPolicy, offline_best
from repro.core.config import AnonymizationConfig, BaseFileConfig
from repro.delta import apply_delta, delta_size, make_delta


# -- anonymizer ---------------------------------------------------------------

docs = st.lists(
    st.binary(min_size=30, max_size=300), min_size=1, max_size=6
)


@settings(max_examples=40, deadline=None)
@given(base=st.binary(min_size=10, max_size=400), others=docs)
def test_anonymized_base_is_subsequence(base, others):
    """Anonymization only DELETES bytes — the anonymized base is always a
    subsequence of the original, never new content."""
    config = AnonymizationConfig(enabled=True, documents=len(others), min_count=1)
    anonymizer = Anonymizer(base, config)
    for i, doc in enumerate(others):
        anonymizer.observe(doc, f"u{i}")
    assert anonymizer.state is AnonymizationState.READY
    anonymized = anonymizer.anonymized
    # subsequence check
    it = iter(base)
    assert all(byte in it for byte in anonymized)


@settings(max_examples=40, deadline=None)
@given(base=st.binary(min_size=10, max_size=400), others=docs)
def test_higher_min_count_never_keeps_more(base, others):
    """Raising M is monotone: stricter thresholds keep fewer bytes."""
    n = len(others)
    sizes = []
    for m in range(1, n + 1):
        config = AnonymizationConfig(enabled=True, documents=n, min_count=m)
        anonymizer = Anonymizer(base, config)
        for i, doc in enumerate(others):
            anonymizer.observe(doc, f"u{i}")
        sizes.append(len(anonymizer.anonymized))
    assert sizes == sorted(sizes, reverse=True)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    length=st.integers(50, 300),
    n=st.integers(1, 4),
)
def test_identical_documents_keep_everything(seed, length, n):
    """If every comparison document IS the base, nothing is dropped.

    Holds for high-entropy bases, where the differ's greedy matcher finds
    the identity copy.  (Highly self-repetitive bases legitimately get
    fragmented coverage — the matcher may satisfy itself from a different
    offset — which only ever makes anonymization MORE aggressive, i.e.
    conservative for privacy.)
    """
    base = random.Random(seed).randbytes(length)
    config = AnonymizationConfig(enabled=True, documents=n, min_count=n)
    anonymizer = Anonymizer(base, config)
    for i in range(n):
        anonymizer.observe(base, f"u{i}")
    assert anonymizer.anonymized == base


@settings(max_examples=40, deadline=None)
@given(base=st.binary(min_size=10, max_size=200), others=docs)
def test_chunk_counts_bounded(base, others):
    config = AnonymizationConfig(enabled=True, documents=len(others), min_count=1)
    anonymizer = Anonymizer(base, config)
    for i, doc in enumerate(others):
        anonymizer.observe(doc, f"u{i}")
    counts = anonymizer.chunk_counts()
    assert len(counts) == len(base)
    assert all(0 <= c <= len(others) for c in counts)


# -- delta substrate ----------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    base=st.binary(min_size=0, max_size=500),
    target=st.binary(min_size=0, max_size=500),
)
def test_wire_roundtrip_property(base, target):
    """Serialize -> apply reproduces the target for arbitrary inputs."""
    assert apply_delta(make_delta(base, target), base) == target


@settings(max_examples=40, deadline=None)
@given(doc=st.binary(min_size=1, max_size=500))
def test_self_delta_is_tiny(doc):
    """delta(x, x) is bounded by a small constant (header + one copy)."""
    assert delta_size(doc, doc) <= 32


# -- base-file policies ---------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    lengths=st.lists(st.integers(10, 200), min_size=3, max_size=15),
    seed=st.integers(0, 999),
)
def test_randomized_policy_invariants(lengths, seed):
    """Store never exceeds K; current() is always a stored document."""

    def toy(a: bytes, b: bytes) -> int:
        return abs(len(a) - len(b))

    config = BaseFileConfig(sample_probability=1.0, capacity=4)
    policy = RandomizedPolicy(config, toy, random.Random(seed))
    for length in lengths:
        policy.observe(bytes(length))
        assert len(policy.stored_documents) <= 4
        current = policy.current()
        assert current in policy.stored_documents


@settings(max_examples=25, deadline=None)
@given(lengths=st.lists(st.integers(10, 100), min_size=1, max_size=10))
def test_offline_best_is_minimal(lengths):
    """offline_best really minimizes the total toy-delta."""

    def toy(a: bytes, b: bytes) -> int:
        return abs(len(a) - len(b))

    documents = [bytes(length) for length in lengths]
    _, best = offline_best(documents, toy)

    def total(base: bytes) -> int:
        return sum(toy(base, d) for d in documents if d is not base)

    assert total(best) == min(total(d) for d in documents)
