"""Snapshot-encode-commit: the sharded engine's delta-generation protocol.

The engine snapshots ``(version, BaseIndex)`` under the class lock, runs
the encode and compress outside every lock, and revalidates the version
at commit.  These tests simulate the race window deterministically: a
patched encoder mutates the class mid-encode (exactly what a concurrent
rebase or storage release would do), and the commit must detect it —
retrying against the fresh state or falling back to a full response, but
never serving a delta against a retired base version.
"""

import pytest

from repro.core.config import AnonymizationConfig, DeltaServerConfig
from repro.delta.apply import apply_delta
from repro.delta.compress import decompress
from repro.http.messages import (
    HEADER_ACCEPT_DELTA,
    HEADER_DELTA,
    HEADER_DELTA_BASE,
    Request,
)
from repro.core.delta_server import DeltaServer
from repro.origin.server import OriginServer
from repro.origin.site import SiteSpec, SyntheticSite
from repro.url.rules import RuleBook

URL = "www.commit.example/page"


def doc(tag: str) -> bytes:
    return (
        b"<body>" + b"<p>shared block</p>" * 60 + f"<i>{tag}</i>".encode() + b"</body>"
    )


def make_engine(commit_retries: int = 1) -> DeltaServer:
    documents: dict[str, bytes] = {"current": doc("v0")}

    def fetch(request: Request, now: float):
        from repro.http.messages import Response

        return Response(status=200, body=documents["current"])

    config = DeltaServerConfig(
        anonymization=AnonymizationConfig(enabled=True, documents=2, min_count=1),
        commit_retries=commit_retries,
    )
    engine = DeltaServer(fetch, config)
    engine._bench_documents = documents  # handle for tests to swap renders
    return engine


def req(user: str, accept: str | None = None) -> Request:
    request = Request(url=URL, cookies={"uid": user})
    if accept:
        request.headers.set(HEADER_ACCEPT_DELTA, accept)
    return request


def warm(engine: DeltaServer):
    """Form the class and drive anonymization to a distributable base."""
    for user in ("u0", "u1", "u2"):
        engine.handle(req(user), now=0.0)
    cls = engine.class_of(URL)
    assert cls is not None and cls.can_serve_deltas
    return cls


def promote_new_generation(cls, body: bytes) -> None:
    """What a winning concurrent rebase does: adopt + promote a new base."""
    with cls.lock:
        cls.adopt_base(body, owner_user="rebase", now=100.0)
        cls.feed(doc("feed-a"), "fa")
        cls.feed(doc("feed-b"), "fb")
        assert cls.can_serve_deltas


class _RacingEncoder:
    """Proxy the engine's encoder, firing a mutation mid-encode, once.

    Installed as ``engine._encoder`` *after* warm-up, so it intercepts
    exactly the off-lock encode of the snapshot-encode-commit path (the
    classes keep their own reference to the real encoder).
    """

    def __init__(self, engine: DeltaServer, mutate) -> None:
        self._inner = engine._encoder
        self._mutate = mutate
        self.fired = 0
        engine._encoder = self

    def encode_stream_with_index(self, index, target, write, *args, **kwargs):
        if self.fired == 0:
            self.fired += 1
            self._mutate()
        return self._inner.encode_stream_with_index(
            index, target, write, *args, **kwargs
        )

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestCommitConflict:
    def test_rebase_during_encode_retries_against_previous(self):
        """A rebase mid-encode: the retry serves the client a delta against
        the (still-stored) old version, plus the upgrade advertisement."""
        engine = make_engine()
        cls = warm(engine)
        old_version = cls.version
        old_base = cls.distributable_base
        old_ref = f"{cls.class_id}/{old_version}"

        race = _RacingEncoder(
            engine, lambda: promote_new_generation(cls, doc("rebased"))
        )

        target = doc("v1")
        engine._bench_documents["current"] = target
        response = engine.handle(req("client", accept=old_ref), now=1.0)

        assert race.fired == 1
        assert engine.stats.commit_conflicts == 1
        assert engine.stats.commit_fallbacks == 0
        # The retry re-planned: the old version is now the class's previous
        # generation, still servable, so the client gets its delta...
        assert response.headers.get(HEADER_DELTA) == old_ref
        assert apply_delta(decompress(response.body), old_base) == target
        # ...plus the pointer at the new base so it upgrades.
        assert (
            response.headers.get(HEADER_DELTA_BASE)
            == f"{cls.class_id}/{cls.version}"
        )
        assert cls.version == old_version + 1

    def test_release_during_encode_falls_back_to_full(self):
        """A storage release mid-encode retires every base version: the
        commit must abandon the delta and serve the full document."""
        engine = make_engine()
        cls = warm(engine)
        old_ref = f"{cls.class_id}/{cls.version}"

        def release() -> None:
            with cls.lock:
                cls.release_base()

        race = _RacingEncoder(engine, release)

        target = doc("v1")
        engine._bench_documents["current"] = target
        response = engine.handle(req("client", accept=old_ref), now=1.0)

        assert race.fired == 1
        # Never a delta against a retired version — full document instead,
        # with no base advertisement (the class has nothing to offer).
        assert HEADER_DELTA not in response.headers
        assert response.body == target
        assert HEADER_DELTA_BASE not in response.headers
        assert engine.stats.commit_conflicts == 1
        assert engine.stats.commit_fallbacks == 1

    def test_retries_exhausted_falls_back_to_full(self):
        """With commit_retries=0 a single conflict already means a full."""
        engine = make_engine(commit_retries=0)
        cls = warm(engine)
        old_ref = f"{cls.class_id}/{cls.version}"

        race = _RacingEncoder(
            engine, lambda: promote_new_generation(cls, doc("rebased"))
        )

        target = doc("v1")
        engine._bench_documents["current"] = target
        response = engine.handle(req("client", accept=old_ref), now=1.0)

        assert HEADER_DELTA not in response.headers
        assert response.body == target
        assert engine.stats.commit_conflicts == 1
        assert engine.stats.commit_fallbacks == 1
        # The fallback still advertises the (new) current base.
        assert (
            response.headers.get(HEADER_DELTA_BASE)
            == f"{cls.class_id}/{cls.version}"
        )


class TestUrlMap:
    def test_class_of_uses_url_map(self):
        engine = make_engine()
        assert engine.class_of(URL) is None
        cls = warm(engine)
        assert engine.class_of(URL) is cls
        assert engine.grouper.class_for_url(URL) is cls
        assert engine.class_of("www.commit.example/other-page") is None


class TestSerializedParity:
    def test_modes_produce_identical_bytes_single_threaded(self):
        """Same trace, single thread: serialized and sharded engines must
        emit byte-identical responses (delta payloads included)."""
        site = SyntheticSite(SiteSpec(name="www.par.example", products_per_category=3))
        urls = [site.url_for(page) for page in site.all_pages()[:5]]
        rulebook = RuleBook()
        rulebook.add_rule(site.spec.name, site.hint_rule_pattern())

        def run(mode: str):
            origin = OriginServer(
                [SyntheticSite(SiteSpec(name="www.par.example", products_per_category=3))]
            )
            config = DeltaServerConfig(
                anonymization=AnonymizationConfig(enabled=True, documents=2, min_count=1),
                engine_mode=mode,
            )
            engine = DeltaServer(origin.handle, config, rulebook)
            refs: dict[str, str] = {}
            out = []
            for i in range(60):
                url = urls[i % len(urls)]
                request = Request(url=url, cookies={"uid": f"u{i % 5}"})
                if url in refs:
                    request.headers.set(HEADER_ACCEPT_DELTA, refs[url])
                response = engine.handle(request, now=float(i))
                ref = response.base_file_ref
                if ref is not None:
                    refs[url] = ref
                out.append(
                    (
                        response.status,
                        response.body,
                        response.headers.get(HEADER_DELTA),
                        response.headers.get(HEADER_DELTA_BASE),
                    )
                )
            return out, engine.stats

        serialized_out, serialized_stats = run("serialized")
        sharded_out, sharded_stats = run("sharded")
        assert serialized_out == sharded_out
        assert serialized_stats.savings == pytest.approx(sharded_stats.savings)
        assert serialized_stats.deltas_served == sharded_stats.deltas_served
