"""Tests for engine self-healing: base-file integrity, quarantine, recovery."""

import pytest

from repro.core.config import AnonymizationConfig, DeltaServerConfig
from repro.core.delta_server import DeltaServer
from repro.delta.codec import checksum
from repro.http.messages import HEADER_ACCEPT_DELTA, Request, base_ref
from repro.origin.server import OriginServer
from repro.origin.site import SiteSpec, SyntheticSite
from repro.resilience.policy import OriginUnavailable
from repro.url.rules import RuleBook


@pytest.fixture()
def stack():
    site = SyntheticSite(SiteSpec(name="www.h.example", products_per_category=4))
    origin = OriginServer([site])
    rulebook = RuleBook()
    rulebook.add_rule(site.spec.name, site.hint_rule_pattern())
    config = DeltaServerConfig(
        anonymization=AnonymizationConfig(enabled=True, documents=2, min_count=1),
    )
    server = DeltaServer(origin.handle, config, rulebook)
    return site, origin, server


def req(url: str, user: str, accept: str | None = None) -> Request:
    request = Request(url=url, cookies={"uid": user}, client_id=user)
    if accept:
        request.headers.set(HEADER_ACCEPT_DELTA, accept)
    return request


def warm_up(server, url: str, users=("u1", "u2", "u3")) -> str:
    for user in users:
        server.handle(req(url, user), now=0.0)
    cls = server.class_of(url)
    assert cls is not None and cls.can_serve_deltas
    return base_ref(cls.class_id, cls.version)


def corrupt_base(cls) -> None:
    """Simulate storage bit-rot in the distributable base."""
    body = bytearray(cls.distributable_base)
    body[len(body) // 2] ^= 0xFF
    cls._distributable = bytes(body)


class TestIntegrity:
    def test_checksum_recorded_on_promotion(self, stack):
        _, _, server = stack
        site = stack[0]
        url = site.url_for(site.all_pages()[0])
        warm_up(server, url)
        cls = server.class_of(url)
        assert cls.integrity_ok(cls.version)

    def test_corruption_detected(self, stack):
        site, _, server = stack
        url = site.url_for(site.all_pages()[0])
        warm_up(server, url)
        cls = server.class_of(url)
        corrupt_base(cls)
        assert not cls.integrity_ok(cls.version)

    def test_unknown_version_fails_integrity(self, stack):
        site, _, server = stack
        url = site.url_for(site.all_pages()[0])
        warm_up(server, url)
        cls = server.class_of(url)
        assert not cls.integrity_ok(cls.version + 7)


class TestQuarantine:
    def test_corrupted_base_quarantines_on_delta_attempt(self, stack):
        site, _, server = stack
        url = site.url_for(site.all_pages()[0])
        ref = warm_up(server, url)
        cls = server.class_of(url)
        corrupt_base(cls)
        # A client holding the (now rotten) base asks for a delta.
        response = server.handle(req(url, "u9", accept=ref), now=10.0)
        assert response.status == 200
        assert not response.is_delta  # full document, never a rotten delta
        assert cls.quarantined
        assert server.stats.quarantines == 1
        assert server.stats.integrity_failures == 1
        # The full response must not advertise the released base.
        assert response.headers.get("X-Delta-Base") is None
        assert cls.class_id in server.health_snapshot()["quarantined"]

    def test_corrupted_base_never_distributed(self, stack):
        site, _, server = stack
        url = site.url_for(site.all_pages()[0])
        warm_up(server, url)
        cls = server.class_of(url)
        base_url = DeltaServer.base_file_url(
            site.spec.name, cls.class_id, cls.version
        )
        # Sanity: intact base serves fine.
        assert server.handle(req(base_url, "u1"), now=1.0).status == 200
        corrupt_base(cls)
        response = server.handle(req(base_url, "u1"), now=2.0)
        assert response.status == 404
        assert response.body == b"base-file quarantined"
        assert cls.quarantined

    def test_encoder_fault_quarantines(self, stack, monkeypatch):
        site, _, server = stack
        url = site.url_for(site.all_pages()[0])
        ref = warm_up(server, url)
        cls = server.class_of(url)

        def boom(self, index, document, write, *args, **kwargs):
            raise RuntimeError("encoder bug")

        # VdeltaEncoder is a slots dataclass: patch the class, not the
        # instance.  Clear the encode cache so the faulting kernel is
        # actually reached instead of a memoized artifact.
        monkeypatch.setattr(
            type(server._encoder), "encode_stream_with_index", boom
        )
        cls.encode_cache.clear()
        response = server.handle(req(url, "u9", accept=ref), now=10.0)
        assert response.status == 200
        assert not response.is_delta
        assert cls.quarantined
        assert server.stats.encode_failures == 1

    def test_quarantined_class_serves_fulls(self, stack):
        site, _, server = stack
        url = site.url_for(site.all_pages()[0])
        ref = warm_up(server, url)
        cls = server.class_of(url)
        corrupt_base(cls)
        server.handle(req(url, "u9", accept=ref), now=10.0)  # trips quarantine
        assert cls.quarantined and not cls.can_serve_deltas


class TestRecovery:
    def test_next_good_fetch_readopts_and_recovers(self, stack):
        site, _, server = stack
        url = site.url_for(site.all_pages()[0])
        ref = warm_up(server, url)
        cls = server.class_of(url)
        old_version = cls.version
        corrupt_base(cls)
        server.handle(req(url, "u9", accept=ref), now=10.0)
        assert cls.quarantined
        # The next request re-adopts a fresh base (recovery) ...
        server.handle(req(url, "u10"), now=11.0)
        assert not cls.quarantined
        assert server.stats.quarantine_recoveries == 1
        assert server.health_snapshot()["quarantined"] == []
        # ... and after anonymization completes, deltas work again.
        for user in ("u11", "u12", "u13"):
            server.handle(req(url, user), now=12.0)
        assert cls.can_serve_deltas
        assert cls.version > old_version
        new_ref = base_ref(cls.class_id, cls.version)
        response = server.handle(req(url, "u14", accept=new_ref), now=13.0)
        assert response.is_delta
        assert cls.integrity_ok(cls.version)


class TestDegradation:
    def test_stale_base_served_when_origin_unavailable(self, stack):
        site, _, server = stack
        url = site.url_for(site.all_pages()[0])
        warm_up(server, url)
        cls = server.class_of(url)
        expected_body = cls.distributable_base

        def down(request, now):
            raise OriginUnavailable("circuit open", breaker_state="open")

        server._origin_fetch = down
        response = server.handle(req(url, "u9"), now=10.0)
        assert response.status == 200
        assert response.body == expected_body
        assert response.degraded == "stale-base"
        assert "stale" in response.headers.get("Warning")
        assert server.stats.stale_served == 1

    def test_502_when_no_base_available(self, stack):
        site, _, server = stack
        url = site.url_for(site.all_pages()[0])

        def down(request, now):
            raise OriginUnavailable("retries exhausted")

        server._origin_fetch = down
        # Never-seen URL: no class, nothing to degrade to.
        response = server.handle(req(url, "u1"), now=0.0)
        assert response.status == 502
        assert response.degraded == "origin-unavailable"
        assert server.stats.origin_unavailable == 1

    def test_quarantined_class_cannot_degrade_to_rotten_base(self, stack):
        site, _, server = stack
        url = site.url_for(site.all_pages()[0])
        ref = warm_up(server, url)
        cls = server.class_of(url)
        corrupt_base(cls)
        server.handle(req(url, "u9", accept=ref), now=10.0)  # quarantines

        def down(request, now):
            raise OriginUnavailable("circuit open")

        server._origin_fetch = down
        response = server.handle(req(url, "u10"), now=11.0)
        assert response.status == 502  # quarantined: no stale base on offer
