"""Tests for the grouping mechanism (paper Section III)."""

import random

import pytest

from repro.core.base_file import FirstResponsePolicy
from repro.core.classes import DocumentClass
from repro.core.config import AnonymizationConfig, GroupingConfig
from repro.core.grouping import Grouper
from repro.delta.light import LightEstimator
from repro.delta.vdelta import VdeltaEncoder
from repro.url.parts import URLParts
from repro.url.rules import RuleBook


def doc(category: str, item: int, size: int = 4000) -> bytes:
    """Synthetic docs: same-category docs share a big skeleton."""
    skeleton = (f"<skeleton category={category}>" * (size // 30)).encode()
    detail = (f"<item {item} unique content {item}>" * 20).encode()
    return skeleton + detail


def make_grouper(config: GroupingConfig | None = None, seed: int = 1) -> Grouper:
    estimator = LightEstimator()
    encoder = VdeltaEncoder()
    counter = iter(range(1, 10_000))

    def factory(server: str, hint: str) -> DocumentClass:
        cls = DocumentClass(
            class_id=f"c{next(counter)}",
            server=server,
            hint=hint,
            anonymization=AnonymizationConfig(enabled=False),
            policy=FirstResponsePolicy(),
            encoder=encoder,
            estimator=estimator,
        )
        return cls

    return Grouper(
        config=config or GroupingConfig(),
        rulebook=RuleBook(),
        estimator=estimator,
        class_factory=factory,
        rng=random.Random(seed),
    )


def classify(grouper: Grouper, url: str, document: bytes):
    """Classify and, if a class was created, give it the doc as base."""
    cls, created = grouper.classify(url, document)
    if created:
        cls.adopt_base(document, owner_user=None, now=0.0)
    return cls, created


class TestBasicGrouping:
    def test_first_request_creates_class(self):
        grouper = make_grouper()
        cls, created = classify(grouper, "www.a.com/laptops?id=1", doc("laptops", 1))
        assert created
        assert grouper.class_count() == 1
        assert "www.a.com/laptops?id=1" in cls.members

    def test_same_url_reuses_class_without_search(self):
        grouper = make_grouper()
        cls1, _ = classify(grouper, "www.a.com/laptops?id=1", doc("laptops", 1))
        cls2, created = classify(grouper, "www.a.com/laptops?id=1", doc("laptops", 1))
        assert not created
        assert cls1 is cls2
        assert cls1.stats.hits == 2

    def test_similar_document_joins_class(self):
        grouper = make_grouper()
        classify(grouper, "www.a.com/laptops?id=1", doc("laptops", 1))
        cls, created = classify(grouper, "www.a.com/laptops?id=2", doc("laptops", 2))
        assert not created
        assert grouper.class_count() == 1
        assert len(cls.members) == 2

    def test_dissimilar_document_new_class(self):
        grouper = make_grouper()
        classify(grouper, "www.a.com/laptops?id=1", doc("laptops", 1))
        _, created = classify(grouper, "www.a.com/desktops?id=1", doc("desktops", 1))
        assert created
        assert grouper.class_count() == 2

    def test_different_server_never_shares_class(self):
        """"It is very unlikely that two documents originating from
        different servers will be close enough" — new class outright."""
        grouper = make_grouper()
        classify(grouper, "www.a.com/laptops?id=1", doc("laptops", 1))
        _, created = classify(grouper, "www.b.com/laptops?id=1", doc("laptops", 1))
        assert created
        assert grouper.class_count() == 2

    def test_hint_restricts_candidates(self):
        grouper = make_grouper()
        classify(grouper, "www.a.com/laptops?id=1", doc("laptops", 1))
        classify(grouper, "www.a.com/desktops?id=1", doc("desktops", 1))
        # same hint-part as the laptops class: only that class is probed
        cls, created = classify(grouper, "www.a.com/laptops?id=3", doc("laptops", 3))
        assert not created
        assert cls.hint == "laptops"


class TestSearchHeuristics:
    def test_max_tries_bounds_probes(self):
        config = GroupingConfig(max_tries=2, match_threshold=0.01)
        grouper = make_grouper(config)
        # low threshold: nothing ever matches; each request probes <= 2
        for i in range(6):
            classify(grouper, f"www.a.com/cat{i}?id=0", doc(f"cat{i}", 0))
        per_request_tries = grouper.stats.total_tries / max(grouper.stats.requests - 1, 1)
        assert per_request_tries <= 2

    def test_matches_within_couple_of_tries_with_hints(self):
        """Section VI-B: 'groups requests in classes after a couple of
        tries' on well-structured sites."""
        grouper = make_grouper()
        for i in range(8):
            classify(grouper, f"www.a.com/laptops?id={i}", doc("laptops", i))
        assert grouper.stats.mean_tries <= 2

    def test_first_match_vs_best_match(self):
        best_config = GroupingConfig(first_match=False)
        grouper = make_grouper(best_config)
        classify(grouper, "www.a.com/laptops?id=1", doc("laptops", 1))
        cls, created = classify(grouper, "www.a.com/laptops?id=2", doc("laptops", 2))
        assert not created

    def test_popularity_ordering_prefers_hot_classes(self):
        grouper = make_grouper(GroupingConfig(max_tries=1))
        # Build two classes with same hint via manual registry manipulation:
        # class A hot, class B cold; a new ambiguous doc should probe A first.
        cls_a, _ = classify(grouper, "www.a.com/laptops?id=1", doc("laptops", 1))
        for _ in range(5):
            classify(grouper, "www.a.com/laptops?id=1", doc("laptops", 1))
        assert cls_a.popularity >= 5


class TestManualGrouping:
    def test_manual_pin_overrides_search(self):
        grouper = make_grouper()
        cls, _ = classify(grouper, "www.a.com/laptops?id=1", doc("laptops", 1))
        grouper.pin_manual(r"www\.a\.com/special", cls.class_id)
        pinned, created = classify(
            grouper, "www.a.com/special?id=9", doc("desktops", 9)
        )
        assert not created
        assert pinned is cls
        assert grouper.stats.manual == 1

    def test_pin_to_unknown_class_rejected(self):
        grouper = make_grouper()
        with pytest.raises(KeyError):
            grouper.pin_manual(r".*", "no-such-class")


class TestStats:
    def test_created_and_matched_counts(self):
        grouper = make_grouper()
        classify(grouper, "www.a.com/laptops?id=1", doc("laptops", 1))
        classify(grouper, "www.a.com/laptops?id=2", doc("laptops", 2))
        classify(grouper, "www.a.com/desktops?id=1", doc("desktops", 1))
        assert grouper.stats.created == 2
        assert grouper.stats.matched == 1

    def test_tries_histogram_populated(self):
        grouper = make_grouper()
        classify(grouper, "www.a.com/laptops?id=1", doc("laptops", 1))
        classify(grouper, "www.a.com/laptops?id=2", doc("laptops", 2))
        assert sum(grouper.stats.tries_histogram.values()) == 1


class TestCreateClass:
    def test_create_class_registers_key(self):
        grouper = make_grouper()
        parts = URLParts("www.x.com", "books", "id=1")
        cls = grouper.create_class(parts)
        assert cls.key == ("www.x.com", "books")
        assert grouper.class_by_id(cls.class_id) is cls


class TestUrlClassMap:
    def test_class_for_url_tracks_membership(self):
        grouper = make_grouper()
        assert grouper.class_for_url("www.a.com/x?id=1") is None
        cls, created = classify(grouper, "www.a.com/x?id=1", doc("x", 1))
        assert created
        assert grouper.class_for_url("www.a.com/x?id=1") is cls
        # A second member URL matched into the same class maps there too.
        other, created = classify(grouper, "www.a.com/x?id=2", doc("x", 2))
        assert other is cls and not created
        assert grouper.class_for_url("www.a.com/x?id=2") is cls
        assert grouper.class_for_url("www.a.com/never-seen") is None

    def test_exact_delta_probe_receives_class(self):
        """exact_delta probes get the candidate class (for its cached
        index), not raw base bytes."""
        probed: list = []

        def exact_delta(cls, document):
            probed.append(cls)
            return 0  # always "identical": forces a match

        grouper = make_grouper(GroupingConfig(use_light_estimator=False))
        grouper._exact_delta = exact_delta
        first, _ = classify(grouper, "www.a.com/x?id=1", doc("x", 1))
        classify(grouper, "www.a.com/x?id=2", doc("x", 2))
        assert probed and all(candidate is first for candidate in probed)
